"""Network model: private host↔filer segments.

The paper models the network coarsely but deliberately: "each segment
can carry one packet at a time, and each I/O request uses one packet in
each direction.  Each packet is assumed to incur a fixed latency (for
headers, block information, and so forth) plus a small amount of
additional time per bit of block data transferred."

:class:`NetworkSegment` implements exactly that: a capacity-1 FIFO
resource held for the packet's wire time.  Serialization here is what
produces the paper's convoy effect when many threads evict dirty blocks
simultaneously (§7.1).
"""

from repro.net.packet import Packet, PacketKind
from repro.net.link import NetworkSegment, NetworkTiming
from repro.net.directory import DirectoryTiming

__all__ = [
    "DirectoryTiming",
    "Packet",
    "PacketKind",
    "NetworkSegment",
    "NetworkTiming",
]
