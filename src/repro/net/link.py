"""The network segment: one packet at a time, base + per-bit latency."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro._units import NS
from repro.engine.resources import Resource
from repro.engine.simulation import Simulator
from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.obs.events import EventKind

_NET_XFER = EventKind.NET_XFER


@dataclass(frozen=True)
class NetworkTiming:
    """Table 1's network parameters.

    ``base_latency_ns`` is the fixed per-packet cost (8.2 µs — headers,
    block information, protocol overhead); ``per_bit_ns`` is the wire
    time per bit of block data (1 ns/bit ≈ gigabit speed).
    """

    base_latency_ns: int = 8_200 * NS  # 8.2 us per packet
    per_bit_ns: float = 1.0            # 1 ns per bit of data

    def __post_init__(self) -> None:
        if self.base_latency_ns < 0 or self.per_bit_ns < 0:
            raise ConfigError("network latencies must be non-negative")

    def packet_time_ns(self, packet: Packet) -> int:
        """Wire time of one packet on the segment."""
        return self.base_latency_ns + round(self.per_bit_ns * packet.payload_bits)

    @classmethod
    def paper_default(cls) -> "NetworkTiming":
        return cls()


class NetworkSegment:
    """A private host↔filer segment: one packet at a time per direction.

    The paper's model is "each I/O request uses one packet in each
    direction"; the segment is full duplex, so the host→filer wire
    (requests, write data) and the filer→host wire (read data, acks)
    serialize independently.  Convoys still form: threads evicting
    dirty blocks queue on the host→filer wire.
    """

    __slots__ = (
        "_sim",
        "timing",
        "_up",
        "_down",
        "_wire_time",
        "name",
        "packets_sent",
        "payload_bytes_sent",
        "obs",
    )

    def __init__(
        self,
        sim: Simulator,
        timing: Optional[NetworkTiming] = None,
        name: str = "net",
    ) -> None:
        self._sim = sim
        self.timing = timing or NetworkTiming.paper_default()
        self._up = Resource(sim, capacity=1, name=name + ".up")
        self._down = Resource(sim, capacity=1, name=name + ".down")
        #: wire time memo keyed by payload size — the protocol uses
        #: three packet shapes, so this avoids recomputing the
        #: float-multiply-and-round on every hot-path transfer.
        self._wire_time: dict = {}
        self.name = name
        self.packets_sent = 0
        self.payload_bytes_sent = 0
        #: observability sink (an EventRecorder); None when tracing is
        #: off — the hot-path charge() then pays a single branch.
        self.obs = None

    def _wire_for(self, direction: str) -> Resource:
        if direction == "up":
            return self._up
        if direction == "down":
            return self._down
        raise ConfigError("direction must be 'up' or 'down', got %r" % (direction,))

    def charge(self, packet: Packet, direction: str) -> "tuple[Resource, int]":
        """Account for one packet and return ``(wire, wire_time_ns)``.

        Non-generator half of :meth:`transfer`: callers that fold the
        wire occupancy into their own process frame (the host stack's
        filer paths) call this, then acquire/hold/release the returned
        wire themselves.  ``up`` is host→filer, ``down`` is filer→host.
        """
        payload = packet.payload_bytes
        self.packets_sent += 1
        self.payload_bytes_sent += payload
        if direction == "up":
            wire = self._up
        elif direction == "down":
            wire = self._down
        else:
            raise ConfigError(
                "direction must be 'up' or 'down', got %r" % (direction,)
            )
        wire_time = self._wire_time.get(payload)
        if wire_time is None:
            wire_time = self.timing.packet_time_ns(packet)
            self._wire_time[payload] = wire_time
        obs = self.obs
        if obs is not None:
            # ts marks packet *issue* (queueing for the wire, if any,
            # happens after); dur is the pure wire time.
            obs.emit(self._sim.now, _NET_XFER, tier=wire.name, dur=wire_time)
        return wire, wire_time

    def transfer(self, packet: Packet, direction: str = "up") -> Iterator:
        """Process generator: occupy one direction of the segment for
        the packet's wire time."""
        wire, wire_time = self.charge(packet, direction)
        if not wire.try_acquire():
            yield wire.acquire()
        yield wire_time
        wire.release()

    def utilization(self) -> float:
        """Mean busy fraction of the two directions."""
        return (self._up.utilization() + self._down.utilization()) / 2.0

    @property
    def queue_length(self) -> int:
        return self._up.queue_length + self._down.queue_length

    def reset_counters(self) -> None:
        self.packets_sent = 0
        self.payload_bytes_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NetworkSegment %s packets=%d>" % (self.name, self.packets_sent)
