"""Timing of the consistency directory's invalidation protocol.

The paper invalidates "instantly (using global knowledge)" and only
*counts* invalidations (§3.8); both directory parameters therefore
default to zero, which keeps every default-configuration run
bit-identical to the paper model.  Setting them turns the consistency
protocol into a real latency term on the write path: each block write
pays one directory lookup, plus one invalidate message per remote copy
actually dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DirectoryTiming:
    """Consistency-directory latencies charged to the writing host.

    ``lookup_ns`` is the round trip to the directory shard owning the
    block (paid on every block write when nonzero); ``invalidate_ns``
    is the cost of one invalidate message to a host whose copy was
    dropped (paid per dropped copy).
    """

    lookup_ns: int = 0
    invalidate_ns: int = 0

    def __post_init__(self) -> None:
        if self.lookup_ns < 0 or self.invalidate_ns < 0:
            raise ConfigError("directory latencies must be non-negative")

    @property
    def is_instant(self) -> bool:
        """Whether this is the paper's zero-cost (instant) model."""
        return self.lookup_ns == 0 and self.invalidate_ns == 0

    @classmethod
    def paper_default(cls) -> "DirectoryTiming":
        """The paper's instant-invalidation model (both terms zero)."""
        return cls()
