"""Packet descriptors for the network model.

Packets carry no simulated payload bytes — only a *size*, which the
segment converts to wire time.  Three kinds cover the paper's protocol:
a request (header only), a data packet (header + one 4 KB block), and
an acknowledgement (header only).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._units import BLOCK_SIZE
from repro.errors import ConfigError


class PacketKind(enum.Enum):
    """What a packet is for; requests and acks carry no block data."""

    REQUEST = "request"
    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True)
class Packet:
    """One packet on a segment: a kind plus its data payload size."""

    kind: PacketKind
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigError("payload must be non-negative")
        if self.kind is not PacketKind.DATA and self.payload_bytes != 0:
            raise ConfigError("%s packets carry no payload" % self.kind.value)

    @classmethod
    def request(cls) -> "Packet":
        """A header-only request packet ("block information" rides in the
        fixed per-packet latency).  Packets are immutable, so the three
        protocol shapes are shared singletons (one per subclass)."""
        return _protocol_packet(cls, PacketKind.REQUEST, 0)

    @classmethod
    def data_block(cls) -> "Packet":
        """A packet carrying one 4 KB block."""
        return _protocol_packet(cls, PacketKind.DATA, BLOCK_SIZE)

    @classmethod
    def ack(cls) -> "Packet":
        """A header-only acknowledgement."""
        return _protocol_packet(cls, PacketKind.ACK, 0)

    @property
    def payload_bits(self) -> int:
        return 8 * self.payload_bytes


#: Shared instances of the three protocol packet shapes, keyed by
#: (class, kind) so dataclass subclasses get their own singletons.
_PROTOCOL_PACKETS: dict = {}


def _protocol_packet(cls, kind: PacketKind, payload_bytes: int) -> Packet:
    packet = _PROTOCOL_PACKETS.get((cls, kind))
    if packet is None:
        packet = cls(kind, payload_bytes)
        _PROTOCOL_PACKETS[(cls, kind)] = packet
    return packet
