"""Parallel sweep engine: run many independent simulation points at once.

The paper is a design-space study — 7x7 policy grids, size sweeps,
sensitivity scans — and every one of its figures is a *batch* of
independent ``(trace, config)`` simulation points.  This module turns
that batch into a first-class object:

* :func:`run_sweep` — the common case: one trace, many configurations::

      from repro import SimConfig, run_sweep
      results = run_sweep(trace, configs, workers=4)

* :func:`run_sweep_points` — the general engine: heterogeneous
  :class:`SweepPoint`\\ s (each with its own trace and per-run options
  such as ``cold_start`` or ``restart``), returning a
  :class:`SweepOutcome` with per-point wall-time reports.

**Execution model.**  Points fan out over a *persistent* process pool
(``concurrent.futures.ProcessPoolExecutor``) that survives across
sweeps: the first parallel sweep pays the worker spawn cost, later
sweeps reuse the warm workers (``fresh_pool=True`` opts a call out;
:func:`shutdown_pool` retires the pool explicitly).  Tasks are
spawn-safe: what crosses the process boundary is a *picklable*
``SimConfig`` plus a **trace reference**, never a live simulator
object.  In-memory traces are compiled to the packed columnar form
(:mod:`repro.traces.compiled`) and published once per unique trace in
POSIX shared memory, where every worker attaches *zero-copy* — no
per-worker pickle, no disk round-trip; the parent unlinks each segment
when the sweep finishes (error and Ctrl-C included), and the kernel
frees the pages once the last worker detaches.  When shared memory is
unavailable (``REPRO_SWEEP_NO_SHM=1``, exotic platforms), traces spool
to disk exactly as before.  Workers memoize attached/loaded traces
per reference.  Every simulation point is fully deterministic given
its inputs (per-run seeds live in ``SimConfig`` / the trace), so
parallel and serial execution produce bit-identical results; outputs
are merged back in submission order.

Execution falls back to in-process serial replay when ``workers <= 1``,
when there is at most one uncached point, or when the platform cannot
provide a process pool at all.

**Result caching.**  With ``cache_dir`` set (or the
``REPRO_SWEEP_CACHE`` environment variable), each point's
:class:`~repro.core.results.SimulationResults` is memoized on disk
under a content fingerprint of ``(trace, config, per-run options,
package version)``.  A repeated sweep — the normal workflow while
iterating on an experiment's reporting — touches zero simulations.

**Progress.**  ``progress`` receives one :class:`PointReport` per
finished point (cache hits included), carrying the point's label,
wall-clock seconds, simulated nanoseconds, and whether it was served
from cache.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimConfig
from repro.core.restart import RestartSpec
from repro.core.results import SimulationResults
from repro.core.simulator import run_simulation
from repro.errors import ConfigError
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.records import Trace

__all__ = [
    "SweepPoint",
    "PointReport",
    "SweepOutcome",
    "run_sweep",
    "run_sweep_points",
    "shutdown_pool",
    "default_workers",
    "set_default_workers",
    "default_cache_dir",
    "set_default_cache_dir",
]

TraceLike = Union[Trace, CompiledTrace, ChunkedCompiledTrace, str, Path]

#: A picklable handle a worker resolves to a trace: ``("path", path)``
#: for an on-disk trace (text/binary/pickle spool, or a chunked-trace
#: spool *directory* workers reopen with bounded memory) or
#: ``("shm", segment_name, payload_bytes)`` for a compiled trace
#: published in POSIX shared memory.
TraceRef = Tuple

#: Environment knobs (both overridable per call and via the setters).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"
CACHE_ENV = "REPRO_SWEEP_CACHE"
#: Set (to anything but ``0``) to disable the shared-memory fan-out and
#: always spool traces to disk.
NO_SHM_ENV = "REPRO_SWEEP_NO_SHM"

_default_workers: Optional[int] = None
_default_cache_dir: Optional[Path] = None


# --------------------------------------------------------------------------
# Public data types
# --------------------------------------------------------------------------


@dataclass
class SweepPoint:
    """One independent simulation point of a sweep.

    ``trace`` may be an in-memory :class:`Trace`, a pre-compiled
    :class:`~repro.traces.compiled.CompiledTrace`, a bounded-memory
    :class:`~repro.traces.chunked.ChunkedCompiledTrace`, or a path to a
    saved trace file (text, binary, pickle spool, or a chunked-spool
    directory).  The remaining fields mirror
    :func:`repro.run_simulation`'s keyword-only options.
    """

    config: SimConfig
    trace: TraceLike
    n_hosts: Optional[int] = None
    cold_start: bool = False
    restart: Optional[RestartSpec] = None
    timeline_bucket_ns: Optional[int] = None
    #: free-form tag carried into this point's :class:`PointReport`
    label: str = ""

    def run_options(self) -> Dict[str, object]:
        """The non-default per-run keyword options of this point."""
        options: Dict[str, object] = {}
        if self.n_hosts is not None:
            options["n_hosts"] = self.n_hosts
        if self.cold_start:
            options["cold_start"] = True
        if self.restart is not None:
            options["restart"] = self.restart
        if self.timeline_bucket_ns is not None:
            options["timeline_bucket_ns"] = self.timeline_bucket_ns
        return options


@dataclass(frozen=True)
class PointReport:
    """Per-point execution metrics, delivered to ``progress`` callbacks."""

    #: submission-order index of the point
    index: int
    #: points finished so far (including this one) / total points
    completed: int
    total: int
    #: the point's ``label`` (or the config description when unset)
    label: str
    #: True when the result came from the on-disk cache
    cached: bool
    #: wall-clock seconds spent simulating (0.0 for cache hits)
    wall_seconds: float
    #: simulated nanoseconds covered by the run
    simulated_ns: int
    #: observability counters snapshot (per-event-kind counts) when the
    #: point ran with ``SimConfig.trace_events``; None otherwise
    counters: Optional[Dict[str, int]] = None


@dataclass
class SweepOutcome:
    """Everything a sweep produced: results plus per-point reports.

    ``results`` and ``reports`` are both in submission order, so
    ``zip(points, outcome.results)`` pairs every point with its result
    regardless of the order points finished in.
    """

    results: List[SimulationResults] = field(default_factory=list)
    reports: List[PointReport] = field(default_factory=list)

    @property
    def cached_points(self) -> int:
        return sum(1 for report in self.reports if report.cached)

    @property
    def simulated_points(self) -> int:
        return sum(1 for report in self.reports if not report.cached)

    @property
    def wall_seconds(self) -> float:
        """Total simulation wall-time across points (sum, not elapsed)."""
        return sum(report.wall_seconds for report in self.reports)


# --------------------------------------------------------------------------
# Defaults (wired to the CLI's --workers/--cache flags)
# --------------------------------------------------------------------------


def default_workers() -> int:
    """The worker count used when ``workers=None``: the value set via
    :func:`set_default_workers`, else ``REPRO_SWEEP_WORKERS``, else 1
    (serial)."""
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return _normalize_workers(int(env))
        except ValueError:
            raise ConfigError("%s must be an integer, got %r" % (WORKERS_ENV, env))
    return 1


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets)."""
    global _default_workers
    _default_workers = None if workers is None else _normalize_workers(workers)


def default_cache_dir() -> Optional[Path]:
    """The cache directory used when ``cache_dir=None``: the value set
    via :func:`set_default_cache_dir`, else ``REPRO_SWEEP_CACHE``, else
    no caching."""
    if _default_cache_dir is not None:
        return _default_cache_dir
    env = os.environ.get(CACHE_ENV, "").strip()
    return Path(env) if env else None


def set_default_cache_dir(cache_dir: Union[None, str, Path]) -> None:
    """Set the process-wide default result cache directory (``None``
    resets to the environment/default behavior)."""
    global _default_cache_dir
    _default_cache_dir = None if cache_dir is None else Path(cache_dir)


def _normalize_workers(workers: int) -> int:
    """0 means "all cores"; negative counts are a configuration error."""
    if workers < 0:
        raise ConfigError("workers must be >= 0, got %d" % workers)
    if workers == 0:
        return os.cpu_count() or 1
    return workers


# --------------------------------------------------------------------------
# Fingerprinting
# --------------------------------------------------------------------------


def trace_fingerprint(trace: Union[Trace, CompiledTrace, ChunkedCompiledTrace]) -> str:
    """A stable content hash of a trace (records, geometry, warmup).

    Computed over the packed columnar form's flat buffers — a handful
    of digest updates instead of a per-record ``struct.pack`` loop —
    and memoized on the trace object: experiment sweeps reuse one trace
    across dozens of points, and hashing a large trace repeatedly would
    rival the simulation cost.  The compiled form this builds is itself
    memoized, so fingerprinting a trace that is about to fan out is
    free work, not extra work.
    """
    if isinstance(trace, (CompiledTrace, ChunkedCompiledTrace)):
        return trace.fingerprint
    cached = trace.__dict__.get("_sweep_fingerprint")
    if cached is not None:
        return cached
    fingerprint = compile_trace(trace).fingerprint
    trace.__dict__["_sweep_fingerprint"] = fingerprint
    return fingerprint


def _point_fingerprint(trace_print: str, point: SweepPoint) -> str:
    """Cache key of one point: trace content + config + run options.

    The config and options are hashed through their pickle serialization
    — deterministic for the frozen dataclasses involved — and salted
    with the package version so result-format changes invalidate stale
    caches instead of unpickling into the wrong shape.
    """
    from repro import __version__  # local import: repro re-exports this module

    payload = pickle.dumps(
        (__version__, trace_print, point.config, sorted(point.run_options().items())),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

#: Per-worker memo of resolved traces, keyed by :data:`TraceRef`.  Each
#: entry is ``(trace, cleanup)`` where ``cleanup`` (may be ``None``)
#: detaches shared-memory resources when the entry is evicted.  Sweeps
#: ship at most a handful of distinct traces, so a tiny cap suffices;
#: insertion order doubles as age, and the oldest entry is evicted —
#: with its cleanup run — when the cap is hit.
_WORKER_TRACE_CACHE: Dict[TraceRef, Tuple[object, Optional[Callable[[], None]]]] = {}
_WORKER_TRACE_CACHE_MAX = 8


def _load_trace_path(path: str):
    """Load one trace file (pickle spool, chunked spool dir, or text)."""
    if os.path.isdir(path):
        # A chunked-trace spool directory: reopen with bounded memory
        # instead of materializing the records.
        return ChunkedCompiledTrace.open(path)
    if path.endswith(".pkl"):
        with open(path, "rb") as handle:
            return pickle.load(handle)
    from repro.traces.format import load_trace

    return load_trace(path)


def _attach_shm_trace(name: str, nbytes: int):
    """Attach a compiled trace published in shared memory, zero-copy.

    Returns ``(trace, cleanup)``; ``cleanup`` releases the trace's
    buffer views *before* closing the mapping (closing first would
    raise ``BufferError`` — memoryviews pin the mmap).

    On 3.13+ the attach passes ``track=False``: the sweep parent owns
    the segment's lifetime.  Before 3.13 attaching registers with the
    resource tracker unconditionally — but workers share the parent's
    tracker process (its fd is inherited through the pool machinery),
    so the registration collapses into the parent's own and the
    parent's ``unlink()`` retires it exactly once.  Explicitly
    unregistering here would strip that shared entry early and break
    the tracker's leaked-segment safety net.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = shared_memory.SharedMemory(name=name)
    try:
        # The segment may be rounded up to a page multiple; the payload
        # length travels in the ref.
        view = memoryview(segment.buf)[:nbytes]
        trace = CompiledTrace.from_buffer(view)
    except BaseException:
        segment.close()
        raise

    def cleanup(trace=trace, view=view, segment=segment):
        trace.release()
        view.release()
        segment.close()

    return trace, cleanup


def _load_trace_ref(ref: TraceRef):
    """Resolve a trace reference, memoized per worker process."""
    entry = _WORKER_TRACE_CACHE.get(ref)
    if entry is not None:
        return entry[0]
    if ref[0] == "shm":
        trace, cleanup = _attach_shm_trace(ref[1], ref[2])
    else:
        trace, cleanup = _load_trace_path(ref[1]), None
        if isinstance(trace, ChunkedCompiledTrace):
            # Eviction must release the spool's row-file handle.
            cleanup = trace.close
    while len(_WORKER_TRACE_CACHE) >= _WORKER_TRACE_CACHE_MAX:
        oldest = next(iter(_WORKER_TRACE_CACHE))
        _, old_cleanup = _WORKER_TRACE_CACHE.pop(oldest)
        if old_cleanup is not None:
            old_cleanup()
    _WORKER_TRACE_CACHE[ref] = (trace, cleanup)
    return trace


def _drain_worker_cache() -> int:
    """Release every cached trace attachment; returns how many entries
    were evicted.

    Without this, interpreter teardown reaches ``SharedMemory.__del__``
    while the trace's memoryviews are still alive and ``close`` raises
    ``BufferError: cannot close exported pointers exist``.  Registered
    via ``atexit`` (module import happens in every worker), harmless in
    processes that never resolved a trace ref.
    """
    drained = 0
    while _WORKER_TRACE_CACHE:
        _ref, (_trace, cleanup) = _WORKER_TRACE_CACHE.popitem()
        drained += 1
        if cleanup is not None:
            try:
                cleanup()
            except BufferError:  # pragma: no cover - defensive
                pass
    return drained


atexit.register(_drain_worker_cache)


def _drain_at_barrier(barrier) -> Tuple[int, int]:
    """Pool task: drain this worker's trace cache, then rendezvous.

    The barrier forces each of the pool's workers to claim exactly one
    of the ``n_workers`` copies of this task — a worker that finished
    its drain cannot grab a second copy until every other worker has
    arrived — so a broadcast of ``n_workers`` tasks provably reaches
    every worker.  Returns ``(pid, evicted_count)``.
    """
    drained = _drain_worker_cache()
    try:
        barrier.wait(timeout=30)
    except Exception:  # pragma: no cover - a peer died; drain still done
        pass
    return os.getpid(), drained


def _drain_pool_caches(pool, n_workers: int) -> List[Tuple[int, int]]:
    """Broadcast a cache drain to every worker of a live pool.

    Worker processes exit via ``os._exit`` when their pool is shut
    down, skipping ``atexit`` — so an idle persistent pool would keep
    already-unlinked shared-memory segments mapped (and spool file
    handles open) until interpreter exit.  Called from the pool
    teardown paths; returns the per-worker ``(pid, evicted)`` pairs, or
    ``[]`` when the pool is a stand-in or the platform can't provide
    the rendezvous barrier.
    """
    if not hasattr(pool, "_processes") or n_workers < 1:
        return []  # a test stand-in, not a real worker pool
    try:
        manager = multiprocessing.Manager()
    except Exception:  # pragma: no cover - no fork/spawn available
        return []
    try:
        barrier = manager.Barrier(n_workers)
        futures = [
            pool.submit(_drain_at_barrier, barrier) for _ in range(n_workers)
        ]
        return [future.result(timeout=30) for future in futures]
    except Exception:  # pragma: no cover - defensive: teardown must not fail
        return []
    finally:
        manager.shutdown()


def _run_point_task(
    task: Tuple[int, TraceRef, SimConfig, Tuple[Tuple[str, object], ...]],
) -> Tuple[int, SimulationResults, float]:
    """Execute one fanned-out point (the function a pool worker runs)."""
    index, ref, config, options = task
    trace = _load_trace_ref(ref)
    started = time.perf_counter()
    results = run_simulation(trace, config, **dict(options))
    return index, results, time.perf_counter() - started


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


ProgressFn = Callable[[PointReport], None]


def run_sweep_points(
    points: Sequence[SweepPoint],
    *,
    workers: Optional[int] = None,
    cache_dir: Union[None, str, Path] = None,
    progress: Optional[ProgressFn] = None,
    fresh_pool: bool = False,
) -> SweepOutcome:
    """Run a batch of heterogeneous sweep points; see the module docs.

    Returns a :class:`SweepOutcome` whose ``results`` are in submission
    order and identical to running each point serially.

    ``fresh_pool=True`` opts this call out of the persistent worker
    pool: a private pool is spawned, used, and shut down — useful for
    isolation (benchmarking cold-start costs, tests that must not leak
    workers) at the price of re-paying worker startup.
    """
    points = list(points)
    n_workers = _normalize_workers(workers) if workers is not None else default_workers()
    cache_path = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if cache_path is not None and cache_path.exists() and not cache_path.is_dir():
        raise ConfigError("cache path %s exists and is not a directory" % cache_path)
    if cache_path is not None and cache_path.is_dir():
        # Orphaned write-then-rename temporaries from sweeps that were
        # killed mid-write accumulate forever otherwise.
        _sweep_stale_tmp(cache_path)
        _sweep_stale_tmp(cache_path / "traces")

    results: List[Optional[SimulationResults]] = [None] * len(points)
    reports: List[Optional[PointReport]] = [None] * len(points)
    completed = 0
    warned: Dict[str, bool] = {}

    def warn_once(topic: str, message: str) -> None:
        if topic not in warned:
            warned[topic] = True
            warnings.warn(message, RuntimeWarning, stacklevel=3)

    def finish(
        index: int, result: SimulationResults, cached: bool, wall: float
    ) -> None:
        nonlocal completed
        completed += 1
        report = PointReport(
            index=index,
            completed=completed,
            total=len(points),
            label=points[index].label or result.config_description,
            cached=cached,
            wall_seconds=wall,
            simulated_ns=result.simulated_ns,
            counters=result.obs_counters,
        )
        results[index] = result
        reports[index] = report
        if progress is not None:
            # A broken observer must not abort the sweep (or orphan the
            # pool mid-drain): the simulation work is already done.
            try:
                progress(report)
            except Exception as exc:
                warn_once(
                    "progress",
                    "sweep progress callback raised %s: %s "
                    "(the sweep continues; further callback errors are "
                    "suppressed from warnings)" % (type(exc).__name__, exc),
                )

    # --- serve what the cache already has -----------------------------
    pending: List[Tuple[int, str]] = []  # (index, cache key)
    for index, point in enumerate(points):
        key = ""
        if cache_path is not None:
            trace_print = (
                trace_fingerprint(point.trace)
                if isinstance(
                    point.trace, (Trace, CompiledTrace, ChunkedCompiledTrace)
                )
                else _file_fingerprint(Path(point.trace))
            )
            key = _point_fingerprint(trace_print, point)
            cached_result = _cache_load(cache_path, key)
            if cached_result is not None:
                finish(index, cached_result, cached=True, wall=0.0)
                continue
        pending.append((index, key))

    # --- execute the misses -------------------------------------------
    if pending:
        if n_workers > 1 and len(pending) > 1:
            executed = _execute_parallel(
                points, pending, n_workers, cache_path, fresh_pool
            )
        else:
            executed = _execute_serial(points, pending)
        for (index, key), (result, wall) in zip(pending, executed):
            if cache_path is not None:
                # Caching is an optimization: a full disk or unwritable
                # cache directory must not discard finished simulations.
                try:
                    _cache_store(cache_path, key, result)
                except (OSError, pickle.PicklingError) as exc:
                    warn_once(
                        "cache",
                        "sweep result cache write to %s failed (%s: %s); "
                        "caching disabled for the rest of this sweep"
                        % (cache_path, type(exc).__name__, exc),
                    )
                    cache_path = None
            finish(index, result, cached=False, wall=wall)

    return SweepOutcome(results=list(results), reports=list(reports))


def run_sweep(
    trace: TraceLike,
    configs: Sequence[SimConfig],
    *,
    workers: Optional[int] = None,
    cache_dir: Union[None, str, Path] = None,
    progress: Optional[ProgressFn] = None,
    fresh_pool: bool = False,
) -> List[SimulationResults]:
    """Replay ``trace`` under every config, fanning out across cores.

    The batch counterpart of :func:`repro.run_simulation`: results come
    back in ``configs`` order and are bit-identical to a serial loop —
    each point's determinism lives in its own per-run RNG streams, so
    execution order cannot leak between points.

    ``workers``: process count (``None`` = the module default, normally
    1 = in-process; ``0`` = all cores).  ``cache_dir`` memoizes results
    on disk keyed by ``(trace, config, options)`` content.  ``progress``
    receives a :class:`PointReport` per finished point.
    ``fresh_pool=True`` bypasses the persistent worker pool (see
    :func:`run_sweep_points`).
    """
    outcome = run_sweep_points(
        [SweepPoint(config=config, trace=trace) for config in configs],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        fresh_pool=fresh_pool,
    )
    return outcome.results


def policy_grid(
    base: SimConfig,
    *,
    flash_admission: Sequence = ("always",),
    flash_cleaning: Sequence = ("periodic",),
) -> List[Tuple[str, str, SimConfig]]:
    """Expand a base config over the admission x cleaning policy matrix.

    Each axis takes :mod:`repro.policies` spec strings or policy
    instances; the result is ``(admission_label, cleaning_label,
    config)`` rows in row-major order, ready for :func:`run_sweep`::

        grid = policy_grid(base, flash_admission=["always", "probationary:2"],
                           flash_cleaning=["periodic", "acp:0.5"])
        results = run_sweep(trace, [config for _, _, config in grid])
    """
    from repro import policies as policy_registry

    rows: List[Tuple[str, str, SimConfig]] = []
    for admission in flash_admission:
        admission = policy_registry.resolve("admission", admission)
        for cleaning in flash_cleaning:
            cleaning = policy_registry.resolve("cleaning", cleaning)
            config = base.with_policies(
                flash_admission=admission, flash_cleaning=cleaning
            )
            rows.append((admission.label, cleaning.label, config))
    return rows


def _execute_serial(
    points: Sequence[SweepPoint], pending: Sequence[Tuple[int, str]]
) -> List[Tuple[SimulationResults, float]]:
    """In-process execution: the fallback and the ``workers<=1`` path."""
    executed: List[Tuple[SimulationResults, float]] = []
    for index, _key in pending:
        point = points[index]
        trace = point.trace
        if not isinstance(trace, (Trace, CompiledTrace, ChunkedCompiledTrace)):
            trace = _load_trace_ref(("path", str(trace)))
        started = time.perf_counter()
        result = run_simulation(trace, point.config, **point.run_options())
        executed.append((result, time.perf_counter() - started))
    return executed


# --------------------------------------------------------------------------
# The persistent worker pool
# --------------------------------------------------------------------------

_POOL = None
_POOL_WORKERS = 0
#: Exception types meaning "the platform cannot give us a pool".
_POOL_UNAVAILABLE = (OSError, ValueError, NotImplementedError)


def _real_executor_type():
    """The genuine executor class (module attribute looked up at call
    time, so test monkeypatching is honored)."""
    import concurrent.futures as futures

    return futures.ProcessPoolExecutor


def _acquire_pool(n_workers: int, fresh: bool):
    """Get a process pool: ``(pool, owned)`` or ``(None, True)`` when
    the platform can't provide one.

    ``owned=True`` means the caller must dispose of the pool after the
    sweep (a ``fresh_pool`` request, or a stand-in class injected by
    tests that must never be cached).  ``owned=False`` is the
    persistent pool, reused by later sweeps.
    """
    global _POOL, _POOL_WORKERS
    cls = _real_executor_type()
    if fresh:
        try:
            return cls(max_workers=n_workers), True
        except _POOL_UNAVAILABLE:
            return None, True
    if _POOL is not None:
        if type(_POOL) is cls and _POOL_WORKERS == n_workers:
            return _POOL, False
        # Different size requested, or the cached pool's class is no
        # longer the live executor class: retire it.
        _discard_pool()
    try:
        pool = cls(max_workers=n_workers)
    except _POOL_UNAVAILABLE:
        return None, True
    if type(pool) is cls and cls.__module__.startswith("concurrent.futures"):
        _POOL, _POOL_WORKERS = pool, n_workers
        return pool, False
    # A monkeypatched stand-in: usable for this sweep, never cached.
    return pool, True


def _discard_pool() -> None:
    """Drop the persistent pool without waiting (broken/obsolete pool)."""
    global _POOL, _POOL_WORKERS
    pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is None:
        return
    shutdown = getattr(pool, "shutdown", None)
    if shutdown is None:
        return
    try:
        shutdown(wait=False, cancel_futures=True)
    except TypeError:  # a stand-in with a narrower signature
        try:
            shutdown(wait=False)
        except Exception:
            pass
    except Exception:
        pass


def shutdown_pool() -> None:
    """Retire the persistent worker pool (idempotent).

    Waits for in-flight work, releases the worker processes and
    whatever they hold (cached trace attachments included).  The next
    parallel sweep simply spawns a new pool.  Registered via ``atexit``
    so interpreter shutdown is always clean.
    """
    global _POOL, _POOL_WORKERS
    pool, workers, _POOL, _POOL_WORKERS = _POOL, _POOL_WORKERS, None, 0
    if pool is None:
        return
    # Workers exit via os._exit (no atexit), so evict their cached
    # trace attachments explicitly before releasing the processes.
    _drain_pool_caches(pool, workers)
    try:
        pool.shutdown(wait=True)
    except Exception:  # pragma: no cover - defensive: exit must not fail
        pass


atexit.register(shutdown_pool)


def _dispose_owned_pool(pool) -> None:
    """Shut down a single-sweep pool; tolerate minimal stand-ins."""
    workers = getattr(pool, "_max_workers", 0)
    if workers:
        _drain_pool_caches(pool, workers)
    shutdown = getattr(pool, "shutdown", None)
    if shutdown is None:
        return
    try:
        shutdown(wait=True)
    except Exception:
        pass


def _pool_is_poisoned(exc: BaseException) -> bool:
    """Did this failure kill the pool (vs. a point merely raising)?

    A simulation error (``ReproError`` & friends) travels back pickled
    and leaves the workers perfectly reusable; a ``BrokenExecutor`` or
    an interrupt means the pool must not be reused.
    """
    if not isinstance(exc, Exception):
        return True  # KeyboardInterrupt, SystemExit, ...
    try:
        from concurrent.futures import BrokenExecutor
    except ImportError:  # pragma: no cover - ancient platforms
        return False
    return isinstance(exc, BrokenExecutor)


def _execute_parallel(
    points: Sequence[SweepPoint],
    pending: Sequence[Tuple[int, str]],
    n_workers: int,
    cache_path: Optional[Path],
    fresh_pool: bool,
) -> List[Tuple[SimulationResults, float]]:
    """Fan pending points over a process pool; fall back to serial when
    the platform can't give us one (no fork/spawn, sandboxed, ...).

    In-memory traces are published once each in shared memory (workers
    attach zero-copy); the segments are closed and unlinked on *every*
    exit path — normal completion, a failing point, Ctrl-C — so no
    segment outlives the sweep.  Platforms without usable shared memory
    spool to disk instead.
    """
    segments: List = []
    spool_state: List = [None, False]  # lazily created spool directory
    try:
        # --- build one task per pending point, deduping trace exports -
        refs: Dict[str, TraceRef] = {}
        tasks = []
        for position, (index, _key) in enumerate(pending):
            point = points[index]
            ref = _trace_ref(point.trace, refs, segments, spool_state, cache_path)
            tasks.append(
                (position, ref, point.config, tuple(sorted(point.run_options().items())))
            )

        pool, owned = _acquire_pool(n_workers, fresh_pool)
        if pool is None:
            return _execute_serial(points, pending)
        executed: List[Optional[Tuple[SimulationResults, float]]] = [None] * len(
            pending
        )
        try:
            for position, result, wall in pool.map(
                _run_point_task, tasks, chunksize=_chunksize(len(pending), n_workers)
            ):
                executed[position] = (result, wall)
        except BaseException as exc:
            if not owned and _pool_is_poisoned(exc):
                _discard_pool()
            raise
        finally:
            if owned:
                _dispose_owned_pool(pool)
        missing = [pending[i][0] for i, entry in enumerate(executed) if entry is None]
        if missing:
            # Silently dropping a slot would misalign the caller's
            # zip(pending, executed) and cache results under wrong keys.
            raise RuntimeError(
                "process pool returned no result for sweep point(s) %s" % missing
            )
        return executed  # type: ignore[return-value]
    finally:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        spool_dir, created_spool = spool_state
        if created_spool and spool_dir is not None:
            import shutil

            shutil.rmtree(spool_dir, ignore_errors=True)


def _chunksize(n_tasks: int, n_workers: int) -> int:
    """Batch tasks to amortize IPC without starving the pool's tail."""
    return max(1, n_tasks // (n_workers * 4))


# --------------------------------------------------------------------------
# Shared-memory fan-out
# --------------------------------------------------------------------------

_shm_usable: Optional[bool] = None
_shm_counter = 0


def _shm_available() -> bool:
    """Is the zero-copy shared-memory fan-out usable here?

    ``REPRO_SWEEP_NO_SHM`` force-disables it (checked every call so
    tests can flip it); the platform probe — create, attach by name,
    destroy a tiny segment — runs once per process.
    """
    if os.environ.get(NO_SHM_ENV, "").strip() not in ("", "0"):
        return False
    global _shm_usable
    if _shm_usable is None:
        _shm_usable = _probe_shm()
    return _shm_usable


def _probe_shm() -> bool:
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            name=_shm_segment_name("0" * 12), create=True, size=16
        )
        try:
            segment.buf[:4] = b"ping"
            try:
                peer = shared_memory.SharedMemory(name=segment.name, track=False)
            except TypeError:  # Python < 3.13
                peer = shared_memory.SharedMemory(name=segment.name)
            ok = bytes(peer.buf[:4]) == b"ping"
            peer.close()
            return ok
        finally:
            segment.close()
            segment.unlink()
    except Exception:
        return False


def _shm_segment_name(tag: str) -> str:
    """A collision-free segment name: content tag + pid + counter.

    The pid/counter keep concurrent sweeps (and repeated sweeps of the
    same trace in one process) from colliding; the leading ``repro-ct-``
    prefix makes leak audits a name scan.
    """
    global _shm_counter
    _shm_counter += 1
    return "repro-ct-%s-%d-%d" % (tag, os.getpid(), _shm_counter)


def _shm_export(trace: Union[Trace, CompiledTrace], segments: List) -> Optional[TraceRef]:
    """Publish a trace's compiled wire image in a shared-memory segment.

    Appends the created segment to ``segments`` (the caller's cleanup
    list) and returns its ref, or ``None`` when the export fails and
    the caller should spool to disk instead.
    """
    from multiprocessing import shared_memory

    compiled = trace if isinstance(trace, CompiledTrace) else compile_trace(trace)
    payload = compiled.to_bytes()
    name = _shm_segment_name(compiled.fingerprint[:12])
    try:
        segment = shared_memory.SharedMemory(name=name, create=True, size=len(payload))
    except OSError:
        return None
    segments.append(segment)
    segment.buf[: len(payload)] = payload
    return ("shm", segment.name, len(payload))


def _trace_ref(
    trace: TraceLike,
    refs: Dict[str, TraceRef],
    segments: List,
    spool_state: List,
    cache_path: Optional[Path],
) -> TraceRef:
    """The reference workers will resolve for this point's trace.

    In-memory traces are exported to shared memory once per distinct
    content fingerprint (``refs`` is the per-sweep dedupe table) with a
    disk spool as fallback; path traces pass through untouched.  A
    chunked trace is already on disk — workers reopen its spool
    directory directly, so no export happens and each worker's replay
    stays bounded by its chunk window.
    """
    if isinstance(trace, ChunkedCompiledTrace):
        return ("path", str(trace.spool_dir))
    if not isinstance(trace, (Trace, CompiledTrace)):
        return ("path", str(trace))
    fingerprint = trace_fingerprint(trace)
    ref = refs.get(fingerprint)
    if ref is None:
        ref = _shm_export(trace, segments) if _shm_available() else None
        if ref is None:
            if spool_state[0] is None:
                spool_state[0], spool_state[1] = _spool_directory(cache_path)
            ref = ("path", _spool_trace(trace, spool_state[0]))
        refs[fingerprint] = ref
    return ref


# --------------------------------------------------------------------------
# Trace spooling (what actually crosses the process boundary is a path)
# --------------------------------------------------------------------------


def _spool_directory(cache_path: Optional[Path]) -> Tuple[Path, bool]:
    """Where to spool in-memory traces: inside the result cache when one
    is configured (so spools are reused across runs), else a fresh
    temporary directory removed after the sweep."""
    if cache_path is not None:
        spool = cache_path / "traces"
        spool.mkdir(parents=True, exist_ok=True)
        return spool, False
    return Path(tempfile.mkdtemp(prefix="repro-sweep-")), True


def _spool_trace(trace: TraceLike, spool_dir: Path) -> str:
    """Materialize a trace as a file and return its path.

    Pickle is used rather than the text/binary trace formats because the
    spool must be a *lossless* image of the in-memory object — bit-equal
    parallel/serial results depend on workers replaying exactly what the
    caller built.  (Compiled traces pickle via their wire format, which
    round-trips exactly.)
    """
    if not isinstance(trace, (Trace, CompiledTrace)):
        return str(trace)
    path = spool_dir / ("%s.pkl" % trace_fingerprint(trace))
    if not path.exists():
        _atomic_write(path, pickle.dumps(trace, protocol=4))
    return str(path)


# --------------------------------------------------------------------------
# On-disk result cache
# --------------------------------------------------------------------------


def _cache_entry(cache_path: Path, key: str) -> Path:
    return cache_path / ("%s.result.pkl" % key)


def _cache_load(cache_path: Path, key: str) -> Optional[SimulationResults]:
    entry = _cache_entry(cache_path, key)
    try:
        with open(entry, "rb") as handle:
            return pickle.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        # A torn or stale entry is a miss, not an error.
        return None


def _cache_store(cache_path: Path, key: str, result: SimulationResults) -> None:
    cache_path.mkdir(parents=True, exist_ok=True)
    _atomic_write(_cache_entry(cache_path, key), pickle.dumps(result, protocol=4))


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write-then-rename so concurrent sweeps never see torn entries."""
    handle = tempfile.NamedTemporaryFile(
        dir=str(path.parent), prefix=path.name, suffix=".tmp", delete=False
    )
    try:
        handle.write(payload)
        handle.close()
        os.replace(handle.name, path)
    except BaseException:
        handle.close()
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


#: Grace period before an orphaned ``*.tmp`` spool/cache file is swept.
#: Long enough that a concurrent sweep's in-flight atomic write is never
#: touched; short enough that killed runs don't leak disk for long.
_STALE_TMP_SECONDS = 3600.0


def _sweep_stale_tmp(directory: Path, max_age: float = _STALE_TMP_SECONDS) -> int:
    """Remove orphaned atomic-write temporaries from a spool directory.

    :func:`_atomic_write` unlinks its temporary on every failure path it
    can see, but a SIGKILL (or power loss) between ``write`` and
    ``os.replace`` leaves the ``*.tmp`` behind in the *persistent* cache
    spool, where nothing else ever looks at it again.  Returns the
    number of files removed; errors are ignored (another sweep may be
    cleaning concurrently).
    """
    removed = 0
    try:
        entries = list(directory.glob("*.tmp"))
    except OSError:
        return 0
    cutoff = time.time() - max_age
    for entry in entries:
        try:
            if entry.stat().st_mtime < cutoff:
                entry.unlink()
                removed += 1
        except OSError:
            continue
    return removed


def _file_fingerprint(path: Path) -> str:
    """Content hash of an on-disk trace file (for cache keying).

    A chunked-spool *directory* already carries its content fingerprint
    in the manifest (computed at freeze over the column bytes), so it is
    read back instead of re-hashing the multi-gigabyte spool.
    """
    if path.is_dir():
        trace = ChunkedCompiledTrace.open(path)
        try:
            return trace.fingerprint
        finally:
            trace.close()
    digest = hashlib.sha256()
    digest.update(b"repro-trace-file-v1")
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()
