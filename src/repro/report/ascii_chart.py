"""Terminal line charts.

A deliberately small plotter: multiple named series of (x, y) points on
one grid, distinct markers per series, linear axes with labeled ticks.
Made for the experiment tables — a few dozen points per series — not
for dense data.

Example::

    print(line_chart(
        {"no flash": [(5, 233), (60, 814)], "64G flash": [(5, 226), (60, 274)]},
        title="Read latency vs. working set",
        x_label="WS (GB)", y_label="us",
    ))
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

Point = Tuple[float, float]

#: Markers assigned to series in insertion order.
MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    """Map value in [lo, hi] to a cell index in [0, size-1]."""
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(size - 1, max(0, round(position * (size - 1))))


def _format_tick(value: float) -> str:
    if abs(value) >= 1000:
        return "%.0f" % value
    if abs(value) >= 10:
        return "%.1f" % value
    return "%.2f" % value


def line_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named point series as an ASCII chart with axes and legend."""
    if not series:
        raise ReproError("line_chart needs at least one series")
    if width < 16 or height < 4:
        raise ReproError("chart too small: need width >= 16, height >= 4")
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        raise ReproError("line_chart needs at least one data point")

    xs = [point[0] for point in all_points]
    ys = [point[1] for point in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:  # flat series: pad so the line sits mid-chart
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (name, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append("%s %s" % (marker, name))
        for x, y in points:
            column = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][column] = marker

    margin = max(len(_format_tick(y_hi)), len(_format_tick(y_lo)))
    lines: List[str] = []
    if title:
        lines.append(title.center(margin + 1 + width))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = _format_tick(y_hi)
        elif row_index == height - 1:
            tick = _format_tick(y_lo)
        else:
            tick = ""
        lines.append("%*s|%s" % (margin, tick, "".join(row)))
    lines.append("%*s+%s" % (margin, "", "-" * width))
    x_axis = "%s%s" % (
        _format_tick(x_lo),
        _format_tick(x_hi).rjust(width - len(_format_tick(x_lo))),
    )
    lines.append(" " * (margin + 1) + x_axis)
    footer = "  ".join(legend)
    if x_label or y_label:
        footer += "   [x: %s, y: %s]" % (x_label or "-", y_label or "-")
    lines.append(footer)
    return "\n".join(lines)
