"""Markdown rendering of experiment results."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.report.ascii_chart import line_chart


def experiment_to_markdown(result: ExperimentResult) -> str:
    """Render an ExperimentResult as a GitHub-flavored markdown section."""
    lines = ["## %s — %s" % (result.experiment, result.title), ""]
    header = list(result.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return "%.2f" % value
        return str(value)

    for row in result.rows:
        lines.append("| " + " | ".join(fmt(row.get(col, "")) for col in header) + " |")
    if result.notes:
        lines.extend(["", "*%s*" % result.notes])
    lines.append("")
    return "\n".join(lines)


def results_chart(
    result: ExperimentResult,
    x_column: str,
    y_columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render numeric experiment columns as an ASCII line chart.

    ``y_columns`` defaults to every numeric column except ``x_column``.
    """
    if x_column not in result.columns:
        raise ReproError("unknown x column %r" % x_column)
    if y_columns is None:
        y_columns = [
            column
            for column in result.columns
            if column != x_column
            and all(isinstance(row.get(column), (int, float)) for row in result.rows)
        ]
    if not y_columns:
        raise ReproError("no numeric y columns to plot")
    series = {}
    for column in y_columns:
        points = [
            (float(row[x_column]), float(row[column]))
            for row in result.rows
            if isinstance(row.get(x_column), (int, float))
            and isinstance(row.get(column), (int, float))
        ]
        if points:
            series[column] = points
    if not series:
        raise ReproError("no plottable points (is %r numeric?)" % x_column)
    return line_chart(series, title=title or result.title, x_label=x_column)
