"""Markdown rendering of experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.report.ascii_chart import line_chart

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.breakdown import LatencyBreakdown


def experiment_to_markdown(result: ExperimentResult) -> str:
    """Render an ExperimentResult as a GitHub-flavored markdown section."""
    lines = ["## %s — %s" % (result.experiment, result.title), ""]
    header = list(result.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return "%.2f" % value
        return str(value)

    for row in result.rows:
        lines.append("| " + " | ".join(fmt(row.get(col, "")) for col in header) + " |")
    if result.notes:
        lines.extend(["", "*%s*" % result.notes])
    lines.append("")
    return "\n".join(lines)


def breakdown_to_markdown(
    breakdown: "LatencyBreakdown", title: str = "Latency breakdown"
) -> str:
    """Render a per-request latency breakdown as a markdown table.

    One row per component (zero rows omitted), mean µs/block for reads
    and writes, plus each component's share of the total read latency —
    the observability counterpart of the paper's per-tier figures.
    """
    mean_read = breakdown.mean_read_us()
    mean_write = breakdown.mean_write_us()
    total_read = sum(mean_read.values())
    lines = [
        "### %s" % title,
        "",
        "| component | read µs/block | write µs/block | read share |",
        "|---|---|---|---|",
    ]
    for component in mean_read:
        read_us = mean_read[component]
        write_us = mean_write[component]
        if read_us == 0.0 and write_us == 0.0:
            continue
        share = (100.0 * read_us / total_read) if total_read else 0.0
        lines.append(
            "| %s | %.2f | %.2f | %.1f%% |" % (component, read_us, write_us, share)
        )
    lines.append(
        "| **total** | **%.2f** | **%.2f** | 100%% |"
        % (total_read, sum(mean_write.values()))
    )
    if breakdown.unattributed_ns:
        lines.extend(
            [
                "",
                "*%d ns over %d blocks could not be attributed to a "
                "component (folded into `other`).*"
                % (breakdown.unattributed_ns, breakdown.mismatched_blocks),
            ]
        )
    lines.append("")
    return "\n".join(lines)


def results_chart(
    result: ExperimentResult,
    x_column: str,
    y_columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render numeric experiment columns as an ASCII line chart.

    ``y_columns`` defaults to every numeric column except ``x_column``.
    """
    if x_column not in result.columns:
        raise ReproError("unknown x column %r" % x_column)
    if y_columns is None:
        y_columns = [
            column
            for column in result.columns
            if column != x_column
            and all(isinstance(row.get(column), (int, float)) for row in result.rows)
        ]
    if not y_columns:
        raise ReproError("no numeric y columns to plot")
    series = {}
    for column in y_columns:
        points = [
            (float(row[x_column]), float(row[column]))
            for row in result.rows
            if isinstance(row.get(x_column), (int, float))
            and isinstance(row.get(column), (int, float))
        ]
        if points:
            series[column] = points
    if not series:
        raise ReproError("no plottable points (is %r numeric?)" % x_column)
    return line_chart(series, title=title or result.title, x_label=x_column)
