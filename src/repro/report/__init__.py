"""Reporting helpers: ASCII charts and markdown rendering of experiments.

The paper's figures are line charts; these utilities let the benchmark
harness and the CLI render an :class:`~repro.experiments.common.
ExperimentResult` as a terminal-friendly chart or a markdown table, so
reproduction output can be eyeballed against the paper without a
plotting stack.
"""

from repro.report.ascii_chart import line_chart
from repro.report.markdown import (
    breakdown_to_markdown,
    experiment_to_markdown,
    results_chart,
)

__all__ = [
    "line_chart",
    "breakdown_to_markdown",
    "experiment_to_markdown",
    "results_chart",
]
