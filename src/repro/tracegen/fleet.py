"""Multi-tenant fleet trace scenarios (extension).

The paper's consistency experiments (§7.9, Figures 11/12) stop at two
hosts sharing one working set.  A storage-client cache deployed
fleet-wide sees a different shape: *groups* of hosts each serve one
tenant's working set, tenant popularity is skewed, and the interesting
consistency traffic comes from operational events — rolling restarts
that re-warm caches group by group, and failovers that shift a tenant's
whole load onto cold standby hosts (shaped on Open-CAS's
``failover_standby`` flow, where a standby instance takes over a
primary's cache volume).

This module composes such fleet traces out of the §4 generator:

* each tenant gets its own scaled Impressions file-server model and a
  shared-working-set trace across its host group (the consistency
  worst case *within* the group; groups never overlap, as tenants
  don't share data);
* tenant volumes follow a Zipf-like skew, so a few tenants dominate
  the fleet's traffic as in production multi-tenant clusters;
* scenarios reshape the per-tenant traces before they are interleaved
  onto the combined host space.

Scenarios (:data:`SCENARIOS`):

``steady``
    skewed multi-tenant steady state — the fleet baseline.
``rolling_restart``
    staggered per-group re-warm read bursts spliced into the measured
    region, one group at a time, modeling a rolling maintenance
    restart's cold-cache refill traffic.
``failover_storm``
    tenant 0's group is split into primary and standby halves; the
    standbys idle through warmup, then the tenant's entire load
    switches onto them mid-measurement — a cold-cache miss storm whose
    writes must invalidate the primaries' now-stale copies.

Everything here is deterministic in ``FleetSpec.seed``: the same spec
and scenario always produce the same trace (the ``fleet-identity``
differential gate depends on it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro._units import MB
from repro.errors import ConfigError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.traces.records import Trace, TraceOp, TraceRecord

#: The scenario names :func:`fleet_trace` accepts, in reporting order.
SCENARIOS = ("steady", "rolling_restart", "failover_storm")

#: Upper bound on one group's re-warm burst (distinct warmup triples).
_REWARM_BURST_RECORDS = 256

#: Fraction of the measured region after which a failover switches the
#: tenant's load onto the standby half.
_FAILOVER_SWITCH_FRACTION = 0.5


@dataclass(frozen=True)
class FleetSpec:
    """Geometry of a multi-tenant fleet trace.

    ``n_hosts`` hosts are split into ``n_tenants`` equal groups;
    tenant ``t``'s traffic share follows ``1 / (t + 1)**tenant_skew``
    (normalized), so ``tenant_skew=0`` is uniform and larger values
    concentrate the fleet's volume on the first tenants.  ``ws_bytes``
    is each tenant's working-set size — like the experiments, fleet
    runs use scaled geometry, so this is typically megabytes.
    """

    n_hosts: int = 16
    n_tenants: int = 4
    tenant_skew: float = 1.0
    ws_bytes: int = 4 * MB
    threads_per_host: int = 2
    write_fraction: float = 0.30
    volume_multiple: float = 4.0
    warmup_fraction: float = 0.5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_hosts < 1 or self.n_tenants < 1:
            raise ConfigError("need at least one host and one tenant")
        if self.n_hosts % self.n_tenants:
            raise ConfigError(
                "n_hosts (%d) must split evenly across %d tenants"
                % (self.n_hosts, self.n_tenants)
            )
        if self.tenant_skew < 0:
            raise ConfigError("tenant skew must be non-negative")
        if self.ws_bytes <= 0:
            raise ConfigError("working set must be positive")
        if self.threads_per_host < 1:
            raise ConfigError("need at least one thread per host")

    @property
    def group_size(self) -> int:
        """Hosts per tenant group."""
        return self.n_hosts // self.n_tenants

    def tenant_shares(self) -> List[float]:
        """Normalized per-tenant traffic shares (Zipf-like skew)."""
        weights = [1.0 / (t + 1) ** self.tenant_skew for t in range(self.n_tenants)]
        total = sum(weights)
        return [w / total for w in weights]


def _tenant_config(
    spec: FleetSpec, tenant: int, share: float, group_hosts: int
) -> TraceGenConfig:
    """The §4 generator configuration for one tenant's group.

    Each tenant samples a private file-server model a few times its
    working set (the full 1.4 TB paper model is pointless overhead at
    fleet scale and would dominate generation time).  The tenant's
    skewed share scales its trace *volume*, floored so even cold
    tenants produce enough records to exercise their group.
    """
    fs_total = max(8 * spec.ws_bytes, 16 * MB)
    return TraceGenConfig(
        fs=ImpressionsConfig(
            total_bytes=fs_total,
            max_file_bytes=max(fs_total // 64, 1 * MB),
            seed=spec.seed * 7919 + tenant,
        ),
        working_set_bytes=spec.ws_bytes,
        n_hosts=group_hosts,
        threads_per_host=spec.threads_per_host,
        write_fraction=spec.write_fraction,
        shared_working_set=True,
        volume_multiple=max(0.25, spec.volume_multiple * share * spec.n_tenants),
        warmup_fraction=spec.warmup_fraction,
        seed=spec.seed * 1009 + tenant,
    )


def _with_rewarm_burst(spec: FleetSpec, tenant: int, trace: Trace) -> Trace:
    """Splice one group's re-warm read burst into its measured region.

    The burst replays distinct ``(file, offset, nblocks)`` triples from
    the group's own warmup — the blocks a restarted host would refill —
    as reads spread across the group's existing issuer streams, at a
    splice point staggered by tenant index (groups restart one after
    another, not all at once).
    """
    warm = trace.warmup_records
    measured = len(trace.records) - warm
    if warm == 0 or measured == 0:
        return trace
    issuers = trace.issuers()
    seen = set()
    burst: List[TraceRecord] = []
    for record in trace.records[:warm]:
        key = (record.file_id, record.offset, record.nblocks)
        if key in seen:
            continue
        seen.add(key)
        host, thread = issuers[len(burst) % len(issuers)]
        burst.append(
            TraceRecord(
                TraceOp.READ, host, thread, record.file_id, record.offset, record.nblocks
            )
        )
        if len(burst) >= _REWARM_BURST_RECORDS:
            break
    point = warm + int(measured * (tenant + 1) / (spec.n_tenants + 1))
    records = trace.records[:point] + burst + trace.records[point:]
    return Trace(records, trace.file_blocks, warm, dict(trace.metadata))


def _with_failover(spec: FleetSpec, trace: Trace) -> Trace:
    """Switch a tenant's load from its primary half to cold standbys.

    ``trace`` was generated over the group's *primary* half only, so
    the standby hosts idle (cold caches, no holder bits) until the
    switch point, when every remaining record moves onto them.  The
    issuer remap gives each primary ``(host, thread)`` stream a unique
    stream on its standby (same folding rule as
    :func:`repro.traces.tools.merge_traces`), preserving concurrency.
    """
    group = spec.group_size
    n_primary = (group + 1) // 2
    n_standby = group - n_primary
    measured = len(trace.records) - trace.warmup_records
    switch = trace.warmup_records + int(measured * _FAILOVER_SWITCH_FRACTION)
    records = list(trace.records[:switch])
    for record in trace.records[switch:]:
        standby = n_primary + (record.host % n_standby)
        thread = record.thread + (record.host // n_standby) * spec.threads_per_host
        records.append(
            TraceRecord(
                record.op, standby, thread, record.file_id, record.offset, record.nblocks
            )
        )
    return Trace(records, trace.file_blocks, trace.warmup_records, dict(trace.metadata))


def _interleave(groups: List[List[TraceRecord]]) -> List[TraceRecord]:
    """Proportional round-robin (the :func:`merge_traces` discipline):
    at each step pick the group whose progress lags its share most, so
    the combined replay overlaps all tenants as concurrent groups
    would."""
    total = sum(len(group) for group in groups)
    cursors = [0] * len(groups)
    out: List[TraceRecord] = []
    for _ in range(total):
        best = None
        best_lag = None
        for index, group in enumerate(groups):
            if cursors[index] >= len(group):
                continue
            lag = cursors[index] / len(group)
            if best_lag is None or lag < best_lag:
                best, best_lag = index, lag
        assert best is not None
        out.append(groups[best][cursors[best]])
        cursors[best] += 1
    return out


def _assemble(spec: FleetSpec, scenario: str, tenant_traces: List[Trace]) -> Trace:
    """Rebase each tenant onto its host group and private file region,
    then interleave — warmup phases together first, measured phases
    after, so the combined warmup boundary is exact."""
    file_blocks: List[int] = []
    warm_groups: List[List[TraceRecord]] = []
    measured_groups: List[List[TraceRecord]] = []
    for tenant, trace in enumerate(tenant_traces):
        file_offset = len(file_blocks)
        file_blocks.extend(trace.file_blocks)
        host_base = tenant * spec.group_size
        rebased = [
            TraceRecord(
                record.op,
                record.host + host_base,
                record.thread,
                record.file_id + file_offset,
                record.offset,
                record.nblocks,
            )
            for record in trace.records
        ]
        warm_groups.append(rebased[: trace.warmup_records])
        measured_groups.append(rebased[trace.warmup_records :])
    records = _interleave(warm_groups)
    warmup = len(records)
    records.extend(_interleave(measured_groups))
    return Trace(
        records,
        file_blocks,
        warmup_records=warmup,
        metadata={
            "fleet_scenario": scenario,
            "n_hosts": str(spec.n_hosts),
            "n_tenants": str(spec.n_tenants),
        },
    )


def fleet_trace(spec: FleetSpec, scenario: str = "steady") -> Trace:
    """Generate one fleet trace for ``spec`` under ``scenario``.

    See the module docstring for scenario semantics.  The result spans
    hosts ``0 .. spec.n_hosts - 1`` (replay with
    ``n_hosts=spec.n_hosts``: under ``failover_storm`` the standby
    hosts issue nothing before the switch, and a host-count inferred
    from early records would be short).
    """
    if scenario not in SCENARIOS:
        raise ConfigError(
            "unknown fleet scenario %r (choose from %s)"
            % (scenario, ", ".join(SCENARIOS))
        )
    if scenario == "failover_storm" and spec.group_size < 2:
        raise ConfigError(
            "failover_storm needs tenant groups of at least 2 hosts "
            "(got groups of %d)" % spec.group_size
        )
    shares = spec.tenant_shares()
    traces: List[Trace] = []
    for tenant in range(spec.n_tenants):
        group_hosts = spec.group_size
        if scenario == "failover_storm" and tenant == 0:
            # Generate over the primary half only; the standby half
            # stays cold until the switch moves the load onto it.
            group_hosts = (spec.group_size + 1) // 2
        trace = generate_trace(_tenant_config(spec, tenant, shares[tenant], group_hosts))
        if scenario == "rolling_restart":
            trace = _with_rewarm_burst(spec, tenant, trace)
        elif scenario == "failover_storm" and tenant == 0:
            trace = _with_failover(spec, trace)
        traces.append(trace)
    return _assemble(spec, scenario, traces)
