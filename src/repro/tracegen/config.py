"""Trace-generator configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro._units import GB, MB, blocks_for_bytes
from repro.errors import ConfigError
from repro.fsmodel.impressions import ImpressionsConfig


@dataclass(frozen=True)
class TraceGenConfig:
    """All knobs of the synthetic trace generator.

    Defaults follow the paper's baseline (§4): one host, eight threads,
    80 % of I/Os from the working set, 30 % writes, total volume four
    times the working-set size with the first half as warmup, 4 KB
    blocks, and a 1.4 TB Impressions file-server model.  Experiments
    vary one or more parameters via :func:`dataclasses.replace` or the
    ``with_*`` helpers.
    """

    fs: ImpressionsConfig = field(default_factory=ImpressionsConfig)
    working_set_bytes: int = 60 * GB
    n_hosts: int = 1
    threads_per_host: int = 8
    write_fraction: float = 0.30
    ws_fraction: float = 0.80
    #: Poisson mean of I/O request sizes, in blocks
    io_mean_blocks: float = 4.0
    #: Poisson mean of working-set subregion sizes, in blocks
    region_mean_blocks: float = 64.0
    #: total data volume as a multiple of the working-set size
    volume_multiple: float = 4.0
    #: leading fraction of the volume that is warmup (stats not collected)
    warmup_fraction: float = 0.5
    #: True: all hosts share one working set (the consistency worst case);
    #: False: each host samples its own working set.
    shared_working_set: bool = True
    seed: int = 42

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0:
            raise ConfigError("working set must be positive")
        if self.n_hosts < 1 or self.threads_per_host < 1:
            raise ConfigError("need at least one host and one thread")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write fraction must be in [0, 1]")
        if not 0.0 <= self.ws_fraction <= 1.0:
            raise ConfigError("working-set fraction must be in [0, 1]")
        if self.io_mean_blocks <= 0 or self.region_mean_blocks <= 0:
            raise ConfigError("I/O and region size means must be positive")
        if self.volume_multiple <= 0:
            raise ConfigError("volume multiple must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup fraction must be in [0, 1)")
        if self.working_set_bytes > self.fs.total_bytes:
            raise ConfigError(
                "working set (%d) larger than the file-server model (%d)"
                % (self.working_set_bytes, self.fs.total_bytes)
            )

    # --- derived quantities ------------------------------------------

    @property
    def working_set_blocks(self) -> int:
        return blocks_for_bytes(self.working_set_bytes)

    @property
    def target_volume_blocks(self) -> int:
        """Total block accesses the generated trace should contain."""
        return int(self.working_set_blocks * self.volume_multiple)

    # --- convenient variants ---------------------------------------------

    def with_write_fraction(self, fraction: float) -> "TraceGenConfig":
        return replace(self, write_fraction=fraction)

    def with_working_set(self, nbytes: int) -> "TraceGenConfig":
        return replace(self, working_set_bytes=nbytes)

    def with_hosts(self, n_hosts: int) -> "TraceGenConfig":
        return replace(self, n_hosts=n_hosts)

    def with_seed(self, seed: int) -> "TraceGenConfig":
        return replace(self, seed=seed)

    # --- presets -----------------------------------------------------------

    @classmethod
    def small_example(cls) -> "TraceGenConfig":
        """A laptop-friendly configuration for examples and quick tests:
        a 64 MB file-server model with an 8 MB working set."""
        return cls(
            fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB),
            working_set_bytes=8 * MB,
        )
