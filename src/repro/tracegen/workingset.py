"""Working-set construction.

The generator "samples this file server model to produce working sets":
a working set is a collection of file subregions totaling the requested
size.  File selection is weighted by popularity; subregion lengths are
Poisson (clamped to the file size); subregion starting points are
uniform — exactly the distributions §4 specifies.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigError
from repro.fsmodel.distributions import WeightedSampler, poisson_sample
from repro.fsmodel.files import FileSystemModel


class WorkingSetPiece:
    """One contiguous file subregion belonging to a working set."""

    __slots__ = ("file_id", "start", "nblocks", "weight")

    def __init__(self, file_id: int, start: int, nblocks: int, weight: float) -> None:
        self.file_id = file_id
        self.start = start
        self.nblocks = nblocks
        self.weight = weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<WSPiece file=%d start=%d n=%d w=%.0f>" % (
            self.file_id,
            self.start,
            self.nblocks,
            self.weight,
        )


class WorkingSet:
    """A sampled working set: pieces plus a weighted sampler over them.

    Pieces are weighted by ``popularity * nblocks`` so that, within a
    popularity class, every working-set block is equally likely to be
    the target of an I/O.
    """

    def __init__(self, pieces: List[WorkingSetPiece]) -> None:
        if not pieces:
            raise ConfigError("working set must contain at least one piece")
        self.pieces = pieces
        self._sampler = WeightedSampler([p.weight * p.nblocks for p in pieces])

    @property
    def total_blocks(self) -> int:
        return sum(piece.nblocks for piece in self.pieces)

    def sample_piece(self, rng: random.Random) -> WorkingSetPiece:
        """Pick a piece, weighted by popularity x size."""
        return self.pieces[self._sampler.sample(rng)]

    def __len__(self) -> int:
        return len(self.pieces)


def build_working_set(
    model: FileSystemModel,
    target_blocks: int,
    region_mean_blocks: float,
    rng: random.Random,
) -> WorkingSet:
    """Sample file subregions until the working set reaches ``target_blocks``.

    The same file may contribute multiple (possibly overlapping) pieces;
    overlap slightly shrinks the *unique* footprint, mirroring how real
    working sets revisit hot files.
    """
    if target_blocks < 1:
        raise ConfigError("working set target must be >= 1 block")
    file_sampler = WeightedSampler(model.popularities())
    pieces: List[WorkingSetPiece] = []
    total = 0
    while total < target_blocks:
        spec = model[file_sampler.sample(rng)]
        length = min(
            spec.blocks,
            max(1, poisson_sample(rng, region_mean_blocks)),
            target_blocks - total if target_blocks - total > 0 else 1,
        )
        start = rng.randrange(spec.blocks - length + 1)
        pieces.append(WorkingSetPiece(spec.file_id, start, length, float(spec.popularity)))
        total += length
    return WorkingSet(pieces)
