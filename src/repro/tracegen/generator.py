"""The synthetic trace generator itself.

For every I/O request (per §4 of the paper):

* host and thread are uniform;
* with probability ``ws_fraction`` (80 % baseline) the target comes
  from the (host's) working set, else from the whole file server;
* within the working set: a piece is chosen weighted by popularity, the
  request length is Poisson clamped to the piece, the start is uniform;
* from the whole server: a file is chosen weighted by popularity, the
  length is Poisson clamped to the file, the start is uniform;
* the operation is a write with probability ``write_fraction``.

Requests accumulate until the total volume reaches
``volume_multiple x working_set`` blocks; the first ``warmup_fraction``
of that volume is flagged as warmup.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.fsmodel.distributions import WeightedSampler, poisson_sample
from repro.fsmodel.files import FileSystemModel
from repro.fsmodel.impressions import generate_filesystem
from repro.engine.rng import RngStreams
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.workingset import WorkingSet, build_working_set
from repro.traces.records import Trace, TraceOp, TraceRecord


def generate_trace(
    config: TraceGenConfig, model: Optional[FileSystemModel] = None
) -> Trace:
    """Generate a synthetic trace.

    ``model`` lets callers reuse one expensive file-system model across
    many trace configurations (the experiments all share the paper's
    single "1.4 TB file server model"); by default a model is generated
    from ``config.fs``.
    """
    if model is None:
        model = generate_filesystem(config.fs)
    streams = RngStreams(config.seed)

    # --- working sets -------------------------------------------------
    ws_rng = streams.stream("tracegen", "workingset")
    working_sets: Dict[int, WorkingSet] = {}
    if config.shared_working_set:
        shared = build_working_set(
            model, config.working_set_blocks, config.region_mean_blocks, ws_rng
        )
        for host in range(config.n_hosts):
            working_sets[host] = shared
    else:
        for host in range(config.n_hosts):
            working_sets[host] = build_working_set(
                model, config.working_set_blocks, config.region_mean_blocks, ws_rng
            )

    # --- request generation ----------------------------------------------
    io_rng = streams.stream("tracegen", "requests")
    file_sampler = WeightedSampler(model.popularities())

    records: List[TraceRecord] = []
    volume_blocks = 0
    warmup_boundary_blocks = int(config.target_volume_blocks * config.warmup_fraction)
    warmup_records = 0

    while volume_blocks < config.target_volume_blocks:
        host = io_rng.randrange(config.n_hosts)
        thread = io_rng.randrange(config.threads_per_host)
        is_write = io_rng.random() < config.write_fraction

        if io_rng.random() < config.ws_fraction:
            piece = working_sets[host].sample_piece(io_rng)
            length = min(
                piece.nblocks, max(1, poisson_sample(io_rng, config.io_mean_blocks))
            )
            start = piece.start + io_rng.randrange(piece.nblocks - length + 1)
            file_id = piece.file_id
        else:
            spec = model[file_sampler.sample(io_rng)]
            length = min(
                spec.blocks, max(1, poisson_sample(io_rng, config.io_mean_blocks))
            )
            start = io_rng.randrange(spec.blocks - length + 1)
            file_id = spec.file_id

        records.append(
            TraceRecord(
                TraceOp.WRITE if is_write else TraceOp.READ,
                host,
                thread,
                file_id,
                start,
                length,
            )
        )
        if volume_blocks < warmup_boundary_blocks:
            warmup_records += 1
        volume_blocks += length

    metadata = {
        "generator": "repro.tracegen",
        "working_set_bytes": str(config.working_set_bytes),
        "n_hosts": str(config.n_hosts),
        "threads_per_host": str(config.threads_per_host),
        "write_fraction": "%g" % config.write_fraction,
        "ws_fraction": "%g" % config.ws_fraction,
        "seed": str(config.seed),
        "shared_working_set": str(config.shared_working_set),
    }
    return Trace(
        records,
        model.file_blocks(),
        warmup_records=warmup_records,
        metadata=metadata,
    )
