"""The synthetic trace generator itself.

For every I/O request (per §4 of the paper):

* host and thread are uniform;
* with probability ``ws_fraction`` (80 % baseline) the target comes
  from the (host's) working set, else from the whole file server;
* within the working set: a piece is chosen weighted by popularity, the
  request length is Poisson clamped to the piece, the start is uniform;
* from the whole server: a file is chosen weighted by popularity, the
  length is Poisson clamped to the file, the start is uniform;
* the operation is a write with probability ``write_fraction``.

Requests accumulate until the total volume reaches
``volume_multiple x working_set`` blocks; the first ``warmup_fraction``
of that volume is flagged as warmup.

Two entry points share one request iterator (and therefore one RNG
consumption pattern, so their outputs are record-for-record identical):

* :func:`generate_trace` materializes a :class:`Trace` of record
  objects — fine up to a few million records;
* :func:`generate_trace_chunked` streams the same requests directly
  into a :class:`~repro.traces.chunked.ChunkedCompiledTrace` spool,
  never building a ``TraceRecord``, with peak memory bounded by chunk
  size — the paper-scale path (ROADMAP item 3).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.fsmodel.distributions import WeightedSampler, poisson_sample
from repro.fsmodel.files import FileSystemModel
from repro.fsmodel.impressions import generate_filesystem
from repro.engine.rng import RngStreams
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.workingset import WorkingSet, build_working_set
from repro.traces.chunked import ChunkedCompiledTrace, ChunkedTraceWriter
from repro.traces.records import Trace, TraceOp, TraceRecord

#: One generated request: (is_write, host, thread, file_id, start,
#: length, is_warmup).
Request = Tuple[bool, int, int, int, int, int, bool]


def _build_working_sets(
    config: TraceGenConfig, model: FileSystemModel, streams: RngStreams
) -> Dict[int, WorkingSet]:
    """Per-host working sets (one shared set when configured)."""
    ws_rng = streams.stream("tracegen", "workingset")
    working_sets: Dict[int, WorkingSet] = {}
    if config.shared_working_set:
        shared = build_working_set(
            model, config.working_set_blocks, config.region_mean_blocks, ws_rng
        )
        for host in range(config.n_hosts):
            working_sets[host] = shared
    else:
        for host in range(config.n_hosts):
            working_sets[host] = build_working_set(
                model, config.working_set_blocks, config.region_mean_blocks, ws_rng
            )
    return working_sets


def _iter_requests(
    config: TraceGenConfig, model: FileSystemModel, streams: RngStreams
) -> Iterator[Request]:
    """Yield the request stream both generator entry points consume.

    The RNG draw order here *is* the trace content contract: any
    reordering changes every generated trace.  Both the materializing
    and the chunked path run this exact iterator, which is what makes
    their outputs (and fingerprints) bit-identical.
    """
    io_rng = streams.stream("tracegen", "requests")
    file_sampler = WeightedSampler(model.popularities())
    working_sets = _build_working_sets(config, model, streams)

    volume_blocks = 0
    warmup_boundary_blocks = int(config.target_volume_blocks * config.warmup_fraction)
    while volume_blocks < config.target_volume_blocks:
        host = io_rng.randrange(config.n_hosts)
        thread = io_rng.randrange(config.threads_per_host)
        is_write = io_rng.random() < config.write_fraction

        if io_rng.random() < config.ws_fraction:
            piece = working_sets[host].sample_piece(io_rng)
            length = min(
                piece.nblocks, max(1, poisson_sample(io_rng, config.io_mean_blocks))
            )
            start = piece.start + io_rng.randrange(piece.nblocks - length + 1)
            file_id = piece.file_id
        else:
            spec = model[file_sampler.sample(io_rng)]
            length = min(
                spec.blocks, max(1, poisson_sample(io_rng, config.io_mean_blocks))
            )
            start = io_rng.randrange(spec.blocks - length + 1)
            file_id = spec.file_id

        yield (
            is_write,
            host,
            thread,
            file_id,
            start,
            length,
            volume_blocks < warmup_boundary_blocks,
        )
        volume_blocks += length


def _trace_metadata(config: TraceGenConfig) -> Dict[str, str]:
    return {
        "generator": "repro.tracegen",
        "working_set_bytes": str(config.working_set_bytes),
        "n_hosts": str(config.n_hosts),
        "threads_per_host": str(config.threads_per_host),
        "write_fraction": "%g" % config.write_fraction,
        "ws_fraction": "%g" % config.ws_fraction,
        "seed": str(config.seed),
        "shared_working_set": str(config.shared_working_set),
    }


def generate_trace(
    config: TraceGenConfig, model: Optional[FileSystemModel] = None
) -> Trace:
    """Generate a synthetic trace as in-memory record objects.

    ``model`` lets callers reuse one expensive file-system model across
    many trace configurations (the experiments all share the paper's
    single "1.4 TB file server model"); by default a model is generated
    from ``config.fs``.

    Peak memory is O(records); for traces that should not be
    materialized, use :func:`generate_trace_chunked`, which produces
    identical content.
    """
    if model is None:
        model = generate_filesystem(config.fs)
    streams = RngStreams(config.seed)

    records: List[TraceRecord] = []
    warmup_records = 0
    for is_write, host, thread, file_id, start, length, is_warmup in _iter_requests(
        config, model, streams
    ):
        records.append(
            TraceRecord(
                TraceOp.WRITE if is_write else TraceOp.READ,
                host,
                thread,
                file_id,
                start,
                length,
            )
        )
        if is_warmup:
            warmup_records += 1

    return Trace(
        records,
        model.file_blocks(),
        warmup_records=warmup_records,
        metadata=_trace_metadata(config),
    )


def generate_trace_chunked(
    config: TraceGenConfig,
    model: Optional[FileSystemModel] = None,
    *,
    spool_dir: Union[None, str, Path] = None,
    chunk_records: Optional[int] = None,
) -> ChunkedCompiledTrace:
    """Generate the same synthetic trace directly into a chunked spool.

    No ``TraceRecord`` objects are ever built: requests stream from the
    shared iterator straight into a
    :class:`~repro.traces.chunked.ChunkedTraceWriter`, so peak memory
    is bounded by chunk size regardless of trace length.  Content — and
    therefore the trace fingerprint and every replay signature — is
    bit-identical to ``compile_trace(generate_trace(config, model))``.

    ``spool_dir`` chooses where the spool lives (a temp directory by
    default; call ``delete()`` on the result when done).
    ``chunk_records`` overrides the chunk size (default
    ``REPRO_TRACE_CHUNK_RECORDS`` or 65536).
    """
    if model is None:
        model = generate_filesystem(config.fs)
    streams = RngStreams(config.seed)

    writer = ChunkedTraceWriter(
        model.file_blocks(), spool_dir=spool_dir, chunk_records=chunk_records
    )
    warmup_records = 0
    try:
        for is_write, host, thread, file_id, start, length, is_warmup in _iter_requests(
            config, model, streams
        ):
            writer.append(is_write, host, thread, file_id, start, length)
            if is_warmup:
                warmup_records += 1
        return writer.freeze(warmup_records, _trace_metadata(config))
    except BaseException:
        writer.abort()
        raise
