"""Synthetic trace generator (§4 of the paper).

"We wrote a trace generator to produce large traces with characteristics
similar to real traces.  The trace generator starts from a list of files
and file sizes from the Impressions file system generator.  It samples
this file server model to produce working sets, then samples these to
produce I/O requests.  A portion of the I/O requests are sampled instead
from the whole file server."

Pipeline: :func:`repro.fsmodel.generate_filesystem` →
:func:`repro.tracegen.workingset.build_working_set` →
:func:`generate_trace`.
"""

from repro.tracegen.config import TraceGenConfig
from repro.tracegen.workingset import WorkingSet, WorkingSetPiece, build_working_set
from repro.tracegen.generator import generate_trace, generate_trace_chunked
from repro.tracegen.fleet import SCENARIOS as FLEET_SCENARIOS
from repro.tracegen.fleet import FleetSpec, fleet_trace

__all__ = [
    "TraceGenConfig",
    "WorkingSet",
    "WorkingSetPiece",
    "build_working_set",
    "generate_trace",
    "generate_trace_chunked",
    "FleetSpec",
    "fleet_trace",
    "FLEET_SCENARIOS",
]
