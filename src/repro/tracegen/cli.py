"""Command-line interface for the trace generator.

Installed as ``repro-tracegen``::

    repro-tracegen --working-set 60M --fs-size 1400M --out baseline.trace
    repro-tracegen --working-set 60M --fs-size 1400M --chunked-out spool_dir/
    repro-tracegen --inspect baseline.trace
    repro-tracegen --inspect spool_dir/

``--chunked-out`` streams the trace directly into a chunked spool
directory (see ``docs/SCALING.md``) with peak memory bounded by chunk
size — the path for traces too large to materialize.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro._units import GB, KB, MB, TB, format_bytes
from repro.errors import ReproError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace, generate_trace_chunked
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.format import load_trace, save_trace
from repro.traces.stats import compute_stats

_SUFFIXES = {"K": KB, "M": MB, "G": GB, "T": TB}


def parse_size(text: str) -> int:
    """Parse a size like ``60M`` or ``8G`` into bytes.

    >>> parse_size("4K")
    4096
    """
    text = text.strip().upper()
    if text and text[-1] in _SUFFIXES:
        return int(float(text[:-1]) * _SUFFIXES[text[-1]])
    return int(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tracegen",
        description="Generate or inspect synthetic block I/O traces "
        "(per §4 of 'Flash Caching on the Storage Client').",
    )
    parser.add_argument("--inspect", metavar="TRACE", help="print statistics of an existing trace (file or chunked spool directory) and exit")
    parser.add_argument("--out", metavar="PATH", help="output trace path")
    parser.add_argument("--binary", action="store_true", help="write the binary format")
    parser.add_argument(
        "--chunked-out",
        metavar="DIR",
        help="stream the trace into a chunked spool directory instead of "
        "materializing it (bounded memory; replays directly)",
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=None,
        help="records per chunk for --chunked-out "
        "(default: REPRO_TRACE_CHUNK_RECORDS or 65536)",
    )
    parser.add_argument("--fs-size", default="1400M", help="file-server model size (default 1400M)")
    parser.add_argument("--working-set", default="60M", help="working-set size (default 60M)")
    parser.add_argument("--hosts", type=int, default=1)
    parser.add_argument("--threads", type=int, default=8, help="threads per host")
    parser.add_argument("--write-fraction", type=float, default=0.30)
    parser.add_argument("--ws-fraction", type=float, default=0.80)
    parser.add_argument("--seed", type=int, default=42)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.inspect:
            if Path(args.inspect).is_dir():
                # Chunked spools summarize from the manifest; the full
                # stats pass would materialize the records.
                chunked = ChunkedCompiledTrace.open(args.inspect)
                print(
                    "chunked trace: %d records in %d chunks, %d files, "
                    "warmup=%d, fingerprint=%s"
                    % (
                        len(chunked),
                        len(chunked._chunk_index),
                        len(chunked.file_blocks),
                        chunked.warmup_records,
                        chunked.fingerprint[:16],
                    )
                )
                return 0
            trace = load_trace(args.inspect)
            print(compute_stats(trace).summary())
            return 0
        if not args.out and not args.chunked_out:
            parser.error("--out or --chunked-out is required unless --inspect is given")
        config = TraceGenConfig(
            fs=ImpressionsConfig(total_bytes=parse_size(args.fs_size)),
            working_set_bytes=parse_size(args.working_set),
            n_hosts=args.hosts,
            threads_per_host=args.threads,
            write_fraction=args.write_fraction,
            ws_fraction=args.ws_fraction,
            seed=args.seed,
        )
        if args.chunked_out:
            chunked = generate_trace_chunked(
                config,
                spool_dir=args.chunked_out,
                chunk_records=args.chunk_records,
            )
            print(
                "spooled %d records into %s (fingerprint %s)"
                % (len(chunked), args.chunked_out, chunked.fingerprint[:16])
            )
            if not args.out:
                return 0
        trace = generate_trace(config)
        save_trace(trace, args.out, binary=args.binary)
        print(
            "wrote %d records (%s of I/O) to %s"
            % (len(trace), format_bytes(trace.total_bytes), args.out)
        )
        return 0
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
