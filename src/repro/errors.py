"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch package failures with one ``except`` clause while still
distinguishing configuration mistakes from simulation-engine misuse and
malformed trace input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation engine was misused or reached an impossible state."""


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class CacheError(ReproError):
    """A cache store was used incorrectly (e.g. duplicate insert)."""
