"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch package failures with one ``except`` clause while still
distinguishing configuration mistakes from simulation-engine misuse and
malformed trace input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation engine was misused or reached an impossible state."""


class InvariantViolation(SimulationError):
    """A runtime invariant check failed (see :mod:`repro.invariants`).

    Structured: carries the failing checker's name, the simulated time
    at which the check ran (``None`` for checks outside a simulation),
    and a small snapshot of the offending state for post-mortems.
    """

    def __init__(
        self,
        checker: str,
        simulated_ns=None,
        message: str = "",
        snapshot=None,
    ) -> None:
        at = "t=%d ns" % simulated_ns if simulated_ns is not None else "no sim time"
        super().__init__(
            "invariant %r violated (%s): %s" % (checker, at, message)
        )
        self.checker = checker
        self.simulated_ns = simulated_ns
        self.snapshot = dict(snapshot or {})


class ParallelReplayConflict(SimulationError):
    """A parallel replay worker touched state owned by another group.

    Raised inside a worker when a host acquires a copy of a block that
    some *other* group writes (see ``ConsistencyDirectory.conflict_watch``
    and :mod:`repro.engine.parallel`): the groups are coupled after all,
    so the sharded replay cannot be bit-identical and the parent falls
    back to one serial replay.  Never escapes ``run_simulation``.
    """

    def __init__(self, host_id: int, block: int) -> None:
        super().__init__(
            "host %d cached block %d, which another replay group writes"
            % (host_id, block)
        )
        self.host_id = host_id
        self.block = block


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class CacheError(ReproError):
    """A cache store was used incorrectly (e.g. duplicate insert)."""
