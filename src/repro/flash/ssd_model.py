"""Behavioral SSD model reproducing the paper's Figure 1 measurements.

Section 6.2 of the paper measured two consumer SSDs by replaying the
simulator's flash I/O logs and found:

1. high *short-term* variance in access latency, but stable averages
   across groups of 10,000–100,000 block accesses;
2. a single stable average **write** latency from beginning to end,
   across all workloads (even 90 % application writes);
3. **read** latency that fluctuates and degrades as the device fills,
   with a weak positive relationship between write volume and read
   latency — and much better read latency replaying cache-workload logs
   than doing purely random I/O ("caching workloads are not random").

The paper did not (and could not) identify the internal mechanism, so
this model is *behavioral*: it generates per-I/O latencies with exactly
those three properties, which is what Figure 1's scatter plot shows.
It exists so the Figure 1 benchmark can regenerate the plot and so the
flash-modeling-validation test can confirm that a single average
latency is an adequate simulator model (the paper's conclusion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro._units import US
from repro.engine.rng import RngStreams
from repro.errors import ConfigError

#: An SSD operation: ("r" or "w", block number).
SSDOp = Tuple[str, int]


@dataclass(frozen=True)
class SSDModelConfig:
    """Parameters of the behavioral SSD model.

    Latencies are nanoseconds per 4 KB block.  Defaults are tuned so a
    cache-workload replay averages near Table 1's 88 µs read / 21 µs
    write.
    """

    capacity_blocks: int = 58 * 1024 * 256  # 58 GB of 4 KB blocks, as in Fig. 1
    base_read_ns: int = 60 * US
    base_write_ns: int = 21 * US
    #: read latency grows by this fraction of base as the device fills 0→1
    fill_read_penalty: float = 0.6
    #: additional read penalty proportional to (writes so far / capacity)
    write_volume_read_penalty: float = 0.05
    #: multiplier applied to reads under a purely random access pattern
    random_read_penalty: float = 1.8
    #: lognormal sigma of per-I/O noise (short-term variance)
    noise_sigma: float = 0.35
    seed: int = 20130626

    def __post_init__(self) -> None:
        if self.capacity_blocks <= 0:
            raise ConfigError("SSD capacity must be positive")
        if self.noise_sigma < 0:
            raise ConfigError("noise sigma must be non-negative")


class BehavioralSSD:
    """Generates per-I/O latencies with Figure 1's qualitative behavior."""

    def __init__(self, config: SSDModelConfig = SSDModelConfig(), random_pattern: bool = False) -> None:
        self.config = config
        self.random_pattern = random_pattern
        self._rng = RngStreams(config.seed).stream("ssd")
        self._written: Set[int] = set()
        self.total_ios = 0
        self.total_writes = 0

    # --- state ---------------------------------------------------------

    @property
    def fill_fraction(self) -> float:
        """Fraction of the device's blocks ever written (0..1)."""
        return min(1.0, len(self._written) / self.config.capacity_blocks)

    @property
    def write_volume_fraction(self) -> float:
        """Cumulative writes expressed in units of device capacity."""
        return self.total_writes / self.config.capacity_blocks

    # --- latency generation ---------------------------------------------

    def _noise(self) -> float:
        sigma = self.config.noise_sigma
        if sigma == 0:
            return 1.0
        # lognormal with mean 1: exp(N(-sigma^2/2, sigma))
        return math.exp(self._rng.gauss(-0.5 * sigma * sigma, sigma))

    def read_latency_ns(self) -> int:
        """Sample the latency of reading one block *now*."""
        cfg = self.config
        mean = cfg.base_read_ns * (
            1.0
            + cfg.fill_read_penalty * self.fill_fraction
            + cfg.write_volume_read_penalty * self.write_volume_fraction
        )
        if self.random_pattern:
            mean *= cfg.random_read_penalty
        return max(1, round(mean * self._noise()))

    def write_latency_ns(self) -> int:
        """Sample the latency of writing one block *now*.

        Deliberately independent of fill level and history (finding 2).
        """
        return max(1, round(self.config.base_write_ns * self._noise()))

    def access(self, op: str, block: int) -> int:
        """Perform one I/O, updating device state; returns its latency."""
        self.total_ios += 1
        if op == "w":
            self.total_writes += 1
            self._written.add(block % self.config.capacity_blocks)
            return self.write_latency_ns()
        if op == "r":
            return self.read_latency_ns()
        raise ConfigError("SSD op must be 'r' or 'w', got %r" % (op,))

    # --- replay helpers (what §6.2 actually did) --------------------------

    def replay(self, ops: Iterable[SSDOp]) -> List[int]:
        """Replay an I/O log; returns the latency of every operation."""
        return [self.access(op, block) for op, block in ops]

    @staticmethod
    def grouped_averages(latencies: Sequence[int], group: int = 10_000) -> List[float]:
        """Average latencies in groups, as Figure 1 plots ("each point is
        the average of 10,000 block I/Os")."""
        if group <= 0:
            raise ConfigError("group size must be positive")
        out: List[float] = []
        for start in range(0, len(latencies) - group + 1, group):
            chunk = latencies[start : start + group]
            out.append(sum(chunk) / len(chunk))
        return out
