"""Flash device models.

Three levels of fidelity, matching the paper's usage:

* :class:`FlashDevice` — the simulator's model: a block device with
  average per-block read/write latencies (Table 1), optional limited
  internal parallelism, and an optional doubled-write "persistent
  metadata" mode (§7.8).
* :class:`~repro.flash.ssd_model.BehavioralSSD` — the empirical model
  behind Figure 1: per-I/O latencies with short-term variance, a stable
  write latency, and fill-dependent read degradation (§6.2).
* :class:`~repro.flash.ftl.PageMappedFTL` — a simple page-mapped flash
  translation layer with greedy garbage collection and wear statistics;
  the paper assumes an FTL exists (§3) and leaves caching-specialized
  FTLs as future work (§8), so this is an extension used by ablation
  benchmarks.
"""

from repro.flash.timing import FlashTiming
from repro.flash.device import FlashDevice
from repro.flash.ssd_model import BehavioralSSD, SSDModelConfig
from repro.flash.ftl import PageMappedFTL, FTLConfig
from repro.flash.ftl_device import FTLFlashDevice

__all__ = [
    "FlashTiming",
    "FlashDevice",
    "BehavioralSSD",
    "SSDModelConfig",
    "PageMappedFTL",
    "FTLConfig",
    "FTLFlashDevice",
]
