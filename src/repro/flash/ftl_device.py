"""An FTL-backed flash device (extension; §8 of the paper).

The paper assumes the flash device's translation layer is free ("we
assume our flash device comes equipped with a flash translation layer")
and leaves a caching-specialized FTL as future work.  This device makes
the FTL's cost visible: every cache write runs through a
:class:`~repro.flash.ftl.PageMappedFTL`, and the garbage collector's
relocation writes and erases are charged to the operation that
triggered them, so the *effective* write latency grows with write
amplification.  Cache evictions TRIM the page, which is exactly the
hint a caching-specialized FTL exploits (clean evicted data need never
be relocated) — the ablation benchmark quantifies how much that helps.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro._units import US
from repro.engine.simulation import Simulator
from repro.errors import SimulationError
from repro.flash.device import FlashDevice
from repro.flash.ftl import FTLConfig, PageMappedFTL
from repro.flash.timing import FlashTiming
from repro.obs.events import EventKind

_DEVICE_WRITE = EventKind.DEVICE_WRITE

#: Erase time of one flash erase block (typical SLC/MLC-era value).
DEFAULT_ERASE_NS = 1_500 * US


class FTLFlashDevice(FlashDevice):
    """A flash cache device whose writes run through a page-mapped FTL.

    Cache block numbers are arbitrary (global file-server blocks); the
    device assigns each resident block a logical page from a free list
    and releases it on TRIM, so the FTL's logical space is exactly the
    cache's capacity plus overprovisioning.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_blocks: int,
        timing: Optional[FlashTiming] = None,
        persistent_metadata: bool = False,
        overprovision: float = 0.07,
        pages_per_block: int = 64,
        erase_ns: int = DEFAULT_ERASE_NS,
        rated_erase_cycles: int = 3000,
        name: str = "ftl-flash",
    ) -> None:
        super().__init__(
            sim,
            timing=timing,
            parallelism=0,
            persistent_metadata=persistent_metadata,
            name=name,
        )
        if capacity_blocks < 1:
            raise SimulationError("FTL device needs a positive capacity")
        # Size the physical flash so the logical space covers the cache.
        logical_needed = capacity_blocks
        physical_pages = int(logical_needed / (1.0 - overprovision)) + 2 * pages_per_block
        n_blocks = max(4, -(-physical_pages // pages_per_block))
        self.ftl = PageMappedFTL(
            FTLConfig(
                n_blocks=n_blocks,
                pages_per_block=pages_per_block,
                overprovision=overprovision,
                rated_erase_cycles=rated_erase_cycles,
            )
        )
        self.erase_ns = erase_ns
        self.capacity_blocks = capacity_blocks
        # cache block number -> logical page
        self._lpn_of: Dict[int, int] = {}
        self._free_lpns = list(range(min(self.ftl.config.logical_pages, capacity_blocks)))
        # FTL counter snapshots at the last reset_counters() call, so
        # the endurance metrics cover the measurement window only.
        self._host_writes_at_reset = 0
        self._flash_writes_at_reset = 0
        self._erases_at_reset = 0

    # --- address management ----------------------------------------------

    def _lpn_for(self, block: int) -> int:
        lpn = self._lpn_of.get(block)
        if lpn is None:
            if not self._free_lpns:
                raise SimulationError(
                    "%s: more resident blocks than capacity %d"
                    % (self.name, self.capacity_blocks)
                )
            lpn = self._free_lpns.pop()
            self._lpn_of[block] = lpn
        return lpn

    def trim_block(self, block: int) -> None:
        """Release the evicted block's page (the caching-FTL hint)."""
        lpn = self._lpn_of.pop(block, None)
        if lpn is not None:
            self.ftl.trim(lpn)
            self._free_lpns.append(lpn)

    # --- I/O ------------------------------------------------------------------

    def write_service_ns(self, block: Optional[int] = None) -> int:
        """Charge one block write (translation, GC relocations, erases)
        and return its total service time."""
        self.blocks_written += 1
        obs = self.obs
        if block is None:
            # Anonymous write (no translation context): base-model cost.
            if obs is not None:
                obs.emit(
                    self._sim.now, _DEVICE_WRITE, tier=self.name,
                    dur=self.write_latency_ns,
                )
            return self.write_latency_ns
        flash_writes_before = self.ftl.flash_writes
        erases_before = self.ftl.erases
        self.ftl.write(self._lpn_for(block))
        relocations = self.ftl.flash_writes - flash_writes_before  # >= 1
        erases = self.ftl.erases - erases_before
        latency = relocations * self.write_latency_ns + erases * self.erase_ns
        if self.persistent_metadata:
            # write_latency_ns already includes the metadata write for
            # the host page; relocated pages move data only, so strip
            # the double charge for them.
            latency -= (relocations - 1) * self.timing.write_ns
        if obs is not None:
            obs.emit(
                self._sim.now, _DEVICE_WRITE, block=block, tier=self.name,
                dur=latency,
                info={"relocations": relocations, "erases": erases},
            )
        return latency

    def write_block(self, block: Optional[int] = None) -> Iterator:
        """Write one block; GC relocation traffic is charged here."""
        yield self.write_service_ns(block)

    # --- reporting ---------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero traffic counters and snapshot the FTL's lifetime
        counters so endurance metrics cover the measurement window."""
        super().reset_counters()
        self._host_writes_at_reset = self.ftl.host_writes
        self._flash_writes_at_reset = self.ftl.flash_writes
        self._erases_at_reset = self.ftl.erases

    @property
    def write_amplification(self) -> float:
        return self.ftl.write_amplification

    def wear_stats(self):
        return self.ftl.wear_stats()

    # --- endurance accounting ------------------------------------------

    def program_bytes(self) -> int:
        """Bytes physically programmed since the last counter reset —
        host pages *and* GC relocations, plus the metadata page per
        host write in persistent mode."""
        from repro._units import BLOCK_SIZE

        pages = self.ftl.flash_writes - self._flash_writes_at_reset
        total = pages * BLOCK_SIZE
        if self.persistent_metadata:
            total += (
                self.ftl.host_writes - self._host_writes_at_reset
            ) * BLOCK_SIZE
        return total

    def erase_count(self) -> int:
        return self.ftl.erases - self._erases_at_reset

    def measured_write_amplification(self) -> Optional[float]:
        host = self.ftl.host_writes - self._host_writes_at_reset
        if host == 0:
            return 0.0
        return (self.ftl.flash_writes - self._flash_writes_at_reset) / host
