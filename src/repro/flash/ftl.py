"""A simple page-mapped flash translation layer (extension).

The paper assumes the flash device "comes equipped with a flash
translation layer that handles wear leveling, erase cycles, and other
considerations" (§3) and calls a caching-specialized FTL future work
(§8, citing FlashTier).  This module provides a baseline page-mapped
FTL so ablation benchmarks can measure the write amplification and wear
a cache workload induces on such a layer.

Model: the device is ``n_blocks`` erase blocks of ``pages_per_block``
4 KB pages.  Host writes append to an open block; when free blocks run
low, a greedy garbage collector picks the erase block with the fewest
valid pages (ties broken by lowest erase count, a cheap form of wear
leveling), relocates its valid pages, and erases it.  Collection loops
until the free-block threshold is restored (or no victim can yield net
space), and runs both before and after the host append: before, so a
drained free list is refilled from the garbage the host's own
invalidation just created; after, so the device returns to its
steady-state reserve between writes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class FTLConfig:
    """Geometry and GC tuning of the page-mapped FTL."""

    n_blocks: int = 1024
    pages_per_block: int = 64
    #: fraction of physical space reserved (never exposed to the host)
    overprovision: float = 0.07
    #: GC runs when free erase blocks drop to this count
    gc_threshold_blocks: int = 2
    #: rated program/erase cycles per erase block (MLC-class default);
    #: feeds the device-lifetime estimate in the endurance metrics
    rated_erase_cycles: int = 3000

    def __post_init__(self) -> None:
        if self.n_blocks < 4 or self.pages_per_block < 1:
            raise ConfigError("FTL geometry too small")
        if not 0.0 <= self.overprovision < 1.0:
            raise ConfigError("overprovision must be in [0, 1)")
        if self.gc_threshold_blocks < 1:
            raise ConfigError("gc threshold must be >= 1")
        if self.rated_erase_cycles < 1:
            raise ConfigError("rated erase cycles must be >= 1")

    @property
    def rated_total_erases(self) -> int:
        """The device's whole erase budget (cycles x erase blocks)."""
        return self.rated_erase_cycles * self.n_blocks

    @property
    def physical_pages(self) -> int:
        return self.n_blocks * self.pages_per_block

    @property
    def logical_pages(self) -> int:
        """Host-visible capacity in pages."""
        return int(self.physical_pages * (1.0 - self.overprovision))


class _EraseBlock:
    __slots__ = ("index", "valid", "next_free", "erase_count", "pages")

    def __init__(self, index: int, pages_per_block: int) -> None:
        self.index = index
        self.valid = 0
        self.next_free = 0
        self.erase_count = 0
        # pages[i] = logical page stored there, or None if invalid/unused
        self.pages: List[Optional[int]] = [None] * pages_per_block


class PageMappedFTL:
    """Page-mapped FTL with greedy, wear-aware garbage collection."""

    def __init__(self, config: FTLConfig = FTLConfig()) -> None:
        self.config = config
        ppb = config.pages_per_block
        self._blocks = [_EraseBlock(i, ppb) for i in range(config.n_blocks)]
        # Free erase blocks: a deque ordered oldest-reclaimed first (pop
        # from the right, reclaimed blocks enter on the left) plus a
        # mirror set for O(1) membership tests in the GC candidate scan.
        self._free: Deque[int] = deque(range(config.n_blocks - 1, 0, -1))
        self._free_set: Set[int] = set(self._free)
        self._open: _EraseBlock = self._blocks[0]
        # logical page -> (erase block index, page index)
        self._map: Dict[int, Tuple[int, int]] = {}
        # statistics
        self.host_writes = 0
        self.flash_writes = 0
        self.erases = 0
        self.gc_runs = 0

    # --- host interface ----------------------------------------------

    def read(self, lpn: int) -> Optional[Tuple[int, int]]:
        """Return the physical location of a logical page, or None."""
        self._check_lpn(lpn)
        return self._map.get(lpn)

    def write(self, lpn: int) -> None:
        """Write (or overwrite) a logical page."""
        self._check_lpn(lpn)
        self.host_writes += 1
        self._invalidate(lpn)
        # Collect before appending: the invalidation above may have
        # created the only reclaimable garbage, and the append below
        # must never find the free list drained.
        if len(self._free) < self.config.gc_threshold_blocks:
            self._collect()
        self._append(lpn)
        if len(self._free) < self.config.gc_threshold_blocks:
            self._collect()

    @property
    def free_blocks(self) -> int:
        """Erase blocks currently on the free list."""
        return len(self._free)

    def trim(self, lpn: int) -> None:
        """Discard a logical page (cache eviction maps naturally to TRIM)."""
        self._check_lpn(lpn)
        self._invalidate(lpn)
        self._map.pop(lpn, None)

    # --- statistics -----------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Total flash page writes per host page write.

        0.0 before any host write (an idle device amplifies nothing —
        not NaN, not a ZeroDivisionError); >= 1.0 afterwards, since
        every host write lands at least one flash page program.
        """
        if self.host_writes == 0:
            return 0.0
        return self.flash_writes / self.host_writes

    def wear_stats(self) -> Dict[str, float]:
        """Erase-count distribution across erase blocks.

        Returns a dict with exactly three keys, all floats:

        * ``"min"``  — fewest erases of any erase block;
        * ``"max"``  — most erases of any erase block;
        * ``"mean"`` — ``erases / n_blocks`` (the average cycles
          consumed; ``max - min`` measures how well the greedy GC's
          wear-aware tie-breaking levels the device).

        All zero on a fresh device.
        """
        counts = [blk.erase_count for blk in self._blocks]
        return {
            "min": float(min(counts)),
            "max": float(max(counts)),
            "mean": sum(counts) / len(counts),
        }

    # --- internals --------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.config.logical_pages:
            raise ConfigError(
                "logical page %d out of range [0, %d)" % (lpn, self.config.logical_pages)
            )

    def _invalidate(self, lpn: int) -> None:
        location = self._map.get(lpn)
        if location is None:
            return
        block_index, page_index = location
        block = self._blocks[block_index]
        block.pages[page_index] = None
        block.valid -= 1

    def _append(self, lpn: int) -> None:
        block = self._open
        if block.next_free >= self.config.pages_per_block:
            block = self._open_new_block()
        page_index = block.next_free
        block.pages[page_index] = lpn
        block.next_free += 1
        block.valid += 1
        self._map[lpn] = (block.index, page_index)
        self.flash_writes += 1

    def _open_new_block(self) -> _EraseBlock:
        if not self._free:
            raise SimulationError(
                "FTL out of free blocks; host wrote past logical capacity"
            )
        index = self._free.pop()
        self._free_set.discard(index)
        self._open = self._blocks[index]
        return self._open

    def _collect(self) -> None:
        """Greedy GC: reclaim blocks until the free threshold is restored.

        A single reclaim pass is not enough — relocating a victim's
        valid pages consumes open-block space, and under high valid-page
        occupancy one pass can leave the free list *smaller* than it
        started.  The loop keeps reclaiming until the threshold holds or
        no victim can yield net space (every candidate fully valid); the
        pass count is bounded by the geometry since each pass erases one
        block.
        """
        threshold = self.config.gc_threshold_blocks
        for _pass in range(self.config.n_blocks):
            if len(self._free) >= threshold:
                return
            if not self._collect_one():
                return

    def _gc_candidates(self) -> Iterable[_EraseBlock]:
        """Erase blocks eligible for reclamation.

        A *full* open block is eligible too: no further appends can land
        in it, so it is closed in all but name — and when all remaining
        garbage sits there (the compaction endgame), reclaiming it is
        the only move that frees space.
        """
        ppb = self.config.pages_per_block
        for blk in self._blocks:
            if blk.index in self._free_set or blk.next_free == 0:
                continue
            if blk is self._open and blk.next_free < ppb:
                continue
            yield blk

    def _collect_one(self) -> bool:
        """Reclaim the best victim; False when no victim can gain space."""
        candidates = list(self._gc_candidates())
        if not candidates:
            return False
        victim = min(candidates, key=lambda blk: (blk.valid, blk.erase_count))
        if victim.valid >= self.config.pages_per_block:
            # Relocating a fully-valid block consumes exactly the space
            # it frees; collection cannot make progress.
            return False
        self.gc_runs += 1
        survivors = [lpn for lpn in victim.pages if lpn is not None]
        # Erase first so the victim itself is available as relocation
        # space — this guarantees GC always has room to make progress.
        victim.pages = [None] * self.config.pages_per_block
        victim.next_free = 0
        victim.valid = 0
        victim.erase_count += 1
        self.erases += 1
        if victim is not self._open:
            self._free.appendleft(victim.index)
            self._free_set.add(victim.index)
        # else: the erased block stays open; survivors re-pack into it.
        for lpn in survivors:
            self._append(lpn)
        return True
