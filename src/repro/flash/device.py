"""The simulator's flash device: a block device with average latencies.

The paper treats the flash "as a block device; that is, we write blocks
to it and read them back", assumes a flash translation layer ("we assume
our flash device comes equipped with a flash translation layer"), and
charges a single average per-block latency for each operation, a model
it validates against real SSDs in §6.2.

Two knobs extend the base model:

* ``parallelism`` — number of operations the device services at once.
  ``0`` (the default) means unlimited, i.e. a pure latency server; a
  positive value adds a FIFO queue, used by ablation benchmarks.
* ``persistent_metadata`` — §7.8's persistence cost model: every write
  is charged twice ("doubling the flash write latency to model
  performing two flash writes per block, one of the data and one for
  the meta-data describing the block").
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.resources import Resource
from repro.engine.simulation import Simulator
from repro.flash.timing import FlashTiming
from repro.obs.events import EventKind

_DEVICE_READ = EventKind.DEVICE_READ
_DEVICE_WRITE = EventKind.DEVICE_WRITE


class FlashDevice:
    """A flash cache device charging per-block latencies."""

    def __init__(
        self,
        sim: Simulator,
        timing: Optional[FlashTiming] = None,
        parallelism: int = 0,
        persistent_metadata: bool = False,
        name: str = "flash",
    ) -> None:
        self._sim = sim
        self.timing = timing or FlashTiming.paper_default()
        self.persistent_metadata = persistent_metadata
        self.name = name
        self._channel: Optional[Resource] = None
        if parallelism > 0:
            self._channel = Resource(sim, capacity=parallelism, name=name)
        # traffic counters
        self.blocks_read = 0
        self.blocks_written = 0
        #: observability sink (an EventRecorder); None when tracing is
        #: off — the service paths then pay a single branch.
        self.obs = None

    @property
    def write_latency_ns(self) -> int:
        """Effective per-block write latency including metadata writes."""
        if self.persistent_metadata:
            return 2 * self.timing.write_ns
        return self.timing.write_ns

    @property
    def read_latency_ns(self) -> int:
        return self.timing.read_ns

    @property
    def unlimited_parallelism(self) -> bool:
        """True when the device is a pure latency server (no channel
        queue), which makes the non-generator ``*_service_ns`` methods
        valid substitutes for the process-generator I/O methods."""
        return self._channel is None

    def read_service_ns(self, block: Optional[int] = None) -> int:
        """Charge one block read and return its service time.

        Non-generator twin of :meth:`read_block` for hot-path callers
        that fold the device delay into their own process frame.  Only
        valid on unlimited-parallelism devices — channel-limited devices
        must queue through the generator form.
        """
        self.blocks_read += 1
        obs = self.obs
        if obs is not None:
            obs.emit(
                self._sim.now, _DEVICE_READ, block=block if block is not None else -1,
                tier=self.name, dur=self.timing.read_ns,
            )
        return self.timing.read_ns

    def write_service_ns(self, block: Optional[int] = None) -> int:
        """Charge one block write and return its service time (see
        :meth:`read_service_ns` for the validity constraint)."""
        self.blocks_written += 1
        obs = self.obs
        if obs is not None:
            obs.emit(
                self._sim.now, _DEVICE_WRITE, block=block if block is not None else -1,
                tier=self.name, dur=self.write_latency_ns,
            )
        return self.write_latency_ns

    def read_block(self, block: Optional[int] = None) -> Iterator:
        """Process generator: read one 4 KB block.

        ``block`` identifies the cached block; the base device ignores
        it (average-latency model), the FTL-backed subclass uses it for
        address translation.
        """
        if self._channel is not None:
            self.blocks_read += 1
            obs = self.obs
            if obs is not None:
                obs.emit(
                    self._sim.now, _DEVICE_READ,
                    block=block if block is not None else -1,
                    tier=self.name, dur=self.timing.read_ns,
                )
            yield from self._channel.use(self.timing.read_ns)
        else:
            yield self.read_service_ns(block)

    def write_block(self, block: Optional[int] = None) -> Iterator:
        """Process generator: write one 4 KB block (plus metadata if
        the device is in persistent mode)."""
        if self._channel is not None:
            self.blocks_written += 1
            obs = self.obs
            if obs is not None:
                obs.emit(
                    self._sim.now, _DEVICE_WRITE,
                    block=block if block is not None else -1,
                    tier=self.name, dur=self.write_latency_ns,
                )
            yield from self._channel.use(self.write_latency_ns)
        else:
            yield self.write_service_ns(block)

    def trim_block(self, block: int) -> None:
        """Notify the device a block was evicted (no-op for the base
        model; the FTL-backed device reclaims the page)."""

    def reset_counters(self) -> None:
        """Zero traffic counters (warmup/measurement boundary)."""
        self.blocks_read = 0
        self.blocks_written = 0

    # --- endurance accounting -----------------------------------------

    def program_bytes(self) -> int:
        """Bytes physically programmed since the last counter reset.

        The base model has no FTL, so this is exactly the host traffic
        (doubled in persistent mode for the metadata page); the
        FTL-backed subclass counts relocation traffic too.
        """
        from repro._units import BLOCK_SIZE

        per_block = 2 * BLOCK_SIZE if self.persistent_metadata else BLOCK_SIZE
        return self.blocks_written * per_block

    def erase_count(self) -> int:
        """Erase operations since the last counter reset (0 without an
        FTL model — the base device never surfaces erases)."""
        return 0

    def measured_write_amplification(self) -> Optional[float]:
        """Write amplification over the measurement window (None when
        the device has no FTL to measure it with)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FlashDevice %s read=%dns write=%dns>" % (
            self.name,
            self.timing.read_ns,
            self.write_latency_ns,
        )
