"""Flash timing presets.

The paper's Table 1 gives one flash timing (88 µs read, 21 µs write per
4 KB block, derived from validating against NetApp Mercury hardware);
§7.7 sweeps the read time from near-zero ("the leftmost point represents
the potential performance of phase-change memory") to ~100 µs with the
write time scaled proportionally.  :meth:`FlashTiming.scaled_read`
builds exactly that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import US
from repro.errors import ConfigError


@dataclass(frozen=True)
class FlashTiming:
    """Per-4KB-block access latencies of a flash device, in nanoseconds."""

    read_ns: int = 88 * US
    write_ns: int = 21 * US

    def __post_init__(self) -> None:
        if self.read_ns < 0 or self.write_ns < 0:
            raise ConfigError(
                "flash latencies must be non-negative: read=%d write=%d"
                % (self.read_ns, self.write_ns)
            )

    @classmethod
    def paper_default(cls) -> "FlashTiming":
        """Table 1's flash timing: 88 µs read, 21 µs write."""
        return cls()

    @classmethod
    def scaled_read(cls, read_ns: int) -> "FlashTiming":
        """A timing with the given read latency and a proportionally
        scaled write latency, as in the paper's §7.7 sweep ("a range of
        flash read latencies (shown) and write latencies
        (proportional)")."""
        default = cls.paper_default()
        if default.read_ns == 0:
            raise ConfigError("cannot scale from a zero default read latency")
        write_ns = round(read_ns * default.write_ns / default.read_ns)
        return cls(read_ns=read_ns, write_ns=write_ns)

    @classmethod
    def phase_change_memory(cls) -> "FlashTiming":
        """An aggressive timing standing in for PCM (§7.7's leftmost point)."""
        return cls.scaled_read(1 * US)

    def scaled(self, factor: float) -> "FlashTiming":
        """Both latencies multiplied by ``factor`` (e.g. 2.0 = slower part)."""
        if factor < 0:
            raise ConfigError("scale factor must be non-negative")
        return FlashTiming(
            read_ns=round(self.read_ns * factor),
            write_ns=round(self.write_ns * factor),
        )
