"""Time and size units used throughout the simulator.

The paper's simulator works in integer multiples of 100 ns; ours keeps
every timestamp and latency as an integer count of *nanoseconds*, which
is both exact and cheap.  Sizes are integer bytes; cache capacities and
I/O extents are expressed in 4 KB blocks (the paper's block size).
"""

from __future__ import annotations

# --- time units (integer nanoseconds) -----------------------------------

NS = 1
US = 1_000 * NS
MS = 1_000 * US
SECOND = 1_000 * MS

# --- size units (integer bytes) ------------------------------------------

KB = 1_024
MB = 1_024 * KB
GB = 1_024 * MB
TB = 1_024 * GB

#: The paper's traces and caches use 4 KB blocks throughout.
BLOCK_SIZE = 4 * KB


def blocks_for_bytes(nbytes: int) -> int:
    """Return the number of 4 KB blocks needed to hold ``nbytes``.

    Rounds up, so any non-zero byte count occupies at least one block.

    >>> blocks_for_bytes(1)
    1
    >>> blocks_for_bytes(8192)
    2
    """
    if nbytes < 0:
        raise ValueError("byte count must be non-negative, got %r" % (nbytes,))
    return (nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE


def format_bytes(nbytes: int) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``'64.0 GB'``.

    >>> format_bytes(64 * GB)
    '64.0 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if nbytes < 0:
        return "-" + format_bytes(-nbytes)
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return "%d B" % nbytes
            return "%.1f %s" % (value, unit)
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(ns: int) -> str:
    """Render a nanosecond count with the most readable unit.

    >>> format_time(400)
    '400 ns'
    >>> format_time(88_000)
    '88.0 us'
    """
    if ns < 0:
        return "-" + format_time(-ns)
    if ns < US:
        return "%d ns" % ns
    if ns < MS:
        return "%.1f us" % (ns / US)
    if ns < SECOND:
        return "%.3f ms" % (ns / MS)
    return "%.3f s" % (ns / SECOND)
