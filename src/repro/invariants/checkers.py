"""Pure invariant check functions over individual data structures.

These functions take a live object — a :class:`~repro.cache.store.BlockStore`,
a :class:`~repro.flash.ftl.PageMappedFTL`, or an
:class:`~repro.flash.ftl_device.FTLFlashDevice` — and raise
:class:`~repro.errors.InvariantViolation` if any structural invariant is
broken.  They have no dependency on the simulation kernel, so the
randomized micro-tests can call them after every single operation; the
system-level checkers in :mod:`repro.invariants.suite` call the same
functions at replay-time check boundaries.

Every invariant here must hold after *any* complete store/FTL operation
(there are no transient windows inside one call): the structures are
pure and mutate atomically with respect to the simulation's yields.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvariantViolation


def fail(checker: str, message: str, now: Optional[int] = None, **snapshot) -> None:
    """Raise a structured :class:`InvariantViolation`."""
    raise InvariantViolation(checker, now, message, snapshot)


# --- cache tier --------------------------------------------------------


def check_store(store, now: Optional[int] = None) -> None:
    """Structural invariants of one :class:`BlockStore`.

    * occupancy never exceeds capacity;
    * the explicit dirty set agrees with per-entry ``dirty`` flags;
    * the eviction policy tracks exactly the resident keys;
    * entries know their own block number;
    * lifetime ``insertions - departures == occupancy`` (the lifetime
      counters are never reset, unlike ``stats``);
    * statistics identities: ``hits + misses == lookups``,
      ``dirty_evictions <= evictions``, all counters non-negative.
    """
    name = "cache.%s" % (store.name or "store")
    occupancy = len(store._entries)
    if occupancy > store.capacity_blocks:
        fail(
            name,
            "occupancy %d exceeds capacity %d" % (occupancy, store.capacity_blocks),
            now,
            occupancy=occupancy,
            capacity=store.capacity_blocks,
        )
    dirty_flags = {b for b, e in store._entries.items() if e.dirty}
    if dirty_flags != store._dirty:
        fail(
            name,
            "dirty set disagrees with entry flags",
            now,
            only_in_set=sorted(store._dirty - dirty_flags)[:8],
            only_in_flags=sorted(dirty_flags - store._dirty)[:8],
        )
    policy_keys = list(store._policy)
    if len(policy_keys) != occupancy or set(policy_keys) != set(store._entries):
        fail(
            name,
            "eviction policy tracks %d keys but the store holds %d entries"
            % (len(policy_keys), occupancy),
            now,
            policy_only=sorted(set(policy_keys) - set(store._entries))[:8],
            store_only=sorted(set(store._entries) - set(policy_keys))[:8],
        )
    for block, entry in store._entries.items():
        if entry.block != block:
            fail(
                name,
                "entry under key %d claims block %d" % (block, entry.block),
                now,
                key=block,
                entry_block=entry.block,
            )
    net = store.lifetime_insertions - store.lifetime_departures
    if net != occupancy:
        fail(
            name,
            "lifetime insertions - departures = %d but occupancy is %d"
            % (net, occupancy),
            now,
            lifetime_insertions=store.lifetime_insertions,
            lifetime_departures=store.lifetime_departures,
            occupancy=occupancy,
        )
    stats = store.stats
    counters = stats.as_dict()
    counters.pop("hit_rate", None)
    for key, value in counters.items():
        if value < 0:
            fail(name, "negative statistic %s = %d" % (key, value), now, **counters)
    try:
        # The lookup identity lives with the stats object itself so
        # non-invariant callers (reports, tests) can assert it too.
        stats.check_consistent()
    except ValueError as exc:
        fail(
            name,
            str(exc),
            now,
            hits=stats.hits,
            misses=stats.misses,
            lookups=stats.lookups,
        )
    if stats.dirty_evictions > stats.evictions:
        fail(
            name,
            "dirty evictions (%d) exceed total evictions (%d)"
            % (stats.dirty_evictions, stats.evictions),
            now,
            dirty_evictions=stats.dirty_evictions,
            evictions=stats.evictions,
        )


# --- flash translation layer -------------------------------------------


def check_ftl(ftl, now: Optional[int] = None) -> None:
    """Accounting invariants of one :class:`PageMappedFTL`.

    * the free deque and its mirror set agree and hold no duplicates;
    * the free list is disjoint from the open block;
    * free blocks are fully erased (no valid pages, write pointer 0);
    * each erase block's ``valid`` counter matches its page array, and
      no page beyond the write pointer is programmed;
    * the mapping table and page arrays describe the same pages
      (``sum(valid) == len(map)`` and every map entry points at a page
      holding that logical page);
    * ``flash_writes >= host_writes`` (write amplification >= 1) and
      the map never exceeds the logical capacity.
    """
    name = "ftl"
    cfg = ftl.config
    if len(ftl._free) != len(ftl._free_set) or set(ftl._free) != ftl._free_set:
        fail(
            name,
            "free deque (%d entries) and free set (%d entries) disagree"
            % (len(ftl._free), len(ftl._free_set)),
            now,
            free=sorted(ftl._free)[:8],
            free_set=sorted(ftl._free_set)[:8],
        )
    if ftl._open.index in ftl._free_set:
        fail(
            name,
            "open block %d is on the free list" % ftl._open.index,
            now,
            open_block=ftl._open.index,
        )
    total_valid = 0
    for blk in ftl._blocks:
        programmed = sum(1 for page in blk.pages if page is not None)
        if programmed != blk.valid:
            fail(
                name,
                "block %d counts %d valid pages but holds %d"
                % (blk.index, blk.valid, programmed),
                now,
                block=blk.index,
                counted=blk.valid,
                held=programmed,
            )
        if not 0 <= blk.next_free <= cfg.pages_per_block:
            fail(
                name,
                "block %d write pointer %d out of range" % (blk.index, blk.next_free),
                now,
                block=blk.index,
                next_free=blk.next_free,
            )
        if any(page is not None for page in blk.pages[blk.next_free :]):
            fail(
                name,
                "block %d holds data beyond its write pointer %d"
                % (blk.index, blk.next_free),
                now,
                block=blk.index,
                next_free=blk.next_free,
            )
        if blk.index in ftl._free_set and (blk.valid or blk.next_free):
            fail(
                name,
                "free block %d is not erased (valid=%d next_free=%d)"
                % (blk.index, blk.valid, blk.next_free),
                now,
                block=blk.index,
                valid=blk.valid,
                next_free=blk.next_free,
            )
        total_valid += blk.valid
    if total_valid != len(ftl._map):
        fail(
            name,
            "blocks hold %d valid pages but the map has %d entries"
            % (total_valid, len(ftl._map)),
            now,
            valid_pages=total_valid,
            mapped=len(ftl._map),
        )
    for lpn, (block_index, page_index) in ftl._map.items():
        if ftl._blocks[block_index].pages[page_index] != lpn:
            fail(
                name,
                "map sends lpn %d to (%d, %d) which holds %r"
                % (lpn, block_index, page_index, ftl._blocks[block_index].pages[page_index]),
                now,
                lpn=lpn,
                location=(block_index, page_index),
            )
    if ftl.flash_writes < ftl.host_writes:
        fail(
            name,
            "flash writes (%d) below host writes (%d); amplification < 1"
            % (ftl.flash_writes, ftl.host_writes),
            now,
            flash_writes=ftl.flash_writes,
            host_writes=ftl.host_writes,
        )
    if len(ftl._map) > cfg.logical_pages:
        fail(
            name,
            "map holds %d entries but logical capacity is %d"
            % (len(ftl._map), cfg.logical_pages),
            now,
            mapped=len(ftl._map),
            logical_pages=cfg.logical_pages,
        )


def check_ftl_device(device, now: Optional[int] = None) -> None:
    """Invariants of an :class:`FTLFlashDevice` and its embedded FTL.

    The device's block→logical-page table must be injective, bounded by
    the cache capacity, disjoint from its free-page list, and every
    assigned page must be live in the FTL's mapping.
    """
    check_ftl(device.ftl, now)
    name = "ftl-device.%s" % device.name
    lpns = list(device._lpn_of.values())
    if len(set(lpns)) != len(lpns):
        fail(name, "two cache blocks share a logical page", now, lpns=sorted(lpns)[:8])
    if len(lpns) > device.capacity_blocks:
        fail(
            name,
            "%d resident blocks exceed capacity %d"
            % (len(lpns), device.capacity_blocks),
            now,
            resident=len(lpns),
            capacity=device.capacity_blocks,
        )
    overlap = set(device._free_lpns) & set(lpns)
    if overlap:
        fail(
            name,
            "logical pages both free and assigned",
            now,
            overlap=sorted(overlap)[:8],
        )
    for block, lpn in device._lpn_of.items():
        if device.ftl.read(lpn) is None:
            fail(
                name,
                "block %d holds logical page %d which the FTL never stored"
                % (block, lpn),
                now,
                block=block,
                lpn=lpn,
            )
