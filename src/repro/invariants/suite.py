"""System-level invariant checkers and the suite that runs them.

A :class:`Checker` validates one aspect of a live
:class:`~repro.core.machine.System`.  ``check()`` runs at configurable
record intervals during replay — at those moments every simulation
process is suspended at a ``yield``, so any invariant that holds at all
yield boundaries may be checked.  ``final()`` runs once after the event
queue drains and may additionally assert *quiescent* invariants (such
as the flash-superset-of-RAM placement) that legitimately break inside
multi-step operations.

The suite is pluggable: :func:`register_checker_factory` adds a factory
(``system -> iterable of checkers``) to every subsequently built suite,
and :func:`registered` scopes a factory to a ``with`` block — the
differential harness uses that to assert experiment-specific invariants
like "the s/s policy combination never leaves a block dirty".
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional

from repro.cache.block import Medium
from repro.core.architectures import Architecture
from repro.flash.ftl_device import FTLFlashDevice
from repro.invariants.checkers import check_ftl_device, check_store, fail

#: Environment flag enabling the sanitizer everywhere (read at System
#: construction, so it propagates into sweep worker processes).
ENV_FLAG = "REPRO_CHECK_INVARIANTS"


def env_enabled() -> bool:
    """True when :data:`ENV_FLAG` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in ("", "0", "false", "no")


def resolve_enabled(explicit: Optional[bool], config) -> bool:
    """Resolve the three enablement sources, most specific first:
    an explicit ``run_simulation(check_invariants=...)`` argument, then
    the ``SimConfig.check_invariants`` field, then the environment."""
    if explicit is not None:
        return explicit
    return bool(config.check_invariants) or env_enabled()


class Checker:
    """One named invariant over a live system."""

    name = "checker"

    def check(self, system) -> None:
        """Validate at an interval boundary (all processes at yields)."""

    def final(self, system) -> None:
        """Validate at end-of-run; defaults to the interval check."""
        self.check(system)


class CacheTierChecker(Checker):
    """Per-host cache-tier invariants.

    Interval checks: the structural :func:`check_store` invariants for
    every tier, pin agreement for the layered architectures (a flash
    entry is pinned exactly when its block is RAM-resident),
    tier exclusivity for the migration architecture, and buffer-medium
    accounting for the unified architecture.

    Final check: additionally the paper's placement invariant for the
    naive/lookaside architectures — every *clean* RAM-resident block
    has a flash copy.  Dirty blocks are exempt (write-allocated data
    enters the flash on its first writeback), the check is skipped
    after a non-volatile restart (blocks cached while the flash tier
    recovers never get flash copies), and it is skipped for multi-host
    runs (a cross-host invalidation arriving between a fill's flash
    and RAM installs leaves a clean RAM block without its flash twin).  This only holds when the system
    is quiescent: mid-operation, an eviction's writeback window leaves
    a RAM block temporarily without its flash twin.
    """

    name = "cache-tiers"

    def check(self, system) -> None:
        now = system.sim.now
        for host in system.hosts:
            for store in self._stores(host):
                check_store(store, now)
            architecture = system.config.architecture
            flash = getattr(host, "flash", None)
            if architecture in (Architecture.NAIVE, Architecture.LOOKASIDE):
                if flash is not None:
                    self._check_pins(host, flash, now)
            elif architecture is Architecture.EXCLUSIVE:
                if flash is not None:
                    self._check_exclusive(host, flash, now)
            elif architecture is Architecture.UNIFIED:
                self._check_media(host, now)

    def final(self, system) -> None:
        self.check(system)
        if system.config.architecture not in (
            Architecture.NAIVE,
            Architecture.LOOKASIDE,
        ):
            return
        if not system.config.flash_admission.is_always:
            # A selective admission policy legitimately leaves clean
            # RAM-resident blocks without flash copies (rejected fills).
            return
        if system.n_hosts > 1:
            # Cross-host invalidation can land between a miss fill's
            # flash install and its RAM install; the drop clears the
            # flash copy and the fill then completes into RAM alone,
            # so the placement invariant only holds for single-host
            # replays (where no invalidations exist).
            return
        for host in system.hosts:
            flash = getattr(host, "flash", None)
            if flash is None or host.flash_online_at != 0:
                continue
            missing = [
                block
                for block in host.ram.blocks()
                if not host.ram.peek(block).dirty and flash.peek(block) is None
            ]
            if missing:
                fail(
                    self.name,
                    "host %d: %d clean RAM blocks lack flash copies"
                    % (host.host_id, len(missing)),
                    system.sim.now,
                    host=host.host_id,
                    missing=sorted(missing)[:8],
                )

    @staticmethod
    def _stores(host):
        for attribute in ("ram", "flash", "cache"):
            store = getattr(host, attribute, None)
            if store is not None:
                yield store

    def _check_pins(self, host, flash, now) -> None:
        for block, entry in flash._entries.items():
            resident = block in host.ram
            if entry.pinned != resident:
                fail(
                    self.name,
                    "host %d: flash entry %d pinned=%s but RAM-resident=%s"
                    % (host.host_id, block, entry.pinned, resident),
                    now,
                    host=host.host_id,
                    block=block,
                    pinned=entry.pinned,
                    ram_resident=resident,
                )

    def _check_exclusive(self, host, flash, now) -> None:
        shared = set(host.ram._entries) & set(flash._entries)
        if shared:
            fail(
                self.name,
                "host %d: %d blocks live in both tiers of the exclusive "
                "architecture" % (host.host_id, len(shared)),
                now,
                host=host.host_id,
                shared=sorted(shared)[:8],
            )

    def _check_media(self, host, now) -> None:
        used_ram = sum(
            1 for entry in host.cache._entries.values() if entry.medium is Medium.RAM
        )
        used_flash = len(host.cache._entries) - used_ram
        expected_free_ram = host.config.ram_blocks - used_ram
        expected_free_flash = host.config.flash_blocks - used_flash
        if (
            host._free_ram != expected_free_ram
            or host._free_flash != expected_free_flash
            or host._free_ram < 0
            or host._free_flash < 0
        ):
            fail(
                self.name,
                "host %d: unified medium accounting drifted "
                "(free_ram=%d expected %d, free_flash=%d expected %d)"
                % (
                    host.host_id,
                    host._free_ram,
                    expected_free_ram,
                    host._free_flash,
                    expected_free_flash,
                ),
                now,
                host=host.host_id,
                free_ram=host._free_ram,
                free_flash=host._free_flash,
                used_ram=used_ram,
                used_flash=used_flash,
            )


class FTLChecker(Checker):
    """FTL accounting for every FTL-backed flash device, plus agreement
    between the device's resident-block table and the cache tier that
    feeds it (a block occupies a logical page exactly while a flash
    buffer holds it)."""

    name = "ftl"

    def check(self, system) -> None:
        now = system.sim.now
        for host, device in zip(system.hosts, system.flash_devices):
            if not isinstance(device, FTLFlashDevice):
                continue
            check_ftl_device(device, now)
            resident = self._flash_resident(host)
            if resident is None:
                continue
            assigned = set(device._lpn_of)
            if assigned != resident:
                fail(
                    self.name,
                    "host %d: device holds pages for %d blocks but the "
                    "cache holds %d flash-resident blocks"
                    % (host.host_id, len(assigned), len(resident)),
                    now,
                    host=host.host_id,
                    device_only=sorted(assigned - resident)[:8],
                    cache_only=sorted(resident - assigned)[:8],
                )

    @staticmethod
    def _flash_resident(host):
        flash = getattr(host, "flash", None)
        if flash is not None:
            return set(flash._entries)
        cache = getattr(host, "cache", None)
        if cache is not None:
            return {
                block
                for block, entry in cache._entries.items()
                if entry.medium is Medium.FLASH
            }
        return None


class KernelChecker(Checker):
    """Event-kernel invariants.

    Interval checks: simulated time never moves backwards between
    checks, and no queued event is scheduled in the past.  (The kernel
    itself enforces that a completion never fires twice.)

    Final check: the event queue is drained and no process is still
    blocked on an unfired completion — a non-zero count means a waiter
    leaked (a deadlock the drain silently swallowed).
    """

    name = "kernel"

    def __init__(self) -> None:
        self._last_now: Optional[int] = None

    def check(self, system) -> None:
        sim = system.sim
        if self._last_now is not None and sim.now < self._last_now:
            fail(
                self.name,
                "simulated time moved backwards (%d < %d)"
                % (sim.now, self._last_now),
                sim.now,
                previous=self._last_now,
            )
        self._last_now = sim.now
        if sim._heap and sim._heap[0][0] < sim.now:
            fail(
                self.name,
                "queued event at t=%d precedes now" % sim._heap[0][0],
                sim.now,
                head=sim._heap[0][0],
            )

    def final(self, system) -> None:
        self.check(system)
        sim = system.sim
        if sim.pending_events != 0:
            fail(
                self.name,
                "%d events still queued after the run drained" % sim.pending_events,
                sim.now,
                pending=sim.pending_events,
            )
        if sim.blocked_processes != 0:
            fail(
                self.name,
                "%d processes leaked waiting on completions nobody fired"
                % sim.blocked_processes,
                sim.now,
                blocked=sim.blocked_processes,
            )


class AdmissionChecker(Checker):
    """Flash-admission accounting: every verdict is an admit or a
    reject, and no flash insertion happens without an admit verdict
    ("no flash write without an admission verdict")."""

    name = "admission"

    def check(self, system) -> None:
        now = system.sim.now
        for host in system.hosts:
            controller = getattr(host, "_admission", None)
            if controller is None:
                continue
            if controller.checks != controller.admits + controller.rejects:
                fail(
                    self.name,
                    "host %d: %d admission checks != %d admits + %d rejects"
                    % (
                        host.host_id,
                        controller.checks,
                        controller.admits,
                        controller.rejects,
                    ),
                    now,
                    host=host.host_id,
                    checks=controller.checks,
                    admits=controller.admits,
                    rejects=controller.rejects,
                )
            flash = getattr(host, "flash", None)
            if flash is not None and flash.lifetime_insertions > controller.admits:
                fail(
                    self.name,
                    "host %d: %d flash insertions exceed %d admission admits"
                    % (host.host_id, flash.lifetime_insertions, controller.admits),
                    now,
                    host=host.host_id,
                    insertions=flash.lifetime_insertions,
                    admits=controller.admits,
                )


class DirectoryChecker(Checker):
    """Consistency-directory invariants.

    Interval checks: every holder bit names a real host (no mask bit at
    or above ``n_hosts``), and the merged counters stay consistent —
    invalidating writes never exceed block writes, and each invalidating
    write dropped at least one copy.
    """

    name = "directory"

    def check(self, system) -> None:
        directory = system.directory
        now = system.sim.now
        host_limit = 1 << directory.n_hosts
        for shard_index, shard in enumerate(directory._shards):
            for block, mask in shard.holders.items():
                if mask <= 0 or mask >= host_limit:
                    fail(
                        self.name,
                        "shard %d block %d holder mask %#x outside %d hosts"
                        % (shard_index, block, mask, directory.n_hosts),
                        now,
                        shard=shard_index,
                        block=block,
                        mask=mask,
                    )
        writes = directory.block_writes
        requiring = directory.writes_requiring_invalidation
        copies = directory.copies_invalidated
        if requiring > writes or copies < requiring:
            fail(
                self.name,
                "counter drift: %d block writes, %d requiring invalidation, "
                "%d copies invalidated" % (writes, requiring, copies),
                now,
                block_writes=writes,
                writes_requiring_invalidation=requiring,
                copies_invalidated=copies,
            )


class CleaningChecker(Checker):
    """Cleaning-policy invariants: under the aggressive (ACP-style)
    policy the dirty backlog net of in-flight drains never exceeds the
    high watermark."""

    name = "cleaning"

    def check(self, system) -> None:
        from repro.policies.cleaning import AggressiveCleanController

        now = system.sim.now
        for host in system.hosts:
            controller = getattr(host, "_cleaning", None)
            if not isinstance(controller, AggressiveCleanController):
                continue
            store = controller.store
            if store is None:
                continue
            backlog = store.dirty_count - controller.pending
            if backlog > controller.high_blocks:
                fail(
                    self.name,
                    "host %d: dirty backlog %d (net of %d draining) exceeds "
                    "high watermark %d"
                    % (
                        host.host_id,
                        store.dirty_count,
                        controller.pending,
                        controller.high_blocks,
                    ),
                    now,
                    host=host.host_id,
                    dirty=store.dirty_count,
                    pending=controller.pending,
                    high_blocks=controller.high_blocks,
                )


# --- registry and suite -------------------------------------------------

#: ``system -> iterable of checkers``; factories run at suite build time.
CheckerFactory = Callable[[object], Iterable[Checker]]


def _default_checkers(_system) -> Iterable[Checker]:
    return [
        CacheTierChecker(),
        FTLChecker(),
        KernelChecker(),
        AdmissionChecker(),
        CleaningChecker(),
        DirectoryChecker(),
    ]


_factories: List[CheckerFactory] = [_default_checkers]


def register_checker_factory(factory: CheckerFactory) -> None:
    """Add ``factory`` to every suite built afterwards."""
    _factories.append(factory)


def unregister_checker_factory(factory: CheckerFactory) -> None:
    """Remove a previously registered factory (no-op if absent)."""
    try:
        _factories.remove(factory)
    except ValueError:
        pass


@contextmanager
def registered(factory: CheckerFactory):
    """Scope a checker factory to a ``with`` block (test harness use)."""
    register_checker_factory(factory)
    try:
        yield factory
    finally:
        unregister_checker_factory(factory)


class CheckerSuite:
    """The checkers attached to one system, with run counters."""

    def __init__(self, system, checkers: List[Checker]) -> None:
        self.system = system
        self.checkers = checkers
        self.checks_run = 0

    def check(self) -> None:
        """Run every checker's interval validation."""
        for checker in self.checkers:
            checker.check(self.system)
        self.checks_run += 1

    def final(self) -> None:
        """Run every checker's end-of-run validation."""
        for checker in self.checkers:
            checker.final(self.system)
        self.checks_run += 1


def build_suite(system) -> CheckerSuite:
    """Instantiate every registered checker for ``system``."""
    checkers: List[Checker] = []
    for factory in _factories:
        checkers.extend(factory(system))
    return CheckerSuite(system, checkers)
