"""Runtime invariant checking — the simulation sanitizer.

The paper's conclusions rest on the simulator's internal accounting
being exactly right; a silently mis-counted writeback skews every
figure.  This package validates the simulator *while it runs*: enable
it with ``check_invariants=True`` on :class:`~repro.core.config.SimConfig`
or :func:`~repro.core.simulator.run_simulation`, the
``REPRO_CHECK_INVARIANTS=1`` environment variable, or the CLI's
``--check`` flag.  Checkers run at configurable record intervals and
once more at end-of-run; any violation raises a structured
:class:`~repro.errors.InvariantViolation` carrying the failing
checker's name, the simulated time, and a state snapshot.

See ``docs/INVARIANTS.md`` for the full checker catalogue, and
:mod:`repro.validation.differential` for the degenerate-parameter
cross-checks built on top of this layer.
"""

from repro.errors import InvariantViolation
from repro.invariants.checkers import (
    check_ftl,
    check_ftl_device,
    check_store,
    fail,
)
from repro.invariants.suite import (
    ENV_FLAG,
    CacheTierChecker,
    Checker,
    CheckerSuite,
    DirectoryChecker,
    FTLChecker,
    KernelChecker,
    build_suite,
    env_enabled,
    register_checker_factory,
    registered,
    resolve_enabled,
    unregister_checker_factory,
)

__all__ = [
    "ENV_FLAG",
    "CacheTierChecker",
    "Checker",
    "CheckerSuite",
    "DirectoryChecker",
    "FTLChecker",
    "InvariantViolation",
    "KernelChecker",
    "build_suite",
    "check_ftl",
    "check_ftl_device",
    "check_store",
    "env_enabled",
    "fail",
    "register_checker_factory",
    "registered",
    "resolve_enabled",
    "unregister_checker_factory",
]
