"""Degenerate-parameter differential cross-checks.

The cross-check in :mod:`repro.validation.crosscheck` compares the
simulator against an independent reference model; this module compares
the simulator *against itself* at degenerate parameter points where
distinct configurations must provably coincide:

1. **flash = 0 collapses the architectures.**  With no flash tier the
   naive, lookaside, and unified architectures are the same machine (a
   single RAM cache in front of the filer), so their latencies,
   simulated time, filer traffic, writebacks, and network utilization
   must match *exactly* — any drift means one architecture's degenerate
   path charges different costs.  (Cache hit counters are compared only
   between naive and lookaside: the layered read path counts a
   concurrent install as a hit after the initial miss while the unified
   path does not, a documented accounting asymmetry, not a timing
   divergence.)  The exclusive architecture is excluded by design: its
   background demotion staging changes *when* eviction writebacks are
   charged even without flash.

2. **A read-only trace writes nothing back.**  With ``write_fraction=0``
   no block is ever dirty, so writebacks, dirty evictions, and filer
   writes must all be zero, in every architecture.

3. **The s/s policy combination leaves nothing dirty.**  When both
   tiers write through synchronously, every block is clean again by the
   time its operation completes; a pluggable ``zero-dirty`` checker
   (registered via :func:`repro.invariants.registered`) asserts
   ``dirty_count == 0`` on every store after *every* trace record of a
   single-threaded replay.

4. **Chunked replay is the materialized replay.**  Every matrix trace,
   spooled into its bounded-memory chunked form, must replay to a
   bit-identical :func:`full_signature` under every matrix config —
   the streaming pipeline is an implementation of the same semantics,
   not an approximation.

5. **The percentile sketch honors its error bound.**  The streaming
   log-bucket sketch's quantile estimates must land within the
   configured relative error of exact order statistics (merges
   included), so memory-bounded percentile reporting never silently
   degrades.

6. **Directory sharding is invisible.**  At the paper's zero directory
   latency, replaying one fleet trace with the consistency directory
   forced to 1, auto, and 256 shards must produce bit-identical
   signatures — sharding is a scaling data structure, not a semantic.

7. **Fleet scenarios are deterministic.**  Every multi-tenant scenario
   (:mod:`repro.tracegen.fleet`) regenerated at its pinned seed must be
   record-for-record equal and replay bit-identically.

The sweep-backed identities run over :func:`repro.sweep.run_sweep`
with the :mod:`repro.invariants` sanitizer enabled, so one differential
pass also exercises the full invariant suite.  Run from the command
line with ``python -m repro.validation.differential [--fast]``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.architectures import Architecture
from repro.core.consistency import SHARDS_ENV
from repro.core.policies import WritebackPolicy
from repro.core.results import SimulationResults
from repro.errors import InvariantViolation
from repro.experiments.common import (
    DEFAULT_SCALE,
    baseline_config,
    baseline_trace,
    shared_fs_model,
    scaled_gb,
)
from repro.invariants import Checker, fail, registered
from repro.sweep import run_sweep
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.traces.records import Trace

#: The three paper architectures that must coincide at flash = 0.
COLLAPSING_ARCHITECTURES = (
    Architecture.NAIVE,
    Architecture.LOOKASIDE,
    Architecture.UNIFIED,
)

ALL_ARCHITECTURES = tuple(Architecture)


# --- result signatures --------------------------------------------------


def result_signature(result: SimulationResults) -> Dict[str, object]:
    """The fields two behaviorally identical runs must agree on exactly."""
    tiers = result.tier_stats
    return {
        "read_mean_us": result.read_latency.mean_us,
        "read_blocks": result.read_latency.count,
        "write_mean_us": result.write_latency.mean_us,
        "write_blocks": result.write_latency.count,
        "simulated_ns": result.simulated_ns,
        "measured_ns": result.measured_ns,
        "writebacks": sum(t.get("writebacks", 0) for t in tiers.values()),
        "filer_fast_reads": result.filer_fast_reads,
        "filer_slow_reads": result.filer_slow_reads,
        "filer_writes": result.filer_writes,
        "flash_blocks_read": result.flash_blocks_read,
        "flash_blocks_written": result.flash_blocks_written,
        "network_utilization": result.network_utilization,
    }


def _signature_diff(
    reference: Dict[str, object], other: Dict[str, object]
) -> List[str]:
    return [
        "%s: %r != %r" % (key, reference[key], other[key])
        for key in reference
        if reference[key] != other[key]
    ]


def _latency_fingerprint(stat) -> Dict[str, object]:
    """Every raw field of a LatencyStat (exact integers, no rounding)."""
    return {
        "count": stat.count,
        "total_ns": stat.total_ns,
        "min_ns": stat.min_ns,
        "max_ns": stat.max_ns,
        "buckets": list(stat._buckets),
    }


def full_signature(result: SimulationResults) -> Dict[str, object]:
    """Bit-exact fingerprint of *all* :class:`SimulationResults` fields.

    Used to prove that a performance change left every simulated result
    untouched: two runs of behaviorally identical code must produce
    equal full signatures, down to histogram bucket counts and per-host
    breakdowns.  (``result_signature`` above is the smaller cross-config
    identity set; this one is the cross-*version* identity set.)
    """
    timeline = None
    if result.read_timeline is not None:
        timeline = {
            "bucket_ns": result.read_timeline.bucket_ns,
            "sums": {str(k): v for k, v in sorted(result.read_timeline._sums.items())},
            "counts": {
                str(k): v for k, v in sorted(result.read_timeline._counts.items())
            },
        }
    return {
        "config": result.config_description,
        "read_latency": _latency_fingerprint(result.read_latency),
        "write_latency": _latency_fingerprint(result.write_latency),
        "read_request_latency": _latency_fingerprint(result.read_request_latency),
        "write_request_latency": _latency_fingerprint(result.write_request_latency),
        "simulated_ns": result.simulated_ns,
        "measured_ns": result.measured_ns,
        "records_replayed": result.records_replayed,
        "blocks_read": result.blocks_read,
        "blocks_written": result.blocks_written,
        "tier_stats": result.tier_stats,
        "filer_fast_reads": result.filer_fast_reads,
        "filer_slow_reads": result.filer_slow_reads,
        "filer_writes": result.filer_writes,
        "flash_blocks_read": result.flash_blocks_read,
        "flash_blocks_written": result.flash_blocks_written,
        "flash_write_amplification": result.flash_write_amplification,
        "network_utilization": result.network_utilization,
        "read_timeline": timeline,
        "per_host": result.per_host,
        "block_writes": result.block_writes,
        "writes_requiring_invalidation": result.writes_requiring_invalidation,
        "copies_invalidated": result.copies_invalidated,
    }


def _matrix_families(scale: int):
    """The differential matrix: ``(family, trace, configs, names)`` rows.

    Covers the three degenerate families (flash=0 collapse, read-only,
    s/s single-thread) plus the standard baseline, across every
    architecture — the fixed 15-point set a performance PR must
    reproduce bit-identically.  Shared by :func:`matrix_signatures`
    (dump/compare) and :func:`check_chunked_replay_identity` (the
    streaming-replay identity), so both gates always cover the same
    points with the same traces.
    """
    base = baseline_trace(scale=scale)
    all_names = [architecture.value for architecture in ALL_ARCHITECTURES]
    return [
        (
            "baseline",
            base,
            [
                baseline_config(scale=scale, architecture=architecture)
                for architecture in ALL_ARCHITECTURES
            ],
            all_names,
        ),
        (
            "flash-zero",
            base,
            [
                baseline_config(flash_gb=0, scale=scale, architecture=architecture)
                for architecture in COLLAPSING_ARCHITECTURES
            ],
            [architecture.value for architecture in COLLAPSING_ARCHITECTURES],
        ),
        (
            "read-only",
            baseline_trace(write_fraction=0.0, scale=scale),
            [
                baseline_config(scale=scale, architecture=architecture)
                for architecture in ALL_ARCHITECTURES
            ],
            all_names,
        ),
        (
            "sync-single-thread",
            _single_thread_trace(scale),
            [
                baseline_config(
                    scale=scale,
                    architecture=architecture,
                    ram_policy=WritebackPolicy.sync(),
                    flash_policy=WritebackPolicy.sync(),
                )
                for architecture in ALL_ARCHITECTURES
            ],
            all_names,
        ),
    ]


def matrix_signatures(
    scale: int = DEFAULT_SCALE, workers: Optional[int] = None
) -> Dict[str, Dict[str, object]]:
    """Full signatures for every point of the differential matrix (see
    :func:`_matrix_families`).  Dump/compare via the CLI's
    ``--dump-signatures`` and ``--compare-signatures``.
    """
    signatures: Dict[str, Dict[str, object]] = {}
    for family, trace, configs, names in _matrix_families(scale):
        for name, result in zip(names, run_sweep(trace, configs, workers=workers)):
            signatures["%s/%s" % (family, name)] = full_signature(result)
    return signatures


# --- report types -------------------------------------------------------


@dataclass
class DifferentialCheck:
    """Outcome of one degenerate-parameter identity."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class DifferentialReport:
    """All differential checks of one harness run."""

    checks: List[DifferentialCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def summary(self) -> str:
        lines = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            line = "%-28s %s" % (check.name, status)
            if check.detail:
                line += "  (%s)" % check.detail
            lines.append(line)
        return "\n".join(lines)


# --- trace sources ------------------------------------------------------


def _single_thread_trace(scale: int, write_fraction: float = 0.30) -> Trace:
    """A one-host, one-thread trace: with a single application thread,
    every record boundary is a fully quiescent point, which the
    zero-dirty identity needs (concurrent threads legitimately expose
    another thread's mid-operation dirty window)."""
    model = shared_fs_model(scale)
    config = TraceGenConfig(
        working_set_bytes=scaled_gb(60.0, scale),
        n_hosts=1,
        threads_per_host=1,
        write_fraction=write_fraction,
        volume_multiple=2.0,
        seed=42,
    )
    return generate_trace(config, model=model)


# --- the identities -----------------------------------------------------


def check_flash_zero_collapse(
    scale: int = DEFAULT_SCALE, workers: Optional[int] = None
) -> DifferentialCheck:
    """flash=0 must make naive, lookaside, and unified coincide."""
    trace = baseline_trace(scale=scale)
    configs = [
        baseline_config(
            flash_gb=0,
            scale=scale,
            architecture=architecture,
            check_invariants=True,
            invariant_check_interval=64,
        )
        for architecture in COLLAPSING_ARCHITECTURES
    ]
    results = run_sweep(trace, configs, workers=workers)
    signatures = [result_signature(result) for result in results]
    problems: List[str] = []
    for architecture, signature in zip(COLLAPSING_ARCHITECTURES[1:], signatures[1:]):
        for diff in _signature_diff(signatures[0], signature):
            problems.append("naive vs %s: %s" % (architecture, diff))
    # Naive and lookaside share the layered code path, so even the
    # cache counters must agree bit for bit.
    naive_tiers, lookaside_tiers = results[0].tier_stats, results[1].tier_stats
    if naive_tiers != lookaside_tiers:
        problems.append(
            "naive vs lookaside tier stats: %r != %r"
            % (naive_tiers, lookaside_tiers)
        )
    if problems:
        return DifferentialCheck(
            "flash-zero-collapse", False, "; ".join(problems[:4])
        )
    return DifferentialCheck(
        "flash-zero-collapse",
        True,
        "%d architectures, %d signature fields identical"
        % (len(COLLAPSING_ARCHITECTURES), len(signatures[0])),
    )


def check_read_only_zero_writebacks(
    scale: int = DEFAULT_SCALE, workers: Optional[int] = None
) -> DifferentialCheck:
    """write_fraction=0 must produce zero writebacks everywhere."""
    trace = baseline_trace(write_fraction=0.0, scale=scale)
    configs = [
        baseline_config(
            scale=scale,
            architecture=architecture,
            check_invariants=True,
            invariant_check_interval=64,
        )
        for architecture in ALL_ARCHITECTURES
    ]
    results = run_sweep(trace, configs, workers=workers)
    problems: List[str] = []
    for architecture, result in zip(ALL_ARCHITECTURES, results):
        writebacks = sum(
            t.get("writebacks", 0) for t in result.tier_stats.values()
        )
        dirty_evictions = sum(
            t.get("dirty_evictions", 0) for t in result.tier_stats.values()
        )
        for label, value in (
            ("writebacks", writebacks),
            ("dirty_evictions", dirty_evictions),
            ("filer_writes", result.filer_writes),
            ("measured_write_blocks", result.write_latency.count),
        ):
            if value != 0:
                problems.append("%s: %s = %d" % (architecture, label, value))
    if problems:
        return DifferentialCheck(
            "read-only-zero-writebacks", False, "; ".join(problems[:4])
        )
    return DifferentialCheck(
        "read-only-zero-writebacks",
        True,
        "%d architectures wrote nothing back" % len(ALL_ARCHITECTURES),
    )


class ZeroDirtyChecker(Checker):
    """Custom invariant: no store holds a dirty block at any check point.

    Only sound for write-through-everywhere (s/s) configurations on a
    single application thread; the differential harness registers it
    for exactly that run via :func:`repro.invariants.registered`.
    """

    name = "zero-dirty"

    def check(self, system) -> None:
        for host in system.hosts:
            for attribute in ("ram", "flash", "cache"):
                store = getattr(host, attribute, None)
                if store is not None and store.dirty_count:
                    fail(
                        self.name,
                        "host %d: %s holds %d dirty blocks under s/s"
                        % (host.host_id, attribute, store.dirty_count),
                        system.sim.now,
                        host=host.host_id,
                        tier=attribute,
                        dirty=store.dirty_blocks()[:8],
                    )


def check_sync_policies_zero_dirty(
    scale: int = DEFAULT_SCALE,
) -> DifferentialCheck:
    """s/s writeback policies must keep every store clean at all times.

    Runs serially (the checker registration is per-process) with an
    interval of 1, so the zero-dirty invariant is asserted after every
    single trace record.
    """
    trace = _single_thread_trace(scale)
    configs = [
        baseline_config(
            scale=scale,
            architecture=architecture,
            ram_policy=WritebackPolicy.sync(),
            flash_policy=WritebackPolicy.sync(),
            check_invariants=True,
            invariant_check_interval=1,
        )
        for architecture in ALL_ARCHITECTURES
    ]
    try:
        with registered(lambda _system: [ZeroDirtyChecker()]):
            run_sweep(trace, configs, workers=1)
    except InvariantViolation as violation:
        return DifferentialCheck(
            "sync-policies-zero-dirty", False, str(violation)
        )
    return DifferentialCheck(
        "sync-policies-zero-dirty",
        True,
        "checked after every record in %d architectures"
        % len(ALL_ARCHITECTURES),
    )


def check_chunked_replay_identity(
    scale: int = DEFAULT_SCALE, workers: Optional[int] = None
) -> DifferentialCheck:
    """Chunked (bounded-memory) replay must be bit-identical to the
    materialized replay across the whole differential matrix.

    Every matrix trace is spooled into its chunked form (same content
    fingerprint, asserted) and replayed under every matrix config; the
    :func:`full_signature` of each streamed point must equal the
    materialized one down to histogram buckets and per-host breakdowns.
    This is the gate that lets the streaming pipeline share the sweep
    result cache and the signature-drift tooling with the in-memory
    path.
    """
    from repro.traces.chunked import ChunkedCompiledTrace
    from repro.traces.compiled import compile_trace

    problems: List[str] = []
    points = 0
    for family, trace, configs, names in _matrix_families(scale):
        chunked = ChunkedCompiledTrace.from_trace(trace)
        try:
            if chunked.fingerprint != compile_trace(trace).fingerprint:
                problems.append("%s: spool fingerprint drift" % family)
                continue
            materialized = run_sweep(trace, configs, workers=workers)
            streamed = run_sweep(chunked, configs, workers=workers)
        finally:
            chunked.delete()
        for name, mat, chk in zip(names, materialized, streamed):
            points += 1
            reference, candidate = full_signature(mat), full_signature(chk)
            if reference != candidate:
                drifted = [
                    key for key in reference if reference[key] != candidate[key]
                ]
                problems.append(
                    "%s/%s: %s" % (family, name, ", ".join(drifted[:3]))
                )
    if problems:
        return DifferentialCheck(
            "chunked-replay-identity", False, "; ".join(problems[:4])
        )
    return DifferentialCheck(
        "chunked-replay-identity",
        True,
        "%d matrix points bit-identical to materialized replay" % points,
    )


def check_compiled_kernel_identity(
    scale: int = DEFAULT_SCALE,
) -> DifferentialCheck:
    """The table-driven compiled kernel must replay bit-identically to
    the generator kernel.

    Every point of the differential matrix plus a 7x7 writeback-policy
    grid (sync/async/periodic 10, 30, 60/trickle/delayed on each tier)
    and admission/cleaning-controller points is replayed twice — once
    with ``REPRO_COMPILE_KERNEL=0`` (the generator reference) and once
    with the compiled kernel — and the :func:`full_signature` of the
    two runs must agree down to histogram buckets and per-host
    breakdowns.  Runs serially in-process: the env toggle is read at
    replay time, and the sweep result cache must not short-circuit the
    second run.
    """
    import os

    from repro.core.simulator import run_simulation
    from repro.engine.compiled import COMPILE_KERNEL_ENV
    from repro.traces.compiled import compile_trace

    problems: List[str] = []
    points = 0

    def compare(label: str, trace, config) -> None:
        nonlocal points
        points += 1
        saved = os.environ.get(COMPILE_KERNEL_ENV)
        try:
            os.environ[COMPILE_KERNEL_ENV] = "0"
            reference = full_signature(run_simulation(trace, config))
            os.environ[COMPILE_KERNEL_ENV] = "1"
            candidate = full_signature(run_simulation(trace, config))
        finally:
            if saved is None:
                os.environ.pop(COMPILE_KERNEL_ENV, None)
            else:
                os.environ[COMPILE_KERNEL_ENV] = saved
        if reference != candidate:
            drifted = [
                key for key in reference if reference[key] != candidate[key]
            ]
            problems.append("%s: %s" % (label, ", ".join(drifted[:3])))

    for family, trace, configs, names in _matrix_families(scale):
        compiled = compile_trace(trace)
        for name, config in zip(names, configs):
            compare("%s/%s" % (family, name), compiled, config)

    grid_trace = compile_trace(
        baseline_trace(n_hosts=2, scale=scale, volume_multiple=2.0)
    )
    grid = ("s", "a", "p10", "p30", "p60", "t30", "d30")
    for ram_spec in grid:
        for flash_spec in grid:
            compare(
                "grid/%s-%s" % (ram_spec, flash_spec),
                grid_trace,
                baseline_config(
                    scale=scale,
                    ram_policy=WritebackPolicy.parse(ram_spec),
                    flash_policy=WritebackPolicy.parse(flash_spec),
                ),
            )
    for label, overrides in (
        ("admission-probationary", {"flash_admission": "probationary:2"}),
        ("admission-budget", {"flash_admission": "budget:8M"}),
        ("cleaning-alru", {"flash_cleaning": "alru:30"}),
        ("cleaning-acp", {"flash_cleaning": "acp:0.5:0.25"}),
    ):
        compare(
            "controller/%s" % label,
            grid_trace,
            baseline_config(scale=scale, **overrides),
        )
    # Fleet-shaped point: several hosts sharing one working set keeps
    # the kernel's directory fast path busy with multi-bit holder masks
    # (the two-host matrix rarely grows masks past two bits), once at
    # the automatic shard count and once forced multi-shard.
    multihost_trace = compile_trace(
        baseline_trace(
            n_hosts=4, shared_working_set=True, scale=scale, volume_multiple=2.0
        )
    )
    compare("multihost/shared-ws-4h", multihost_trace, baseline_config(scale=scale))
    saved_shards = os.environ.get(SHARDS_ENV)
    try:
        os.environ[SHARDS_ENV] = "8"
        compare(
            "multihost/shared-ws-4h-sharded",
            multihost_trace,
            baseline_config(scale=scale),
        )
    finally:
        if saved_shards is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = saved_shards
    if problems:
        return DifferentialCheck(
            "compiled-kernel-identity", False, "; ".join(problems[:4])
        )
    return DifferentialCheck(
        "compiled-kernel-identity",
        True,
        "%d points bit-identical across both kernels" % points,
    )


def _fleet_spec(scale: int):
    """The pinned fleet spec the fleet-backed checks share."""
    from repro.tracegen.fleet import FleetSpec

    return FleetSpec(n_hosts=16, n_tenants=4, ws_bytes=scaled_gb(4.0, scale))


def check_sharded_directory_identity(scale: int = DEFAULT_SCALE) -> DifferentialCheck:
    """A sharded directory must be invisible at zero directory latency.

    One multi-tenant fleet trace replays three times — single shard,
    the automatic shard count, and a forced 256-way split — and the
    :func:`full_signature` of every run must match the single-shard
    reference exactly: sharding is a data-structure change, and with
    instant invalidation (the paper's model) nothing observable may
    move with the shard count.
    """
    import os

    from repro.core.simulator import run_simulation
    from repro.tracegen.fleet import fleet_trace

    spec = _fleet_spec(scale)
    trace = fleet_trace(spec, "steady")
    config = baseline_config(scale=scale)
    signatures = {}
    saved = os.environ.get(SHARDS_ENV)
    try:
        for label, value in (("1", "1"), ("auto", ""), ("256", "256")):
            if value:
                os.environ[SHARDS_ENV] = value
            else:
                os.environ.pop(SHARDS_ENV, None)
            signatures[label] = full_signature(
                run_simulation(trace, config, n_hosts=spec.n_hosts)
            )
    finally:
        if saved is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = saved
    problems: List[str] = []
    reference = signatures["1"]
    for label in ("auto", "256"):
        if signatures[label] != reference:
            drifted = [
                key for key in reference if reference[key] != signatures[label][key]
            ]
            problems.append("shards=%s: %s" % (label, ", ".join(drifted[:3])))
    if problems:
        return DifferentialCheck(
            "sharded-directory-identity", False, "; ".join(problems)
        )
    return DifferentialCheck(
        "sharded-directory-identity",
        True,
        "%d-host fleet replay bit-identical at 1/auto/256 shards" % spec.n_hosts,
    )


def check_fleet_identity(scale: int = DEFAULT_SCALE) -> DifferentialCheck:
    """Fleet scenario generation and replay must be deterministic.

    Every scenario of the pinned default spec is generated twice; the
    two traces must be record-for-record equal and their default-config
    replays must produce bit-identical :func:`full_signature`\\ s — the
    property the ``fleet_smoke`` CI gate and the fleet experiment's
    comparability across runs both rest on.
    """
    from repro.core.simulator import run_simulation
    from repro.tracegen.fleet import SCENARIOS, fleet_trace

    spec = _fleet_spec(scale)
    config = baseline_config(scale=scale)
    problems: List[str] = []
    for scenario in SCENARIOS:
        first = fleet_trace(spec, scenario)
        second = fleet_trace(spec, scenario)
        if first.records != second.records or (
            first.warmup_records != second.warmup_records
        ):
            problems.append("%s: regenerated trace differs" % scenario)
            continue
        reference = full_signature(run_simulation(first, config, n_hosts=spec.n_hosts))
        candidate = full_signature(run_simulation(second, config, n_hosts=spec.n_hosts))
        if reference != candidate:
            drifted = [key for key in reference if reference[key] != candidate[key]]
            problems.append("%s: %s" % (scenario, ", ".join(drifted[:3])))
    if problems:
        return DifferentialCheck("fleet-identity", False, "; ".join(problems))
    return DifferentialCheck(
        "fleet-identity",
        True,
        "%d scenarios regenerate and replay bit-identically" % len(SCENARIOS),
    )


def check_parallel_replay_identity(scale: int = DEFAULT_SCALE) -> DifferentialCheck:
    """Sharded multi-host replay must be bit-identical to serial replay.

    Each point replays twice — once serially, once with
    ``parallel_hosts=4`` (host groups fanned over the worker pool and
    merged, :mod:`repro.engine.parallel`) — and the
    :func:`full_signature` of the two runs must agree exactly.  The
    matrix mixes the engine's tiers: disjoint-tenant fleet traces
    (every scenario) and split 4-host baselines must actually shard
    (``last_outcome()`` is asserted, so a silently-declining engine
    fails the check rather than trivially passing), while 4-host
    shared-working-set points must trip the conflict watch and fall
    back — still bit-identical.  Both runs pin
    ``check_invariants=False``: the point is replay identity, and the
    invariants environment would otherwise turn the parallel leg into
    a no-op.
    """
    from dataclasses import replace as dc_replace

    from repro.core.simulator import run_simulation
    from repro.engine import parallel as parallel_engine
    from repro.filer.timing import FilerTiming
    from repro.tracegen.fleet import SCENARIOS, fleet_trace

    spec = dc_replace(_fleet_spec(scale), warmup_fraction=0.0)
    fleet_steady = fleet_trace(spec, "steady")
    split_trace = baseline_trace(
        n_hosts=4, shared_working_set=False, scale=scale, volume_multiple=2.0
    ).without_warmup()
    shared_trace = baseline_trace(
        n_hosts=4, shared_working_set=True, scale=scale, volume_multiple=2.0
    ).without_warmup()

    def eligible_config(fast_read_rate: float = 1.0, **overrides) -> "SimConfig":
        # Deterministic filer and syncer-free policies: the eligibility
        # conditions documented in docs/INVARIANTS.md.
        overrides.setdefault("ram_policy", WritebackPolicy.parse("a"))
        overrides.setdefault("flash_policy", WritebackPolicy.parse("a"))
        config = baseline_config(scale=scale, **overrides)
        return dc_replace(
            config,
            timing=dc_replace(
                config.timing,
                filer=FilerTiming(fast_read_rate=fast_read_rate),
            ),
        )

    # (label, trace, n_hosts, config, expected outcome kind or None)
    points = []
    for architecture in ALL_ARCHITECTURES:
        points.append(
            (
                "fleet/steady-%s-a" % architecture.value,
                fleet_steady,
                spec.n_hosts,
                eligible_config(architecture=architecture),
                "parallel",
            )
        )
    for policy in ("s", "d30"):
        points.append(
            (
                "fleet/steady-naive-%s" % policy,
                fleet_steady,
                spec.n_hosts,
                eligible_config(
                    ram_policy=WritebackPolicy.parse(policy),
                    flash_policy=WritebackPolicy.parse(policy),
                ),
                "parallel",
            )
        )
    points.append(
        (
            "fleet/steady-naive-slow-filer",
            fleet_steady,
            spec.n_hosts,
            eligible_config(fast_read_rate=0.0),
            "parallel",
        )
    )
    points.append(
        (
            "fleet/steady-naive-flash0",
            fleet_steady,
            spec.n_hosts,
            eligible_config(flash_gb=0),
            "parallel",
        )
    )
    for scenario in SCENARIOS:
        if scenario == "steady":
            continue
        points.append(
            (
                "fleet/%s-naive-a" % scenario,
                fleet_trace(spec, scenario),
                spec.n_hosts,
                eligible_config(),
                "parallel",
            )
        )
    for architecture in ALL_ARCHITECTURES:
        points.append(
            (
                "split4/%s-a" % architecture.value,
                split_trace,
                4,
                eligible_config(architecture=architecture),
                None,  # shards when the generated working sets are disjoint
            )
        )
    points.append(
        ("shared4/naive-a", shared_trace, 4, eligible_config(), "conflict")
    )
    points.append(
        (
            "shared4/unified-s",
            shared_trace,
            4,
            eligible_config(
                architecture=Architecture.UNIFIED,
                ram_policy=WritebackPolicy.parse("s"),
                flash_policy=WritebackPolicy.parse("s"),
            ),
            "conflict",
        )
    )

    problems: List[str] = []
    for label, trace, n_hosts, config, expected in points:
        reference = full_signature(
            run_simulation(trace, config, n_hosts=n_hosts, check_invariants=False)
        )
        candidate = full_signature(
            run_simulation(
                trace,
                config,
                n_hosts=n_hosts,
                check_invariants=False,
                parallel_hosts=4,
            )
        )
        outcome = parallel_engine.last_outcome()
        if expected is not None and (outcome is None or outcome.kind != expected):
            problems.append(
                "%s: expected %s engine outcome, got %s"
                % (label, expected, outcome)
            )
        if reference != candidate:
            drifted = [key for key in reference if reference[key] != candidate[key]]
            problems.append("%s: %s" % (label, ", ".join(drifted[:3])))
    if problems:
        return DifferentialCheck(
            "parallel-replay-identity", False, "; ".join(problems[:4])
        )
    return DifferentialCheck(
        "parallel-replay-identity",
        True,
        "%d points bit-identical between serial and sharded replay" % len(points),
    )


def check_percentile_sketch(scale: int = DEFAULT_SCALE) -> DifferentialCheck:
    """The streaming percentile sketch must agree with exact quantiles
    to within its configured relative error.

    Deterministic heavy-tailed samples (seeded lognormal — the shape of
    a latency distribution) are fed to :class:`~repro.core.metrics.\
PercentileSketch` at two error settings and to a sorted exact list; the
    sketch's p50/p90/p99/p999 must land within ``relative_error`` of the
    exact order statistics, merged sketches included.  Also asserts the
    :class:`~repro.core.metrics.LatencyStat` integration (the
    ``REPRO_METRICS_SKETCH`` path) reports through ``as_dict``.
    """
    import random

    from repro.core.metrics import LatencyStat, PercentileSketch

    rng = random.Random(0xD5EC7 + scale)
    samples = [int(rng.lognormvariate(10.0, 2.0)) + 1 for _ in range(20_000)]
    ordered = sorted(samples)
    quantiles = (0.5, 0.9, 0.99, 0.999)
    problems: List[str] = []
    for error in (0.01, 0.05):
        whole = PercentileSketch(error)
        left, right = PercentileSketch(error), PercentileSketch(error)
        for index, value in enumerate(samples):
            whole.record(value)
            (left if index % 2 else right).record(value)
        left.merge(right)
        for label, sketch in (("direct", whole), ("merged", left)):
            for fraction in quantiles:
                exact = ordered[int(fraction * (len(ordered) - 1))]
                estimate = sketch.percentile(fraction)
                if abs(estimate - exact) > error * exact:
                    problems.append(
                        "e=%g %s p%g: estimate %.1f vs exact %d"
                        % (error, label, fraction * 100, estimate, exact)
                    )
    stat = LatencyStat(sketch=PercentileSketch(0.01))
    for value in samples[:2000]:
        stat.record(value)
    summary = stat.as_dict()
    if "sketch_p99_us" not in summary:
        problems.append("LatencyStat.as_dict missing sketch percentiles")
    else:
        exact_p99 = sorted(samples[:2000])[int(0.99 * 1999)] / 1000.0
        if abs(summary["sketch_p99_us"] - exact_p99) > 0.011 * exact_p99:
            problems.append(
                "LatencyStat sketch p99 %.2f us vs exact %.2f us"
                % (summary["sketch_p99_us"], exact_p99)
            )
    if problems:
        return DifferentialCheck(
            "percentile-sketch-bounds", False, "; ".join(problems[:4])
        )
    return DifferentialCheck(
        "percentile-sketch-bounds",
        True,
        "%d samples, %d quantiles within bounds at 2 error settings"
        % (len(samples), len(quantiles)),
    )


# --- harness ------------------------------------------------------------


def run_differential(
    scale: int = DEFAULT_SCALE, workers: Optional[int] = None
) -> DifferentialReport:
    """Run every degenerate-parameter identity; see the module docs."""
    return DifferentialReport(
        checks=[
            check_flash_zero_collapse(scale=scale, workers=workers),
            check_read_only_zero_writebacks(scale=scale, workers=workers),
            check_sync_policies_zero_dirty(scale=scale),
            check_chunked_replay_identity(scale=scale, workers=workers),
            check_compiled_kernel_identity(scale=scale),
            check_sharded_directory_identity(scale=scale),
            check_fleet_identity(scale=scale),
            check_parallel_replay_identity(scale=scale),
            check_percentile_sketch(scale=scale),
        ]
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation.differential",
        description="Degenerate-parameter differential cross-checks "
        "(flash=0 collapse, read-only zero-writebacks, s/s zero-dirty).",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarser geometry scale for a quick CI-sized pass",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="explicit geometry divisor (overrides --fast)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep-backed checks "
        "(0 = all cores; default: serial)",
    )
    parser.add_argument(
        "--dump-signatures",
        type=str,
        default=None,
        metavar="FILE",
        help="write full result signatures for the differential matrix "
        "to FILE (JSON) instead of running the identity checks",
    )
    parser.add_argument(
        "--compare-signatures",
        type=str,
        default=None,
        metavar="FILE",
        help="re-run the differential matrix and compare against "
        "signatures previously dumped to FILE; any difference fails",
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (
        DEFAULT_SCALE * 4 if args.fast else DEFAULT_SCALE
    )
    if args.dump_signatures or args.compare_signatures:
        import json

        signatures = matrix_signatures(scale=scale, workers=args.workers)
        if args.dump_signatures:
            with open(args.dump_signatures, "w") as handle:
                json.dump(signatures, handle, indent=1, sort_keys=True)
            print(
                "dumped %d matrix signatures to %s"
                % (len(signatures), args.dump_signatures)
            )
            return 0
        with open(args.compare_signatures) as handle:
            reference = json.load(handle)
        # Round-trip through JSON so tuple-vs-list and key-type
        # differences introduced by serialization do not register.
        current = json.loads(json.dumps(signatures, sort_keys=True))
        problems: List[str] = []
        for name in sorted(set(reference) | set(current)):
            if name not in reference:
                problems.append("%s: missing from reference" % name)
            elif name not in current:
                problems.append("%s: missing from current run" % name)
            elif reference[name] != current[name]:
                for key in reference[name]:
                    if reference[name].get(key) != current[name].get(key):
                        problems.append("%s.%s differs" % (name, key))
        if problems:
            print("signature drift against %s:" % args.compare_signatures)
            for problem in problems[:20]:
                print("  - %s" % problem)
            return 1
        print(
            "all %d matrix signatures bit-identical to %s"
            % (len(current), args.compare_signatures)
        )
        return 0
    report = run_differential(scale=scale, workers=args.workers)
    print(report.summary())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
