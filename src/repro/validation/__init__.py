"""Simulator validation harness (the paper's §6, as a library feature).

The paper validated its simulator against NetApp Mercury hardware until
"the I/O throughput and latencies ... plus the cache hit rates, all or
nearly all matched within 10%".  Without that hardware, this package
performs the analogous check that *is* available to a reproduction:
replay the same trace through the full event-driven simulator and
through an independent, deliberately-simple reference model, and
compare hit rates and closed-form latencies — with the same 10 % bar.

Usage::

    from repro.validation import cross_check
    report = cross_check(trace, config)
    assert report.passed, report.summary()
"""

from repro.validation.reference import ReferenceReplay, replay_reference
from repro.validation.crosscheck import ValidationReport, cross_check

__all__ = ["ReferenceReplay", "replay_reference", "ValidationReport", "cross_check"]
