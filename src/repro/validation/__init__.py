"""Simulator validation harness (the paper's §6, as a library feature).

The paper validated its simulator against NetApp Mercury hardware until
"the I/O throughput and latencies ... plus the cache hit rates, all or
nearly all matched within 10%".  Without that hardware, this package
performs the analogous check that *is* available to a reproduction:
replay the same trace through the full event-driven simulator and
through an independent, deliberately-simple reference model, and
compare hit rates and closed-form latencies — with the same 10 % bar.

Usage::

    from repro.validation import cross_check
    report = cross_check(trace, config)
    assert report.passed, report.summary()

:mod:`repro.validation.differential` adds the complementary
*self*-comparison: degenerate-parameter points (flash = 0, read-only
traces, s/s policies) where distinct configurations must provably
coincide — run via ``python -m repro.validation.differential``.
"""

from repro.validation.reference import ReferenceReplay, replay_reference
from repro.validation.crosscheck import ValidationReport, cross_check
from repro.validation.differential import (
    DifferentialCheck,
    DifferentialReport,
    run_differential,
)

__all__ = [
    "DifferentialCheck",
    "DifferentialReport",
    "ReferenceReplay",
    "replay_reference",
    "run_differential",
    "ValidationReport",
    "cross_check",
]
