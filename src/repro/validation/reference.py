"""The independent reference model used for cross-checking.

A deliberately *simple* replay of the naive architecture: plain
OrderedDict LRU tiers, single logical thread, no timing — only hit
accounting plus closed-form per-level latency arithmetic.  It shares no
code with the event-driven simulator (that is the point: two
implementations of the same semantics, written differently, checked
against each other).

Scope: the reference models the naive read path with clean fills and
the asynchronous write-through write path, which is the configuration
the cross-check runs (the simulator's other architectures and policies
are covered by their own white-box tests).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List

from repro.core.config import SimConfig
from repro.traces.records import Trace


@dataclass
class ReferenceReplay:
    """Hit counts and expected latency sums from the reference model."""

    ram_hits: int = 0
    ram_misses: int = 0
    flash_hits: int = 0
    flash_misses: int = 0
    read_blocks: int = 0
    write_blocks: int = 0
    #: measured-phase read level per block: "ram" / "flash" / "filer"
    read_levels: List[str] = field(default_factory=list)

    @property
    def ram_hit_rate(self) -> float:
        total = self.ram_hits + self.ram_misses
        return self.ram_hits / total if total else 0.0

    @property
    def flash_hit_rate(self) -> float:
        total = self.flash_hits + self.flash_misses
        return self.flash_hits / total if total else 0.0

    def expected_read_mean_ns(self, config: SimConfig) -> float:
        """Closed-form mean read latency implied by the hit levels,
        assuming a deterministic (all-fast) filer and no queueing."""
        timing = config.timing
        network = timing.network
        from repro.net.packet import Packet

        miss_ns = (
            network.packet_time_ns(Packet.request())
            + timing.filer.fast_read_ns
            + network.packet_time_ns(Packet.data_block())
            + timing.flash.write_ns * (2 if config.persistent_flash else 1)
            + timing.ram_write_ns
        )
        if not config.has_flash:
            miss_ns -= timing.flash.write_ns * (2 if config.persistent_flash else 1)
        flash_hit_ns = timing.flash.read_ns + timing.ram_write_ns
        per_level = {
            "ram": float(timing.ram_read_ns),
            "flash": float(flash_hit_ns),
            "filer": float(miss_ns),
        }
        if not self.read_levels:
            return 0.0
        return sum(per_level[level] for level in self.read_levels) / len(
            self.read_levels
        )


class _Tier:
    """A minimal LRU tier."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, block: int) -> bool:
        return block in self.entries

    def touch(self, block: int) -> None:
        self.entries.move_to_end(block)

    def insert(self, block: int, protected=None) -> None:
        if block in self.entries:
            self.entries.move_to_end(block)
            return
        while len(self.entries) >= self.capacity > 0:
            if protected is not None:
                victim = next(
                    (key for key in self.entries if key not in protected), None
                )
                if victim is None:
                    victim = next(iter(self.entries))
                del self.entries[victim]
            else:
                self.entries.popitem(last=False)
        if self.capacity > 0:
            self.entries[block] = None


def replay_reference(trace: Trace, config: SimConfig) -> ReferenceReplay:
    """Replay a trace through the reference model (single-threaded order)."""
    ram = _Tier(config.ram_blocks)
    flash = _Tier(config.flash_blocks if config.has_flash else 0)
    result = ReferenceReplay()

    for index, record in enumerate(trace.records):
        measured = index >= trace.warmup_records
        for block in trace.record_blocks(record):
            if record.is_write:
                # async write-through: lands in RAM and (immediately,
                # in reference time) in flash.
                ram.insert(block, protected=None)
                if config.has_flash:
                    flash.insert(block, protected=ram.entries)
                if measured:
                    result.write_blocks += 1
                continue
            if measured:
                result.read_blocks += 1
            if block in ram:
                ram.touch(block)
                if measured:
                    result.ram_hits += 1
                    result.read_levels.append("ram")
                continue
            if measured:
                result.ram_misses += 1
            if config.has_flash and block in flash:
                flash.touch(block)
                ram.insert(block)
                if measured:
                    result.flash_hits += 1
                    result.read_levels.append("flash")
                continue
            if measured:
                result.flash_misses += 1
                result.read_levels.append("filer")
            if config.has_flash:
                # flash victims skip RAM-resident blocks (pinning)
                flash.insert(block, protected=ram.entries)
            ram.insert(block)
    return result
