"""Cross-checking the simulator against the reference model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.config import SimConfig
from repro.core.policies import WritebackPolicy
from repro.core.simulator import run_simulation
from repro.traces.records import Trace
from repro.validation.reference import replay_reference


@dataclass
class ValidationReport:
    """Per-metric relative differences between simulator and reference.

    ``tolerance`` is the paper's 10 % bar; a metric passes when its
    relative difference is below it (absolute difference for rates).
    """

    tolerance: float = 0.10
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add(self, name: str, simulated: float, reference: float, rate: bool = False) -> None:
        if rate:
            difference = abs(simulated - reference)
        else:
            scale = max(abs(reference), 1e-12)
            difference = abs(simulated - reference) / scale
        self.metrics[name] = {
            "simulated": simulated,
            "reference": reference,
            "difference": difference,
        }

    @property
    def passed(self) -> bool:
        return all(m["difference"] <= self.tolerance for m in self.metrics.values())

    def failures(self) -> List[str]:
        return [
            name
            for name, m in self.metrics.items()
            if m["difference"] > self.tolerance
        ]

    def summary(self) -> str:
        lines = [
            "validation %s (tolerance %.0f%%)"
            % ("PASSED" if self.passed else "FAILED", 100 * self.tolerance)
        ]
        width = max(len(name) for name in self.metrics) if self.metrics else 0
        for name, m in sorted(self.metrics.items()):
            lines.append(
                "  %-*s  sim=%-12.4f ref=%-12.4f diff=%5.2f%%%s"
                % (
                    width,
                    name,
                    m["simulated"],
                    m["reference"],
                    100 * m["difference"],
                    "  <-- FAIL" if m["difference"] > self.tolerance else "",
                )
            )
        return "\n".join(lines)


def cross_check(
    trace: Trace, config: SimConfig, tolerance: float = 0.10
) -> ValidationReport:
    """Replay ``trace`` through simulator and reference; compare.

    The comparison normalizes the configuration to the reference
    model's scope: naive architecture, asynchronous write-through at
    both tiers, and a deterministic filer (all reads fast) so the
    closed-form latency has no stochastic term.

    Expected agreement (and why): a read-only single-threaded trace
    agrees essentially exactly — the replay order is deterministic and
    both models apply identical LRU rules.  Writes introduce *bounded*
    divergence: the simulator's background flushes land in the flash
    tens of microseconds after the write (overlapping later I/Os),
    while the reference inserts synchronously, so the two flash LRU
    orders drift; multi-threaded traces add interleaving drift on top.
    Pick ``tolerance`` accordingly: the paper's 10 % bar for read-mostly
    runs, a little wider for write-heavy ones.
    """
    from repro.core.architectures import Architecture

    normalized = config.with_overrides(
        architecture=Architecture.NAIVE,
        ram_policy=WritebackPolicy.asynchronous(),
        flash_policy=WritebackPolicy.asynchronous(),
        timing=config.timing.with_prefetch_rate(1.0),
    )
    simulated = run_simulation(trace, normalized)
    reference = replay_reference(trace, normalized)

    report = ValidationReport(tolerance=tolerance)
    sim_ram = simulated.tier_stats.get("ram", {})
    report.add(
        "ram_hit_rate",
        sim_ram.get("hit_rate", 0.0),
        reference.ram_hit_rate,
        rate=True,
    )
    if normalized.has_flash:
        sim_flash = simulated.tier_stats.get("flash", {})
        report.add(
            "flash_hit_rate",
            sim_flash.get("hit_rate", 0.0),
            reference.flash_hit_rate,
            rate=True,
        )
    report.add(
        "read_blocks", simulated.read_latency.count, reference.read_blocks
    )
    expected_read = reference.expected_read_mean_ns(normalized)
    if expected_read:
        report.add(
            "read_latency_ns", simulated.read_latency.mean_ns, expected_read
        )
    return report
