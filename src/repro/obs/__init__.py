"""repro.obs — the observability layer.

Structured simulation tracing (blktrace-style event streams), exact
per-request latency breakdowns, and exporters (JSONL, Chrome
trace_event/Perfetto).  Opt in per run::

    from repro import Observation, run_simulation

    obs = Observation()
    results = run_simulation(trace, config, obs=obs)
    print(results.breakdown.mean_read_us())
    obs.write_jsonl("events.jsonl")
    obs.write_chrome_trace("trace.json")   # load at ui.perfetto.dev

or per config (``SimConfig(trace_events=True)``), which makes sweeps
return breakdowns and counters inside their picklable results.  With
tracing off (the default) the simulation takes none of these code
paths — results are bit-identical and the replay hot loop is unchanged
(see docs/OBSERVABILITY.md for the measured overhead).
"""

from repro.obs.breakdown import (
    COMPONENTS,
    BreakdownCollector,
    LatencyBreakdown,
    Span,
)
from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import (
    to_chrome_trace,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import NULL_RECORDER, EventRecorder, NullRecorder
from repro.obs.session import Observation

__all__ = [
    "COMPONENTS",
    "BreakdownCollector",
    "EventKind",
    "EventRecorder",
    "LatencyBreakdown",
    "NULL_RECORDER",
    "NullRecorder",
    "Observation",
    "Span",
    "TraceEvent",
    "to_chrome_trace",
    "validate_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
