"""``python -m repro.obs`` — the traced-replay CLI (see cli.py)."""

import sys

from repro.obs.cli import main

sys.exit(main())
