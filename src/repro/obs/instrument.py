"""Instrumented host stacks: event emission + exact span attribution.

These subclasses mirror their parents' block-I/O paths *exactly* — same
store mutations, same RNG draws, same yields in the same order — adding
only (a) ``TraceEvent`` emission and (b) per-yield attribution into a
:class:`~repro.obs.breakdown.Span`.  The simulation they produce is
bit-identical to the uninstrumented run (differential-tested in
``tests/test_obs.py``); keep each ``*_obs`` method in lockstep with its
base-class twin when either changes.

Attribution is exact because simulated time advances only at yields:
fixed-cost yields (RAM charges, direct device/filer/net services) are
attributed by their known value without reading the clock, and anything
that can wait (wire acquisition, channel-limited devices, victim
writebacks) is bracketed with ``sim.now`` deltas.  The span travels as
an explicit argument, never stored on the stack — simulation threads of
one host interleave freely and would clobber shared state.

Only the three paper architectures have instrumented fast paths; the
exclusive/migration extension falls back to whole-I/O ``other``
attribution in the replay driver.
"""

from __future__ import annotations

from typing import Iterator

from repro.cache.block import Medium
from repro.core.architectures import Architecture
from repro.core.host import (
    LookasideStack,
    NaiveStack,
    UnifiedStack,
    _PKT_ACK,
    _PKT_DATA,
    _PKT_REQUEST,
    _after,
    build_host_stack,
)
from repro.core.policies import PolicyKind
from repro.obs.breakdown import Span
from repro.obs.events import EventKind

_TIER_HIT = EventKind.TIER_HIT
_TIER_MISS = EventKind.TIER_MISS
_QUEUE_ENTER = EventKind.QUEUE_ENTER
_QUEUE_EXIT = EventKind.QUEUE_EXIT


class StoreObserver:
    """Adapter giving a :class:`~repro.cache.store.BlockStore` an event
    sink with the context it lacks (clock, host, tier name)."""

    __slots__ = ("_rec", "_sim", "_host", "_tier")

    def __init__(self, rec, sim, host_id: int, tier: str) -> None:
        self._rec = rec
        self._sim = sim
        self._host = host_id
        self._tier = tier

    def evicted(self, block: int, dirty: bool) -> None:
        self._rec.emit(
            self._sim.now,
            EventKind.EVICTION,
            self._host,
            block,
            tier=self._tier,
            info={"dirty": dirty},
        )

    def invalidated(self, block: int) -> None:
        self._rec.emit(
            self._sim.now, EventKind.INVALIDATION, self._host, block, tier=self._tier
        )

    def wrote_back(self, block: int) -> None:
        self._rec.emit(
            self._sim.now, EventKind.WRITEBACK, self._host, block, tier=self._tier
        )


class _ObsStackMixin:
    """Shared instrumented filer paths (layered + unified stacks)."""

    def _filer_read_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of HostStack._filer_read."""
        sim = self.sim
        rec = self._obs_rec
        segment = self.segment
        wire, wire_time = segment.charge(_PKT_REQUEST, "up")
        if not wire.try_acquire():
            entered = sim.now
            if rec is not None:
                rec.emit(entered, _QUEUE_ENTER, self.host_id, block, tier=wire.name)
            yield wire.acquire()
            waited = sim.now - entered
            span.filer_queue += waited
            if rec is not None:
                rec.emit(
                    sim.now, _QUEUE_EXIT, self.host_id, block, tier=wire.name, dur=waited
                )
        yield wire_time
        span.net += wire_time
        wire.release()
        service = self.filer.read_service_ns()
        yield service
        span.filer_service += service
        wire, wire_time = segment.charge(_PKT_DATA, "down")
        if not wire.try_acquire():
            entered = sim.now
            if rec is not None:
                rec.emit(entered, _QUEUE_ENTER, self.host_id, block, tier=wire.name)
            yield wire.acquire()
            waited = sim.now - entered
            span.filer_queue += waited
            if rec is not None:
                rec.emit(
                    sim.now, _QUEUE_EXIT, self.host_id, block, tier=wire.name, dur=waited
                )
        yield wire_time
        span.net += wire_time
        wire.release()

    def _filer_write_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of HostStack._filer_write."""
        sim = self.sim
        rec = self._obs_rec
        segment = self.segment
        wire, wire_time = segment.charge(_PKT_DATA, "up")
        if not wire.try_acquire():
            entered = sim.now
            if rec is not None:
                rec.emit(entered, _QUEUE_ENTER, self.host_id, block, tier=wire.name)
            yield wire.acquire()
            waited = sim.now - entered
            span.filer_queue += waited
            if rec is not None:
                rec.emit(
                    sim.now, _QUEUE_EXIT, self.host_id, block, tier=wire.name, dur=waited
                )
        yield wire_time
        span.net += wire_time
        wire.release()
        service = self.filer.write_service_ns()
        yield service
        span.filer_service += service
        wire, wire_time = segment.charge(_PKT_ACK, "down")
        if not wire.try_acquire():
            entered = sim.now
            if rec is not None:
                rec.emit(entered, _QUEUE_ENTER, self.host_id, block, tier=wire.name)
            yield wire.acquire()
            waited = sim.now - entered
            span.filer_queue += waited
            if rec is not None:
                rec.emit(
                    sim.now, _QUEUE_EXIT, self.host_id, block, tier=wire.name, dur=waited
                )
        yield wire_time
        span.net += wire_time
        wire.release()


class _ObsLayeredMixin(_ObsStackMixin):
    """Instrumented twins of the LayeredStack I/O paths."""

    # --- read path ----------------------------------------------------

    def read_block_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack.read_block."""
        sim = self.sim
        rec = self._obs_rec
        if self._has_ram:
            entry = self.ram.get(block)
            if entry is not None:
                if rec is not None:
                    rec.emit(sim.now, _TIER_HIT, self.host_id, block, tier="ram")
                admission = self._admission
                if (
                    admission is not None
                    and admission.promote_on_hit(self.ram.ref_count(block))
                    and self._flash_online()
                    and self.flash.peek(block) is None
                ):
                    yield from self._install_flash_obs(block, False, span)
                yield self._ram_read_ns
                span.ram += self._ram_read_ns
                return
            if rec is not None:
                rec.emit(sim.now, _TIER_MISS, self.host_id, block, tier="ram")
        if self.flash is not None and self._flash_online():
            fentry = self.flash.get(block)
            if fentry is not None:
                if rec is not None:
                    rec.emit(sim.now, _TIER_HIT, self.host_id, block, tier="flash")
                if self._flash_direct:
                    service = self.flash_device.read_service_ns(block)
                    yield service
                    span.flash_read += service
                else:
                    started = sim.now
                    yield from self.flash_device.read_block(block)
                    span.flash_read += sim.now - started
                yield from self._install_ram_obs(block, False, span)
                return
            if rec is not None:
                rec.emit(sim.now, _TIER_MISS, self.host_id, block, tier="flash")
            yield from self._filer_read_obs(block, span)
            yield from self._install_flash_obs(block, False, span)
            yield from self._install_ram_obs(block, False, span)
            return
        yield from self._filer_read_obs(block, span)
        yield from self._install_ram_obs(block, False, span)

    # --- write path ---------------------------------------------------

    def write_block_obs(self, block: int, span: Span, measured: bool = True) -> Iterator:
        """Instrumented twin of LayeredStack.write_block."""
        dropped = self.directory.on_block_write(self.host_id, block, measured)
        dir_stall = self._dir_stall
        if dir_stall is not None:
            cost = dir_stall[0] + dropped * dir_stall[1]
            if cost:
                if measured:
                    self.directory.invalidation_latency_ns += cost
                yield cost
                span.invalidation += cost
        if not self._has_ram:
            if self.flash is not None:
                yield from self._write_into_flash_obs(block, span)
            else:
                yield from self._filer_write_obs(block, span)
            return
        yield from self._install_ram_obs(block, True, span)
        policy = self.config.ram_policy
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_ram_block_obs(block, span)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_ram_block(block), "ram-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_ram_block(block)),
                "ram-delayed-flush",
            )

    # --- RAM tier -----------------------------------------------------

    def _install_ram_obs(self, block: int, dirty: bool, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack._install_ram.  Dirty-victim
        writebacks are *other blocks'* data: their whole duration is
        attributed to ``syncer_stall``."""
        if not self._has_ram:
            return
        sim = self.sim
        ram = self.ram
        existing = ram.peek(block)
        if existing is not None:
            ram.get(block)  # touch + count the access pattern
            if dirty:
                ram.mark_dirty(block)
            yield self._ram_write_ns
            span.ram += self._ram_write_ns
            return
        while ram.is_full():
            victim = ram.pop_victim()
            if victim is None:
                break
            if self.flash is not None:
                self.flash.unpin(victim.block)
            if victim.dirty:
                started = sim.now
                yield from self._flush_evicted_ram_block(victim.block)
                span.syncer_stall += sim.now - started
            self._note_maybe_gone(victim.block)
            installed = ram.peek(block)
            if installed is not None:
                if dirty:
                    ram.mark_dirty(block)
                yield self._ram_write_ns
                span.ram += self._ram_write_ns
                return
        ram.put(block, Medium.RAM, dirty=dirty)
        if self.flash is not None:
            self.flash.pin(block)
        self._note_present(block)
        yield self._ram_write_ns
        span.ram += self._ram_write_ns

    def _flush_ram_block_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack._flush_ram_block (the
        synchronous-policy flush of the application's *own* block, so
        its cost decomposes into real components, not syncer_stall)."""
        entry = self.ram.peek(block)
        if entry is None or not entry.dirty:
            return
        self.ram.mark_clean(block)
        yield from self._writeback_ram_data_obs(block, span)

    def _writeback_ram_data_obs(self, block: int, span: Span) -> Iterator:
        raise NotImplementedError

    # --- flash tier -----------------------------------------------------

    def _install_flash_obs(self, block: int, dirty: bool, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack._install_flash."""
        if self.flash is None or not self._flash_online():
            return True
        sim = self.sim
        existing = self.flash.peek(block)
        admission = self._admission
        if existing is None:
            if admission is not None and not admission.admit_fill(
                block, self.ram.ref_count(block), sim.now
            ):
                return False
            yield from self._make_flash_room_obs(block, span)
            if self.flash.peek(block) is None:
                self.flash.put(
                    block, Medium.FLASH, dirty=False, pinned=block in self.ram
                )
                self._note_present(block)
        else:
            self.flash.get(block)  # touch
            if admission is not None:
                admission.note_update(sim.now)
        if self._flash_direct:
            service = self.flash_device.write_service_ns(block)
            yield service
            span.flash_write += service
        else:
            started = sim.now
            yield from self.flash_device.write_block(block)
            span.flash_write += sim.now - started
        if self.flash.peek(block) is None:
            self.flash_device.trim_block(block)
        elif dirty:
            self.flash.mark_dirty(block)
            cleaning = self._cleaning
            if cleaning is not None:
                cleaning.note_dirtied(block, sim.now)
        return True

    def _write_into_flash_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack._write_into_flash."""
        if self.flash is not None and not self._flash_online():
            yield from self._filer_write_obs(block, span)
            return
        admitted = yield from self._install_flash_obs(block, True, span)
        if not admitted:
            yield from self._filer_write_obs(block, span)
            return
        policy = self.config.flash_policy
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_flash_block_obs(block, span)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_flash_block(block), "flash-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_flash_block(block)),
                "flash-delayed-flush",
            )

    def _make_flash_room_obs(self, incoming: int, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack._make_flash_room (victim
        writebacks are other blocks' data -> syncer_stall)."""
        assert self.flash is not None
        sim = self.sim
        while self.flash.is_full():
            victim = self.flash.pop_victim()
            if victim is None:
                break
            self.flash_device.trim_block(victim.block)
            if victim.dirty:
                started = sim.now
                yield from self._filer_write()
                span.syncer_stall += sim.now - started
            if victim.pinned:
                ram_copy = self.ram.remove(victim.block)
                if ram_copy is not None and ram_copy.dirty:
                    started = sim.now
                    yield from self._writeback_ram_data(victim.block)
                    span.syncer_stall += sim.now - started
            self._note_maybe_gone(victim.block)
            if self.flash.peek(incoming) is not None:
                return

    def _flush_flash_block_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of LayeredStack._flush_flash_block."""
        assert self.flash is not None
        if not self._flash_online():
            return
        entry = self.flash.peek(block)
        if entry is None or not entry.dirty:
            return
        self.flash.mark_clean(block)
        yield from self._filer_write_obs(block, span)


class ObsNaiveStack(_ObsLayeredMixin, NaiveStack):
    """Instrumented naive architecture."""

    def _writeback_ram_data_obs(self, block: int, span: Span) -> Iterator:
        if self.flash is not None:
            yield from self._write_into_flash_obs(block, span)
        else:
            yield from self._filer_write_obs(block, span)


class ObsLookasideStack(_ObsLayeredMixin, LookasideStack):
    """Instrumented lookaside architecture."""

    def _writeback_ram_data_obs(self, block: int, span: Span) -> Iterator:
        yield from self._filer_write_obs(block, span)
        if self.flash is not None:
            yield from self._install_flash_obs(block, False, span)


class ObsUnifiedStack(_ObsStackMixin, UnifiedStack):
    """Instrumented unified architecture."""

    def read_block_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of UnifiedStack.read_block."""
        sim = self.sim
        rec = self._obs_rec
        entry = self.cache.get(block)
        if entry is not None:
            if rec is not None:
                rec.emit(sim.now, _TIER_HIT, self.host_id, block, tier="unified")
            if entry.medium is Medium.RAM:
                yield self._ram_read_ns
                span.ram += self._ram_read_ns
            elif self._flash_direct:
                service = self.flash_device.read_service_ns(block)
                yield service
                span.flash_read += service
            else:
                started = sim.now
                yield from self.flash_device.read_block(block)
                span.flash_read += sim.now - started
            return
        if rec is not None:
            rec.emit(sim.now, _TIER_MISS, self.host_id, block, tier="unified")
        yield from self._filer_read_obs(block, span)
        yield from self._install_obs(block, False, span)

    def write_block_obs(self, block: int, span: Span, measured: bool = True) -> Iterator:
        """Instrumented twin of UnifiedStack.write_block."""
        dropped = self.directory.on_block_write(self.host_id, block, measured)
        dir_stall = self._dir_stall
        if dir_stall is not None:
            cost = dir_stall[0] + dropped * dir_stall[1]
            if cost:
                if measured:
                    self.directory.invalidation_latency_ns += cost
                yield cost
                span.invalidation += cost
        sim = self.sim
        rec = self._obs_rec
        entry = self.cache.get(block)
        if entry is not None:
            if rec is not None:
                rec.emit(sim.now, _TIER_HIT, self.host_id, block, tier="unified")
            self.cache.mark_dirty(block)
            medium = entry.medium
            if medium is Medium.RAM:
                yield self._ram_write_ns
                span.ram += self._ram_write_ns
            elif self._flash_direct:
                service = self.flash_device.write_service_ns(block)
                yield service
                span.flash_write += service
            else:
                started = sim.now
                yield from self.flash_device.write_block(block)
                span.flash_write += sim.now - started
            self._reclaim_if_gone(block, medium)
        else:
            if rec is not None:
                rec.emit(sim.now, _TIER_MISS, self.host_id, block, tier="unified")
            medium = yield from self._install_obs(block, True, span)
            if medium is None:
                yield from self._filer_write_obs(block, span)
                return
        policy = self._policy_for(medium)
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_block_obs(block, span)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_block(block), "unified-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_block(block)),
                "unified-delayed-flush",
            )

    def _install_obs(self, block: int, dirty: bool, span: Span) -> Iterator:
        """Instrumented twin of UnifiedStack._install."""
        if self.cache.capacity_blocks == 0:
            return None
        sim = self.sim
        existing = self.cache.peek(block)
        if existing is None:
            while self.cache.is_full():
                victim = self.cache.pop_victim()
                if victim is None:
                    break
                self._release_medium(victim.medium)
                if victim.medium is Medium.FLASH:
                    self.flash_device.trim_block(victim.block)
                if victim.dirty:
                    started = sim.now
                    yield from self._filer_write()
                    span.syncer_stall += sim.now - started
                if victim.block not in self.cache:
                    self.directory.note_drop(self.host_id, victim.block)
                existing = self.cache.peek(block)
                if existing is not None:
                    break
        if existing is not None:
            if dirty:
                self.cache.mark_dirty(block)
            yield from self._medium_write_obs(existing.medium, block, span)
            self._reclaim_if_gone(block, existing.medium)
            return existing.medium
        medium = self._allocate_medium()
        self.cache.put(block, medium, dirty=dirty)
        self.directory.note_copy(self.host_id, block)
        yield from self._medium_write_obs(medium, block, span)
        self._reclaim_if_gone(block, medium)
        return medium

    def _medium_write_obs(self, medium: Medium, block: int, span: Span) -> Iterator:
        """Instrumented twin of UnifiedStack._medium_write."""
        if medium is Medium.RAM:
            yield self._ram_write_ns
            span.ram += self._ram_write_ns
        elif self._flash_direct:
            service = self.flash_device.write_service_ns(block)
            yield service
            span.flash_write += service
        else:
            started = self.sim.now
            yield from self.flash_device.write_block(block)
            span.flash_write += self.sim.now - started

    def _flush_block_obs(self, block: int, span: Span) -> Iterator:
        """Instrumented twin of UnifiedStack._flush_block."""
        entry = self.cache.peek(block)
        if entry is None or not entry.dirty:
            return
        self.cache.mark_clean(block)
        yield from self._filer_write_obs(block, span)


_OBS_STACKS = {
    Architecture.NAIVE: ObsNaiveStack,
    Architecture.LOOKASIDE: ObsLookasideStack,
    Architecture.UNIFIED: ObsUnifiedStack,
}


def build_obs_host_stack(
    sim, host_id, config, flash_device, segment, filer, directory, rng
):
    """Construct the instrumented stack for the configured architecture.

    Architectures without instrumented fast paths (the exclusive/
    migration extension) fall back to their plain stack; the replay
    driver attributes their whole-I/O latency to ``other``.
    """
    cls = _OBS_STACKS.get(config.architecture)
    if cls is None:
        return build_host_stack(
            sim, host_id, config, flash_device, segment, filer, directory, rng
        )
    return cls(sim, host_id, config, flash_device, segment, filer, directory, rng)


def attach_observation(system, obs) -> None:
    """Wire an Observation's recorder into every layer of a built System.

    A no-op for the event stream when the observation is breakdown-only;
    span attribution needs no wiring (it rides the instrumented stacks'
    arguments).
    """
    rec = obs.recorder
    if rec is None:
        return
    sim = system.sim
    system.filer.obs = rec

    def spawn_hook(name: str, _emit=rec.emit, _sim=sim) -> None:
        _emit(_sim.now, EventKind.PROCESS_SPAWN, info={"name": name})

    sim.trace_hook = spawn_hook
    from repro.core.machine import _stores_of

    for host_id, stack in enumerate(system.hosts):
        stack._obs_rec = rec
        system.segments[host_id].obs = rec
        device = system.flash_devices[host_id]
        if device is not None:
            device.obs = rec
        for tier_name, store in _stores_of(stack):
            store.obs_hook = StoreObserver(rec, sim, host_id, tier_name)


__all__ = [
    "ObsNaiveStack",
    "ObsLookasideStack",
    "ObsUnifiedStack",
    "StoreObserver",
    "attach_observation",
    "build_obs_host_stack",
]
