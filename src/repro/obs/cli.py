"""CLI for traced replays: ``repro-obs --trace-out events.jsonl``.

Runs one simulation with an :class:`~repro.obs.Observation` attached and
writes the structured event stream (JSONL and/or Chrome ``trace_event``
JSON for Perfetto/chrome://tracing), printing the run summary — which
includes the per-request latency breakdown — plus the event counters.

By default it replays the experiments' pinned-seed baseline trace
(:func:`repro.experiments.common.baseline_trace`), so two invocations
with the same options produce byte-identical event streams; pass
``--trace`` to replay a trace file instead (any supported format).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.architectures import Architecture
from repro.core.simulator import run_simulation
from repro.errors import ReproError
from repro.obs.session import Observation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Replay a trace with structured tracing on and export "
        "the event stream (see docs/OBSERVABILITY.md).",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace file to replay (auto-detected format); default: the "
        "pinned-seed synthetic baseline trace",
    )
    parser.add_argument(
        "--arch",
        choices=[arch.value for arch in Architecture],
        default=Architecture.NAIVE.value,
        help="client cache architecture (default: naive)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="geometry divisor for the synthetic baseline "
        "(default: repro.experiments.common.DEFAULT_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=42, help="trace seed (default 42)")
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the event stream as JSON Lines (one event per line)",
    )
    parser.add_argument(
        "--chrome-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON (load in Perfetto / "
        "chrome://tracing)",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="cap the recorded event list at N (counters keep counting; "
        "overflow is reported as dropped_events)",
    )
    parser.add_argument(
        "--no-events",
        action="store_true",
        help="collect only the latency breakdown (no event stream; "
        "--trace-out/--chrome-out then have nothing to write)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_events and (args.trace_out or args.chrome_out):
        print("--no-events leaves nothing for --trace-out/--chrome-out", file=sys.stderr)
        return 2
    try:
        if args.trace is not None:
            from repro.traces.importers.detect import load_any

            trace, _stats = load_any(args.trace)
        else:
            from repro.experiments.common import DEFAULT_SCALE, baseline_trace

            trace = baseline_trace(
                seed=args.seed,
                scale=args.scale if args.scale is not None else DEFAULT_SCALE,
            )
        config = _config_for(args)
        obs = Observation(events=not args.no_events, max_events=args.max_events)
        results = run_simulation(trace, config, obs=obs)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(results.summary())
    counters = obs.counters()
    if counters:
        print("event counters:")
        for kind in sorted(counters):
            print("  %-18s %d" % (kind, counters[kind]))
    if args.trace_out:
        obs.write_jsonl(args.trace_out)
        print("wrote %d events to %s (JSONL)" % (len(obs.events), args.trace_out))
    if args.chrome_out:
        obs.write_chrome_trace(args.chrome_out)
        print("wrote Chrome trace to %s" % args.chrome_out)
    return 0


def _config_for(args: argparse.Namespace) -> "object":
    from repro.experiments.common import DEFAULT_SCALE, baseline_config

    scale = args.scale if args.scale is not None else DEFAULT_SCALE
    return baseline_config(scale=scale, architecture=Architecture(args.arch))


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
