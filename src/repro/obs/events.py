"""Structured trace events: the vocabulary of the simulation event stream.

One simulation run with tracing enabled produces an append-only stream
of :class:`TraceEvent` records with monotonic simulated timestamps —
the blktrace-style per-request view (request issue/complete, tier
hit/miss, writeback, eviction, invalidation, queue enter/exit) that the
end-to-end latency histograms cannot provide.  Events are *passive*:
emitting them never schedules simulation work, so a traced run is
bit-identical to an untraced one.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class EventKind:
    """Event kind names (plain strings, stable across versions).

    Grouped by the layer that emits them; the JSONL exporter writes the
    kind verbatim, so these are also the on-disk schema.
    """

    # application requests (machine.py replay driver)
    REQUEST_START = "request_start"
    REQUEST_FINISH = "request_finish"
    # cache tiers (instrumented host stacks)
    TIER_HIT = "tier_hit"
    TIER_MISS = "tier_miss"
    WRITEBACK = "writeback"
    # cache stores (cache/store.py)
    EVICTION = "eviction"
    INVALIDATION = "invalidation"
    # contended resources (host filer paths)
    QUEUE_ENTER = "queue_enter"
    QUEUE_EXIT = "queue_exit"
    # network segments (net/link.py)
    NET_XFER = "net_xfer"
    # filer (filer/server.py)
    FILER_READ = "filer_read"
    FILER_WRITE = "filer_write"
    # flash devices (flash/device.py, flash/ftl_device.py)
    DEVICE_READ = "device_read"
    DEVICE_WRITE = "device_write"
    # simulation kernel (engine/simulation.py)
    PROCESS_SPAWN = "process_spawn"
    # syncers (host stacks)
    SYNCER_RUN = "syncer_run"

    #: every kind, in emission-layer order (schema validation uses this)
    ALL = (
        REQUEST_START,
        REQUEST_FINISH,
        TIER_HIT,
        TIER_MISS,
        WRITEBACK,
        EVICTION,
        INVALIDATION,
        QUEUE_ENTER,
        QUEUE_EXIT,
        NET_XFER,
        FILER_READ,
        FILER_WRITE,
        DEVICE_READ,
        DEVICE_WRITE,
        PROCESS_SPAWN,
        SYNCER_RUN,
    )


class TraceEvent(NamedTuple):
    """One structured event in a simulation's trace stream.

    ``ts`` is the simulated time in nanoseconds at emission.  ``host``
    is -1 when the emitting layer has no host context (the shared
    filer).  ``block`` is the global block number or -1.  ``tier`` names
    the cache tier, wire, or device involved (``ram``, ``flash``,
    ``unified``, ``net.h0.up``, ``flash.h0``, ...).  ``dur`` is a
    duration in nanoseconds for events that cover an interval
    (transfers, services, request completions), else ``None``.  ``info``
    is an optional dict of kind-specific fields.
    """

    ts: int
    kind: str
    host: int = -1
    block: int = -1
    tier: Optional[str] = None
    dur: Optional[int] = None
    info: Optional[dict] = None

    def as_dict(self) -> dict:
        """Flatten to the JSONL schema (info keys are inlined)."""
        payload = {"ts": self.ts, "kind": self.kind}
        if self.host >= 0:
            payload["host"] = self.host
        if self.block >= 0:
            payload["block"] = self.block
        if self.tier is not None:
            payload["tier"] = self.tier
        if self.dur is not None:
            payload["dur"] = self.dur
        if self.info:
            for key, value in self.info.items():
                if key not in payload:
                    payload[key] = value
        return payload
