"""Per-request latency breakdown: where an application I/O spends its time.

The paper's figures are latency *decompositions* — an application read
costs RAM time on a hit, flash time on a flash hit, and network + filer
time on a miss; writes additionally stall behind evictions of other
blocks' dirty data.  The breakdown machinery attributes every simulated
nanosecond of a block I/O to exactly one component:

``ram``
    RAM buffer reads/writes (the 400 ns/4 KB charges).
``flash_read`` / ``flash_write``
    flash device service time (including channel queueing on
    parallelism-limited devices).
``net``
    wire occupancy of the host↔filer segment (packet transmission).
``filer_queue``
    time spent *waiting* to acquire a network wire — the convoy
    component that makes the ``n`` policy degrade.
``filer_service``
    the filer's service time for reads and writes.
``syncer_stall``
    time an application I/O spends writing back *other* blocks' dirty
    data — dirty-victim evictions charged to the requesting thread (the
    paper's "multiple threads doing evictions contend ... and slow
    down").
``invalidation``
    consistency-directory stalls on the write path — lookup plus
    per-victim invalidate messages (zero unless ``timing.directory``
    models them; the paper's default is instant invalidation).
``other``
    anything the instrumentation does not attribute.  Zero for the
    naive/lookaside/unified architectures (property-tested); whole-I/O
    latency for architectures without instrumented fast paths (e.g. the
    exclusive/migration extension).

Exactness: simulated time advances only at generator yields, so
measuring ``sim.now`` deltas around every yield segment partitions a
block's end-to-end latency exactly — the components sum to the
latency in integer nanoseconds, with no rounding and no double
counting.  :class:`BreakdownCollector` verifies this per block and
counts any mismatch.
"""

from __future__ import annotations

from typing import Dict

from repro._units import US

#: component attribution order (stable; the report renders in this order)
COMPONENTS = (
    "ram",
    "flash_read",
    "flash_write",
    "net",
    "filer_queue",
    "filer_service",
    "syncer_stall",
    "invalidation",
    "other",
)


class Span:
    """Mutable per-block attribution scratchpad.

    One span is reused across a thread's blocks (reset between blocks)
    so the instrumented replay loop allocates nothing per block.  The
    instrumented host-stack paths add nanoseconds into the component
    fields as their yields complete.
    """

    __slots__ = COMPONENTS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ram = 0
        self.flash_read = 0
        self.flash_write = 0
        self.net = 0
        self.filer_queue = 0
        self.filer_service = 0
        self.syncer_stall = 0
        self.invalidation = 0
        self.other = 0

    def total_ns(self) -> int:
        return (
            self.ram
            + self.flash_read
            + self.flash_write
            + self.net
            + self.filer_queue
            + self.filer_service
            + self.syncer_stall
            + self.invalidation
            + self.other
        )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in COMPONENTS}


class LatencyBreakdown:
    """Aggregated component totals for one run, split read/write.

    ``unattributed_ns`` accumulates ``latency - span.total()`` residues
    and ``mismatched_blocks`` counts blocks where that residue was
    non-zero; both stay exactly zero when the instrumentation covers
    every yield of the replayed paths (the exactness property test).
    """

    __slots__ = (
        "read_ns",
        "write_ns",
        "read_blocks",
        "write_blocks",
        "unattributed_ns",
        "mismatched_blocks",
    )

    def __init__(self) -> None:
        self.read_ns: Dict[str, int] = {name: 0 for name in COMPONENTS}
        self.write_ns: Dict[str, int] = {name: 0 for name in COMPONENTS}
        self.read_blocks = 0
        self.write_blocks = 0
        self.unattributed_ns = 0
        self.mismatched_blocks = 0

    # --- reporting -----------------------------------------------------

    def mean_read_us(self) -> Dict[str, float]:
        """Mean per-block read cost of each component, µs (figures' unit)."""
        n = self.read_blocks
        if n == 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: self.read_ns[name] / n / US for name in COMPONENTS}

    def mean_write_us(self) -> Dict[str, float]:
        n = self.write_blocks
        if n == 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: self.write_ns[name] / n / US for name in COMPONENTS}

    def as_dict(self) -> Dict[str, object]:
        """Flatten to plain types (JSON-safe)."""
        return {
            "read_blocks": self.read_blocks,
            "write_blocks": self.write_blocks,
            "read_ns": dict(self.read_ns),
            "write_ns": dict(self.write_ns),
            "mean_read_us": self.mean_read_us(),
            "mean_write_us": self.mean_write_us(),
            "unattributed_ns": self.unattributed_ns,
            "mismatched_blocks": self.mismatched_blocks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LatencyBreakdown reads=%d writes=%d unattributed=%dns>" % (
            self.read_blocks,
            self.write_blocks,
            self.unattributed_ns,
        )


class BreakdownCollector:
    """Accumulates per-block spans into a :class:`LatencyBreakdown`.

    Mirrors the MetricsCollector's warmup gating: the replay driver
    calls :meth:`record` only for measurement-phase blocks.
    """

    __slots__ = ("breakdown",)

    def __init__(self) -> None:
        self.breakdown = LatencyBreakdown()

    def record(self, is_write: bool, latency_ns: int, span: Span) -> None:
        """Fold one measured block's span into the aggregate.

        Any residue between the end-to-end latency and the span's
        attributed total is charged to ``other`` (so components always
        sum to total latency) *and* tallied as unattributed, keeping
        instrumentation gaps visible.
        """
        bd = self.breakdown
        residue = latency_ns - span.total_ns()
        if residue:
            span.other += residue
            bd.unattributed_ns += residue
            bd.mismatched_blocks += 1
        totals = bd.write_ns if is_write else bd.read_ns
        totals["ram"] += span.ram
        totals["flash_read"] += span.flash_read
        totals["flash_write"] += span.flash_write
        totals["net"] += span.net
        totals["filer_queue"] += span.filer_queue
        totals["filer_service"] += span.filer_service
        totals["syncer_stall"] += span.syncer_stall
        totals["invalidation"] += span.invalidation
        totals["other"] += span.other
        if is_write:
            bd.write_blocks += 1
        else:
            bd.read_blocks += 1
