"""Trace exporters: JSONL event dumps and Chrome ``trace_event`` JSON.

Two on-disk formats:

* **JSONL** — one JSON object per line, the flattened
  :meth:`~repro.obs.events.TraceEvent.as_dict` schema.  Greppable,
  streamable, and the stable machine interface
  (:func:`validate_jsonl` checks a file against the schema).
* **Chrome trace_event** — the ``about://tracing`` / Perfetto format
  (a JSON object with a ``traceEvents`` array; timestamps in
  *microseconds*).  Request start/finish pairs become complete ``X``
  slices on a per-host/thread track; interval events (transfers,
  device/filer service) become ``X`` slices on their tier's track;
  point events become instants (``i``).  Load the file at
  https://ui.perfetto.dev to browse a replay visually.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Union

from repro.obs.events import EventKind, TraceEvent

#: duration-carrying kinds whose ``ts`` marks the interval's *end*
#: (emitted when the waited-for quantity becomes known)
_END_ANCHORED_KINDS = frozenset((EventKind.REQUEST_FINISH, EventKind.QUEUE_EXIT))

#: duration-carrying kinds whose ``ts`` marks the interval's *start*
#: (service events are emitted at issue time, before the delay elapses)
_START_ANCHORED_KINDS = frozenset(
    (
        EventKind.NET_XFER,
        EventKind.FILER_READ,
        EventKind.FILER_WRITE,
        EventKind.DEVICE_READ,
        EventKind.DEVICE_WRITE,
    )
)

_SLICE_KINDS = _END_ANCHORED_KINDS | _START_ANCHORED_KINDS

#: required JSONL fields and their types
_REQUIRED_FIELDS = (("ts", int), ("kind", str))
_OPTIONAL_INT_FIELDS = ("host", "block", "dur")


def write_jsonl(events: Iterable[TraceEvent], destination: Union[str, IO[str]]) -> int:
    """Write events as JSON Lines; returns the number of lines written.

    ``destination`` is a path or an open text file.
    """
    if hasattr(destination, "write"):
        return _write_jsonl_stream(events, destination)
    with open(destination, "w", encoding="utf-8") as stream:
        return _write_jsonl_stream(events, stream)


def _write_jsonl_stream(events: Iterable[TraceEvent], stream: IO[str]) -> int:
    dumps = json.dumps
    count = 0
    for event in events:
        stream.write(dumps(event.as_dict(), separators=(",", ":")))
        stream.write("\n")
        count += 1
    return count


def validate_jsonl(source: Union[str, IO[str]]) -> int:
    """Validate a JSONL event dump against the schema.

    Checks every line parses, carries ``ts``/``kind`` of the right
    types, uses a known kind, keeps integer fields integral, and that
    timestamps are monotonically non-decreasing (the recorder appends
    in simulated-time order).  Returns the number of events; raises
    ``ValueError`` on the first violation.
    """
    if hasattr(source, "read"):
        return _validate_jsonl_stream(source)
    with open(source, "r", encoding="utf-8") as stream:
        return _validate_jsonl_stream(stream)


def _validate_jsonl_stream(stream: IO[str]) -> int:
    known_kinds = frozenset(EventKind.ALL)
    last_ts = None
    count = 0
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError("line %d: not valid JSON (%s)" % (lineno, exc)) from exc
        if not isinstance(payload, dict):
            raise ValueError("line %d: expected an object" % lineno)
        for field, expected in _REQUIRED_FIELDS:
            if field not in payload:
                raise ValueError("line %d: missing %r" % (lineno, field))
            if not isinstance(payload[field], expected) or isinstance(
                payload[field], bool
            ):
                raise ValueError(
                    "line %d: %r must be %s" % (lineno, field, expected.__name__)
                )
        if payload["kind"] not in known_kinds:
            raise ValueError("line %d: unknown kind %r" % (lineno, payload["kind"]))
        for field in _OPTIONAL_INT_FIELDS:
            value = payload.get(field)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ValueError("line %d: %r must be an integer" % (lineno, field))
        ts = payload["ts"]
        if ts < 0:
            raise ValueError("line %d: negative timestamp" % lineno)
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                "line %d: timestamp went backwards (%d < %d)" % (lineno, ts, last_ts)
            )
        last_ts = ts
        count += 1
    return count


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Convert events to a Chrome ``trace_event`` JSON object.

    Tracks (``pid``/``tid``) are hosts and tiers: application requests
    land on ``host N`` / thread tracks, component events on their
    tier's named track.  Durations and timestamps are converted from
    nanoseconds to the format's microseconds (floats, so nothing is
    truncated).
    """
    trace_events: List[dict] = []
    # The format wants integer tids; tracks are named via thread_name
    # metadata records.
    track_ids: dict = {}
    for event in events:
        pid = event.host if event.host >= 0 else 0
        if event.kind in (EventKind.REQUEST_START, EventKind.REQUEST_FINISH):
            thread = 0
            if event.info and "thread" in event.info:
                thread = event.info["thread"]
            track = "app.t%d" % thread
        else:
            track = event.tier or event.kind
        tid = track_ids.setdefault((pid, track), len(track_ids))
        args = {}
        if event.block >= 0:
            args["block"] = event.block
        if event.info:
            args.update(event.info)
        if event.kind == EventKind.REQUEST_START:
            # rendered via its matching REQUEST_FINISH complete slice
            continue
        if event.kind in _SLICE_KINDS and event.dur is not None:
            name = "request" if event.kind == EventKind.REQUEST_FINISH else event.kind
            if event.kind in _END_ANCHORED_KINDS:
                ts_ns = event.ts - event.dur
            else:
                ts_ns = event.ts
            if event.kind == EventKind.QUEUE_EXIT:
                name = "queued"
            trace_events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": ts_ns / 1000.0,
                    "dur": event.dur / 1000.0,
                    "pid": pid,
                    "tid": tid,
                    "cat": "sim",
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "ts": event.ts / 1000.0,
                    "pid": pid,
                    "tid": tid,
                    "cat": "sim",
                    "s": "t",
                    "args": args,
                }
            )
    # thread-name metadata makes the Perfetto track labels readable
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": track},
        }
        for (pid, track), tid in sorted(track_ids.items())
    ]
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    events: Iterable[TraceEvent], destination: Union[str, IO[str]]
) -> None:
    """Serialize :func:`to_chrome_trace` output to a path or stream."""
    payload = to_chrome_trace(events)
    if hasattr(destination, "write"):
        json.dump(payload, destination)
        return
    with open(destination, "w", encoding="utf-8") as stream:
        json.dump(payload, stream)
