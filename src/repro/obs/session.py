"""The Observation session: one run's tracing + breakdown state.

An :class:`Observation` bundles the event recorder and the breakdown
collector for a single simulation, and carries the exporter surface
(``write_jsonl``, ``write_chrome_trace``, ``counters``).  Attach one to
a run with ``run_simulation(trace, config, obs=Observation())`` or let
``SimConfig.trace_events=True`` create one internally (the sweep path,
where the observation must travel back across process boundaries inside
the picklable results object).
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional, Union

from repro.obs.breakdown import BreakdownCollector, LatencyBreakdown
from repro.obs.events import TraceEvent
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.recorder import EventRecorder


class Observation:
    """Observability configuration + sinks for one simulation run.

    ``events=False`` disables the event stream but keeps the latency
    breakdown (much cheaper: no per-event allocation); ``max_events``
    caps the stream's memory, dropping (and counting) the overflow.
    """

    def __init__(
        self,
        *,
        events: bool = True,
        breakdown: bool = True,
        max_events: Optional[int] = None,
    ) -> None:
        if not events and not breakdown:
            raise ValueError("Observation with neither events nor breakdown")
        self.recorder: Optional[EventRecorder] = (
            EventRecorder(max_events=max_events) if events else None
        )
        self.breakdown_collector: Optional[BreakdownCollector] = (
            BreakdownCollector() if breakdown else None
        )

    # --- results surface ------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """The recorded event stream (empty when events are disabled)."""
        if self.recorder is None:
            return []
        return self.recorder.events

    @property
    def breakdown(self) -> Optional[LatencyBreakdown]:
        """The aggregated latency breakdown (None when disabled)."""
        if self.breakdown_collector is None:
            return None
        return self.breakdown_collector.breakdown

    def counters(self) -> Dict[str, int]:
        """Per-event-kind counts (plus ``dropped_events`` when capped)."""
        if self.recorder is None:
            return {}
        return self.recorder.counters_snapshot()

    # --- exporters -------------------------------------------------------

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Dump the event stream as JSON Lines; returns the line count."""
        return write_jsonl(self.events, destination)

    def write_chrome_trace(self, destination: Union[str, IO[str]]) -> None:
        """Dump the event stream in Chrome trace_event format
        (loadable at https://ui.perfetto.dev)."""
        write_chrome_trace(self.events, destination)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Observation events=%d breakdown=%s>" % (
            len(self.events),
            "on" if self.breakdown_collector is not None else "off",
        )
