"""The event recorder: an append-only in-memory trace sink.

Two implementations share one duck type:

* :class:`EventRecorder` — the live sink.  ``emit`` appends a
  :class:`~repro.obs.events.TraceEvent` and bumps a per-kind counter;
  an optional ``max_events`` cap bounds memory on long replays (the
  counters keep counting; overflowing events are dropped and tallied).
* :data:`NULL_RECORDER` — the module-level null sink.  Instrumentation
  sites follow the PR-3 guard pattern — hold ``None`` (not the null
  recorder) and test ``if rec is not None`` — so the *disabled* cost is
  one predictable branch, not a method call.  The null recorder exists
  for call sites that want an unconditional ``emit`` target (tests,
  exporter plumbing), never for the simulation hot paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.events import TraceEvent


class EventRecorder:
    """Collects structured trace events for one simulation run."""

    __slots__ = ("events", "counters", "dropped_events", "_max_events")

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 0:
            raise ValueError("max_events must be >= 0 or None")
        self.events: List[TraceEvent] = []
        #: per-kind emission counts (counted even past the cap)
        self.counters: Dict[str, int] = {}
        self.dropped_events = 0
        self._max_events = max_events

    def emit(
        self,
        ts: int,
        kind: str,
        host: int = -1,
        block: int = -1,
        tier: Optional[str] = None,
        dur: Optional[int] = None,
        info: Optional[dict] = None,
    ) -> None:
        """Record one event at simulated time ``ts`` (nanoseconds)."""
        counters = self.counters
        counters[kind] = counters.get(kind, 0) + 1
        if self._max_events is not None and len(self.events) >= self._max_events:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(ts, kind, host, block, tier, dur, info))

    def __len__(self) -> int:
        return len(self.events)

    def counters_snapshot(self) -> Dict[str, int]:
        """Copy of the per-kind counters plus the drop count."""
        snapshot = dict(self.counters)
        if self.dropped_events:
            snapshot["dropped_events"] = self.dropped_events
        return snapshot


class NullRecorder:
    """A recorder that discards everything (the disabled sink)."""

    __slots__ = ()

    #: shared empty views so the reporting surface works unconditionally
    events: List[TraceEvent] = []
    counters: Dict[str, int] = {}
    dropped_events = 0

    def emit(self, *args, **kwargs) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def counters_snapshot(self) -> Dict[str, int]:
        return {}


#: The module-level null sink (see the module docstring for when to use it).
NULL_RECORDER = NullRecorder()
