"""Flash cleaning policies: when dirty flash blocks flush to the filer.

The paper cleans the flash tier with the writeback policy's periodic
syncer (``p<seconds>``) — every dirty block, every period.  Open-CAS
ships two alternatives that trade filer traffic against dirty-backlog
exposure, modeled here:

* :class:`PeriodicClean` — the paper default.  The host stack keeps its
  existing syncer loop (driven by ``SimConfig.flash_policy``); like
  :class:`~repro.policies.admission.AlwaysAdmit` this compiles to no
  new code at all, preserving bit-identical paper-default replays.
* :class:`AgedClean` — ALRU-style: a periodic pass flushes only dirty
  blocks that have been *idle* (not re-written) for at least
  ``idle_ns``.  Hot blocks keep absorbing overwrites in flash instead
  of being flushed mid-burst.
* :class:`AggressiveClean` — ACP-style: event-driven draining.  When
  the dirty backlog crosses ``high_fraction`` of the flash capacity,
  the oldest dirty blocks are drained (in parallel, like a syncer
  batch) until the backlog falls to ``low_fraction``.  The invariant
  suite asserts the bound ``dirty - in_flight <= high`` at every check
  boundary.

Specs are immutable/hashable/picklable (they live in frozen
``SimConfig`` instances); per-host mutable state is the *controller*
built by :meth:`CleaningPolicy.controller`, which the layered host
stacks drive through two hooks: ``note_dirtied(block, now)`` after any
flash ``mark_dirty``, and ``start()`` in place of the flash syncer.

A non-default cleaning policy replaces the flash tier's *background*
syncer only; the write-path behavior of the flash writeback policy
(sync/async/delayed propagation) is unchanged.  On the lookaside
architecture the flash never holds dirty data, so cleaning is a
documented no-op there.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro._units import SECOND
from repro.errors import ConfigError


class CleaningPolicy:
    """Spec base class for flash cleaning policies (see module docs)."""

    __slots__ = ()
    name = "cleaning"
    _fields: tuple = ()

    @property
    def is_periodic(self) -> bool:
        """True for the paper-default syncer-driven cleaning (which the
        host stacks compile to a no-op)."""
        return False

    @property
    def label(self) -> str:
        params = tuple(getattr(self, f) for f in self._fields)
        if not params:
            return self.name
        return "%s:%s" % (self.name, ":".join("%g" % p for p in params))

    def controller(self, stack) -> Optional["CleaningController"]:
        """Fresh per-host controller bound to one layered host stack
        (None for the periodic default)."""
        raise NotImplementedError

    def scaled(self, scale: int) -> "CleaningPolicy":
        """Spec adjusted for geometry divided by ``scale`` — time-based
        thresholds shrink with the trace's simulated duration, exactly
        like :func:`repro.experiments.common.scaled_policy`."""
        return self

    def _key(self):
        return (type(self).__name__,) + tuple(
            getattr(self, f) for f in self._fields
        )

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        params = ", ".join("%s=%r" % (f, getattr(self, f)) for f in self._fields)
        return "%s(%s)" % (type(self).__name__, params)

    def __getstate__(self):
        return {f: getattr(self, f) for f in self._fields}

    def __setstate__(self, state) -> None:
        for f, value in state.items():
            object.__setattr__(self, f, value)


class PeriodicClean(CleaningPolicy):
    """The paper default: the flash writeback policy's own syncer."""

    __slots__ = ()
    name = "periodic"

    @property
    def is_periodic(self) -> bool:
        return True

    def controller(self, stack) -> None:
        return None


class AgedClean(CleaningPolicy):
    """ALRU-style aged cleaning: flush dirty blocks idle >= ``idle_ns``."""

    __slots__ = ("idle_ns", "period_ns")
    name = "alru"
    _fields = ("idle_ns", "period_ns")

    def __init__(
        self, *, idle_ns: int = 30 * SECOND, period_ns: Optional[int] = None
    ) -> None:
        if idle_ns < 0:
            raise ConfigError("aged cleaning needs idle_ns >= 0")
        if period_ns is None:
            period_ns = min(SECOND, max(1_000, idle_ns))
        if period_ns < 1:
            raise ConfigError("aged cleaning needs period_ns >= 1")
        object.__setattr__(self, "idle_ns", int(idle_ns))
        object.__setattr__(self, "period_ns", int(period_ns))

    def __setattr__(self, key, value):
        raise AttributeError("CleaningPolicy specs are immutable")

    @property
    def label(self) -> str:
        return "alru:%gs" % (self.idle_ns / SECOND)

    def scaled(self, scale: int) -> "AgedClean":
        if scale <= 1:
            return self
        return AgedClean(
            idle_ns=max(1_000, self.idle_ns // scale),
            period_ns=max(1_000, self.period_ns // scale),
        )

    def controller(self, stack) -> "AgedCleanController":
        return AgedCleanController(self, stack)


class AggressiveClean(CleaningPolicy):
    """ACP-style watermark draining of the dirty backlog."""

    __slots__ = ("high_fraction", "low_fraction")
    name = "acp"
    _fields = ("high_fraction", "low_fraction")

    def __init__(
        self, *, high_fraction: float = 0.5, low_fraction: Optional[float] = None
    ) -> None:
        if not 0.0 < high_fraction <= 1.0:
            raise ConfigError("ACP high watermark must be in (0, 1]")
        if low_fraction is None:
            low_fraction = high_fraction / 2.0
        if not 0.0 <= low_fraction < high_fraction:
            raise ConfigError("ACP low watermark must be in [0, high)")
        object.__setattr__(self, "high_fraction", float(high_fraction))
        object.__setattr__(self, "low_fraction", float(low_fraction))

    def __setattr__(self, key, value):
        raise AttributeError("CleaningPolicy specs are immutable")

    def controller(self, stack) -> "AggressiveCleanController":
        return AggressiveCleanController(self, stack)


class CleaningController:
    """Per-host cleaning state driven by the layered host stack."""

    __slots__ = ("spec", "stack", "store", "flushes")

    def __init__(self, spec: CleaningPolicy, stack) -> None:
        self.spec = spec
        self.stack = stack
        self.store = stack.flash
        #: cleaning flushes initiated (monotone; reporting only)
        self.flushes = 0

    def start(self) -> None:
        """Spawn background processes (called from ``start_syncers``)."""

    def note_dirtied(self, block: int, now: int) -> None:
        """A flash block just went (or stayed) dirty at ``now``."""

    def counters(self) -> Dict[str, int]:
        return {"flushes": self.flushes}


class AgedCleanController(CleaningController):
    __slots__ = ("_dirtied_at",)

    def __init__(self, spec: AgedClean, stack) -> None:
        super().__init__(spec, stack)
        # block -> last-dirtied timestamp, insertion-ordered oldest
        # first; entries of since-cleaned blocks are pruned lazily.
        self._dirtied_at: Dict[int, int] = {}

    def note_dirtied(self, block: int, now: int) -> None:
        dirtied = self._dirtied_at
        if block in dirtied:
            del dirtied[block]
        dirtied[block] = now

    def start(self) -> None:
        self.stack._spawn(self._loop(), "flash-aged-cleaner")

    def _loop(self) -> Iterator:
        stack = self.stack
        store = self.store
        spec = self.spec
        period_ns = spec.period_ns
        idle_ns = spec.idle_ns
        flush_block = stack._flush_flash_block
        while stack.keep_running():
            yield period_ns
            dirty = store.dirty_blocks()
            if dirty:
                now = stack.sim.now
                dirtied = self._dirtied_at
                for block in dirty:
                    # Unknown blocks (defensive) count as infinitely idle.
                    if now - dirtied.get(block, 0) >= idle_ns:
                        self.flushes += 1
                        stack._spawn(flush_block(block), "aged-flush")
            # Bound the ledger: drop entries for blocks no longer dirty.
            if len(self._dirtied_at) > 2 * len(dirty) + 64:
                dirty_set = store._dirty
                self._dirtied_at = {
                    b: t for b, t in self._dirtied_at.items() if b in dirty_set
                }


class AggressiveCleanController(CleaningController):
    __slots__ = ("high_blocks", "low_blocks", "pending", "_order", "_draining")

    def __init__(self, spec: AggressiveClean, stack) -> None:
        super().__init__(spec, stack)
        capacity = self.store.capacity_blocks
        self.high_blocks = max(1, int(capacity * spec.high_fraction))
        self.low_blocks = min(int(capacity * spec.low_fraction), self.high_blocks - 1)
        #: drains spawned but not yet finished (1:1 with ``_draining``)
        self.pending = 0
        # dirty blocks in first-dirtied order (re-dirty moves to back)
        self._order: Dict[int, None] = {}
        self._draining: set = set()

    def note_dirtied(self, block: int, now: int) -> None:
        order = self._order
        if block in order:
            del order[block]
        order[block] = None
        self._recheck()

    def _recheck(self) -> None:
        store = self.store
        backlog = store.dirty_count - self.pending
        if backlog <= self.high_blocks:
            return
        # Drain oldest dirty blocks until the backlog (net of drains
        # already in flight) reaches the low watermark.  Every dirty
        # block not already draining is a valid target, and there are
        # at least ``backlog`` of those, so the loop always reaches it.
        need = backlog - self.low_blocks
        order = self._order
        draining = self._draining
        dirty_set = store._dirty
        targets = []
        stale = []
        for candidate in order:
            if len(targets) >= need:
                break
            if candidate not in dirty_set:
                if candidate not in draining:
                    stale.append(candidate)
                continue
            if candidate in draining:
                continue
            targets.append(candidate)
        for block_ in stale:
            del order[block_]
        stack = self.stack
        for target in targets:
            draining.add(target)
            self.pending += 1
            self.flushes += 1
            stack._spawn(self._drain(target), "acp-drain")

    def _drain(self, block: int) -> Iterator:
        try:
            yield from self.stack._flush_flash_block(block)
        finally:
            self.pending -= 1
            self._draining.discard(block)
        # A write that re-dirtied the block mid-flush leaves it dirty
        # with this drain no longer in flight — re-check the watermark
        # immediately so the backlog bound holds without waiting for
        # the next dirtying write.
        self._recheck()
