"""The unified policy registry.

Historically "policy" meant three unrelated surfaces in this codebase:
``SimConfig.eviction_policy`` (a bare string), ``WritebackPolicy``
dataclasses imported from :mod:`repro.core.policies`, and the flash
syncer hardcoded into the host stacks.  This package unifies them — and
adds the two new axes, flash *admission* and flash *cleaning* — behind
one registry:

>>> import repro.policies as policies
>>> policies.get("admission", "probationary", min_refs=3)
ProbationaryAdmit(min_refs=3)
>>> policies.resolve("cleaning", "alru:30").label
'alru:30s'
>>> policies.resolve("writeback", "p5").label
'p5'

Four kinds:

``eviction``
    :class:`~repro.cache.policy.EvictionPolicy` orderings (``lru``,
    ``fifo``, ``clock``, ``slru[:fraction]``).  Constructed per store —
    ``get`` takes an optional ``capacity_blocks`` to size SLRU's
    protected segment.
``admission``
    :class:`~repro.policies.admission.AdmissionPolicy` specs gating
    entry to the flash tier (``always``, ``probationary[:min_refs]``,
    ``budget:<bytes/s>[:<burst>]``; sizes accept K/M/G suffixes).
``cleaning``
    :class:`~repro.policies.cleaning.CleaningPolicy` specs for flushing
    dirty flash blocks (``periodic``, ``alru[:idle_seconds]``,
    ``acp[:high[:low]]``).
``writeback``
    :class:`~repro.core.policies.WritebackPolicy` in the paper's
    notation (``s``, ``a``, ``p<seconds>``, ``n``, plus the ``t``/``d``
    extensions) or by long name (``sync``, ``async``, ``periodic``...).

Everywhere a policy is consumed (``SimConfig``, ``BlockStore``), either
the spec *string* or a policy *instance* is accepted; strings round-trip
through :func:`resolve`.  ``WritebackPolicy`` is also re-exported here,
its new canonical import location.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import ConfigError
from repro.policies.admission import (
    AdmissionController,
    AdmissionPolicy,
    AlwaysAdmit,
    ProbationaryAdmit,
    WriteBudgetAdmit,
)
from repro.policies.cleaning import (
    AggressiveClean,
    AgedClean,
    CleaningController,
    CleaningPolicy,
    PeriodicClean,
)

__all__ = [
    "KINDS",
    "get",
    "resolve",
    "available",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "ProbationaryAdmit",
    "WriteBudgetAdmit",
    "AdmissionController",
    "CleaningPolicy",
    "PeriodicClean",
    "AgedClean",
    "AggressiveClean",
    "CleaningController",
    "WritebackPolicy",
    "EvictionPolicy",
]

KINDS = ("eviction", "admission", "cleaning", "writeback")


def __getattr__(name: str):
    # Lazy: repro.core.__init__ -> config -> repro.policies would cycle
    # if WritebackPolicy (or EvictionPolicy, via repro.cache) were
    # imported eagerly here.
    if name == "WritebackPolicy":
        from repro.core.policies import WritebackPolicy

        return WritebackPolicy
    if name == "EvictionPolicy":
        from repro.cache.policy import EvictionPolicy

        return EvictionPolicy
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


# --- helpers --------------------------------------------------------------

_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3, "t": 1024 ** 4}


def _parse_size(text: str) -> float:
    """Parse ``"8388608"``, ``"8M"``, ``"0.5G"``, ``"64MB"`` to bytes."""
    lowered = text.strip().lower()
    if lowered.endswith("b"):
        lowered = lowered[:-1]
    multiplier = 1
    if lowered and lowered[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[lowered[-1]]
        lowered = lowered[:-1]
    try:
        return float(lowered) * multiplier
    except ValueError:
        raise ConfigError("bad size %r (expected e.g. 8388608, 8M, 0.5G)" % text) from None


def _check_kind(kind: str) -> str:
    lowered = str(kind).lower()
    if lowered not in KINDS:
        raise ConfigError(
            "unknown policy kind %r (choose from %s)" % (kind, ", ".join(KINDS))
        )
    return lowered


def _split_spec(spec: str):
    parts = spec.strip().lower().split(":")
    return parts[0], parts[1:]


def _parse_admission(spec: str) -> AdmissionPolicy:
    name, params = _split_spec(spec)
    try:
        if name == "always" and not params:
            return AlwaysAdmit()
        if name == "probationary" and len(params) <= 1:
            if params:
                return ProbationaryAdmit(min_refs=int(params[0]))
            return ProbationaryAdmit()
        if name == "budget" and 1 <= len(params) <= 2:
            rate = _parse_size(params[0])
            if len(params) == 2:
                return WriteBudgetAdmit(
                    bytes_per_second=rate, burst_bytes=_parse_size(params[1])
                )
            return WriteBudgetAdmit(bytes_per_second=rate)
    except (ValueError, TypeError):
        raise ConfigError("bad admission policy spec %r" % spec) from None
    raise ConfigError(
        "unknown admission policy %r (expected always, "
        "probationary[:min_refs], or budget:<bytes/s>[:<burst>])" % spec
    )


def _parse_cleaning(spec: str) -> CleaningPolicy:
    from repro._units import SECOND

    name, params = _split_spec(spec)
    try:
        if name == "periodic" and not params:
            return PeriodicClean()
        if name == "alru" and len(params) <= 1:
            if params:
                return AgedClean(idle_ns=int(float(params[0]) * SECOND))
            return AgedClean()
        if name == "acp" and len(params) <= 2:
            if len(params) == 2:
                return AggressiveClean(
                    high_fraction=float(params[0]), low_fraction=float(params[1])
                )
            if len(params) == 1:
                return AggressiveClean(high_fraction=float(params[0]))
            return AggressiveClean()
    except (ValueError, TypeError):
        raise ConfigError("bad cleaning policy spec %r" % spec) from None
    raise ConfigError(
        "unknown cleaning policy %r (expected periodic, "
        "alru[:idle_seconds], or acp[:high[:low]])" % spec
    )


_WRITEBACK_LONG_NAMES = {
    "sync": "s",
    "async": "a",
    "asynchronous": "a",
    "none": "n",
}


def _parse_writeback(spec: str):
    from repro.core.policies import WritebackPolicy

    name, params = _split_spec(spec)
    name = _WRITEBACK_LONG_NAMES.get(name, name)
    if params:
        factories = {
            "periodic": WritebackPolicy.periodic,
            "trickle": WritebackPolicy.trickle,
            "delayed": WritebackPolicy.delayed,
        }
        if name in factories and len(params) == 1:
            try:
                return factories[name](float(params[0]))
            except ValueError:
                raise ConfigError("bad writeback policy spec %r" % spec) from None
        raise ConfigError("bad writeback policy spec %r" % spec)
    if name in ("periodic", "trickle", "delayed"):
        raise ConfigError(
            "writeback policy %r needs a period, e.g. %s:5" % (spec, name)
        )
    return WritebackPolicy.parse(name)


# --- the registry API -----------------------------------------------------

def get(kind: str, name: str, **params):
    """Construct a policy by kind and name with keyword parameters.

    >>> get("admission", "probationary", min_refs=4).min_refs
    4
    >>> get("writeback", "periodic", seconds=5).label
    'p5'
    >>> type(get("eviction", "clock")).__name__
    'ClockPolicy'
    """
    kind = _check_kind(kind)
    if kind == "eviction":
        from repro.cache.policy import _make_policy

        capacity = params.pop("capacity_blocks", 0)
        fraction = params.pop("protected_fraction", None)
        if params:
            raise ConfigError(
                "eviction policies take only capacity_blocks/"
                "protected_fraction, got %s" % ", ".join(sorted(params))
            )
        spec = name if fraction is None else "%s:%g" % (name, fraction)
        return _make_policy(spec, capacity)
    if kind == "writeback":
        from repro.core.policies import WritebackPolicy

        seconds = params.pop("seconds", None)
        if params:
            raise ConfigError(
                "writeback policies take only seconds=, got %s"
                % ", ".join(sorted(params))
            )
        if seconds is not None:
            return _parse_writeback("%s:%g" % (name, seconds))
        return _parse_writeback(name)
    classes = {
        "admission": {
            "always": AlwaysAdmit,
            "probationary": ProbationaryAdmit,
            "budget": WriteBudgetAdmit,
        },
        "cleaning": {
            "periodic": PeriodicClean,
            "alru": AgedClean,
            "acp": AggressiveClean,
        },
    }[kind]
    lowered = str(name).lower()
    if lowered not in classes:
        raise ConfigError(
            "unknown %s policy %r (choose from %s)"
            % (kind, name, ", ".join(sorted(classes)))
        )
    return classes[lowered](**params)


def resolve(kind: str, value):
    """Accept a spec string or a policy instance; return the instance.

    This is what ``SimConfig`` uses to normalize its policy fields, so
    ``SimConfig(flash_admission="probationary:2")`` and
    ``SimConfig(flash_admission=ProbationaryAdmit(min_refs=2))`` are the
    same configuration.
    """
    kind = _check_kind(kind)
    if kind == "admission":
        if isinstance(value, AdmissionPolicy):
            return value
        if isinstance(value, str):
            return _parse_admission(value)
    elif kind == "cleaning":
        if isinstance(value, CleaningPolicy):
            return value
        if isinstance(value, str):
            return _parse_cleaning(value)
    elif kind == "writeback":
        from repro.core.policies import WritebackPolicy

        if isinstance(value, WritebackPolicy):
            return value
        if isinstance(value, str):
            return _parse_writeback(value)
    else:  # eviction
        from repro.cache.policy import EvictionPolicy

        if isinstance(value, EvictionPolicy):
            return value
        if isinstance(value, str):
            # Defer construction: eviction policies are per-store mutable
            # objects sized by the store, so the *string* is the spec.
            from repro.cache.policy import _make_policy

            _make_policy(value, 0)  # validate eagerly
            return value.lower()
    raise ConfigError(
        "%s policy must be a spec string or policy instance, got %r"
        % (kind, type(value).__name__)
    )


def available(kind: Optional[str] = None) -> Dict[str, Dict[str, str]]:
    """Registry listing: ``{kind: {name: synopsis}}`` for the CLI/docs."""
    catalog = {
        "eviction": {
            "lru": "least-recently-used (the paper's choice)",
            "fifo": "first-in-first-out, reuse-blind",
            "clock": "second-chance approximation of LRU",
            "slru[:fraction]": "segmented LRU, scan-resistant",
        },
        "admission": {
            "always": "admit every block to flash (paper baseline)",
            "probationary[:min_refs]": "admit only blocks with >= min_refs RAM references (Flashield-style)",
            "budget:<bytes/s>[:<burst>]": "token-bucket budget on flash program bytes (WLFC-style)",
        },
        "cleaning": {
            "periodic": "flash writeback policy's own syncer (paper baseline)",
            "alru[:idle_seconds]": "flush dirty flash blocks idle >= threshold (Open-CAS ALRU)",
            "acp[:high[:low]]": "drain dirty backlog between watermarks (Open-CAS ACP)",
        },
        "writeback": {
            "s | sync": "blocking write-through",
            "a | async": "non-blocking write-through",
            "p<sec> | periodic:<sec>": "periodic syncer",
            "n | none": "write back only on eviction",
            "t<sec> | trickle:<sec>": "flushes spread across the period",
            "d<sec> | delayed:<sec>": "per-block flush after a delay",
        },
    }
    if kind is None:
        return catalog
    return {_check_kind(kind): catalog[_check_kind(kind)]}


PolicyLike = Union[str, AdmissionPolicy, CleaningPolicy]
