"""Flash admission policies: who gets to *enter* the flash cache.

The paper's flash tier admits every block it sees ("newly referenced
blocks are first placed in flash"); the follow-on literature shows that
gating admission is the main lever on device endurance — every rejected
fill is a flash program (and eventually an erase) that never happens.
Three policies are modeled:

* :class:`AlwaysAdmit` — the paper's baseline.  Every fill is admitted;
  the host stacks compile this down to *no admission code at all* (the
  controller is ``None``), so the paper-default configuration replays
  bit-identically to a build without this module.
* :class:`ProbationaryAdmit` — Flashield-style "flashiness": a block
  may enter flash only once it has proven itself in RAM, i.e. been
  referenced at least ``min_refs`` times since its RAM insertion.  The
  reference ledger lives in the RAM tier's
  :class:`~repro.cache.store.BlockStore` (eviction from RAM resets the
  count — a block must re-earn admission after falling out of RAM).
* :class:`WriteBudgetAdmit` — WLFC-style write-limited caching: a token
  bucket refilled at ``bytes_per_second`` of simulated time gates flash
  fills.  Updates of already-resident blocks always proceed (rejecting
  them would corrupt the cache) but debit the bucket, so heavy update
  traffic starves future fills.

A policy object is an immutable, hashable, picklable *spec* — it can
sit in a frozen :class:`~repro.core.config.SimConfig` and travel to
sweep worker processes.  Per-host mutable state lives in the
*controller* built by :meth:`AdmissionPolicy.controller`, one per host
stack.

Admission verdicts are counted (``checks == admits + rejects``) and the
:mod:`repro.invariants` suite asserts that no flash fill ever bypassed
a verdict.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._units import BLOCK_SIZE, SECOND, format_bytes
from repro.errors import ConfigError


class AdmissionPolicy:
    """Spec base class for flash admission policies.

    Subclasses take keyword-only constructor arguments, are immutable
    and hashable (value semantics over ``_fields``), and build their
    per-host runtime state via :meth:`controller`.
    """

    __slots__ = ()
    #: registry name (the part before ``:`` in a spec string)
    name = "admission"
    #: constructor fields, in spec-string order
    _fields: tuple = ()

    @property
    def is_always(self) -> bool:
        """True for the paper-default admit-everything policy (which
        the host stacks compile to a no-op)."""
        return False

    @property
    def label(self) -> str:
        params = tuple(getattr(self, f) for f in self._fields)
        if not params:
            return self.name
        return "%s:%s" % (self.name, ":".join("%g" % p for p in params))

    def controller(self) -> Optional["AdmissionController"]:
        """Fresh per-host mutable state (None for always-admit)."""
        raise NotImplementedError

    def scaled(self, scale: int) -> "AdmissionPolicy":
        """Spec adjusted for a geometry divided by ``scale`` (see
        :func:`repro.experiments.common.scaled_policy`); admission
        policies are rate/count based and mostly scale-invariant."""
        return self

    def _key(self):
        return (type(self).__name__,) + tuple(
            getattr(self, f) for f in self._fields
        )

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        params = ", ".join(
            "%s=%r" % (f, getattr(self, f)) for f in self._fields
        )
        return "%s(%s)" % (type(self).__name__, params)

    # __slots__ classes need explicit state plumbing for pickle.
    def __getstate__(self):
        return {f: getattr(self, f) for f in self._fields}

    def __setstate__(self, state) -> None:
        for f, value in state.items():
            object.__setattr__(self, f, value)


class AlwaysAdmit(AdmissionPolicy):
    """The paper's baseline: every block is admitted to flash."""

    __slots__ = ()
    name = "always"

    @property
    def is_always(self) -> bool:
        return True

    def controller(self) -> None:
        return None


class ProbationaryAdmit(AdmissionPolicy):
    """Admit a block to flash only once RAM has seen it ``min_refs``
    times (Flashield-style probation).

    The count is the number of RAM-tier references (reads *and* write
    hits both touch) since the block's RAM insertion; eviction from RAM
    resets it.  Read misses therefore never fill flash directly — a
    block is *promoted* into flash on the RAM hit that crosses the
    threshold, and the flash program is charged to that reader.
    """

    __slots__ = ("min_refs",)
    name = "probationary"
    _fields = ("min_refs",)

    def __init__(self, *, min_refs: int = 2) -> None:
        if min_refs < 1:
            raise ConfigError("probationary admission needs min_refs >= 1")
        object.__setattr__(self, "min_refs", int(min_refs))

    def __setattr__(self, key, value):  # immutability by convention
        raise AttributeError("AdmissionPolicy specs are immutable")

    def controller(self) -> "ProbationaryController":
        return ProbationaryController(self)


class WriteBudgetAdmit(AdmissionPolicy):
    """Token-bucket budget on flash program bytes (WLFC-style).

    Fills need a full block's worth of tokens; updates of resident
    blocks always proceed but debit the bucket (the balance may go
    negative, delaying future fills).  ``burst_bytes`` caps the bucket
    (default: one second's refill).
    """

    __slots__ = ("bytes_per_second", "burst_bytes")
    name = "budget"
    _fields = ("bytes_per_second", "burst_bytes")

    def __init__(
        self, *, bytes_per_second: float, burst_bytes: Optional[float] = None
    ) -> None:
        if bytes_per_second <= 0:
            raise ConfigError("write budget needs bytes_per_second > 0")
        if burst_bytes is None:
            burst_bytes = bytes_per_second
        if burst_bytes < BLOCK_SIZE:
            raise ConfigError(
                "write-budget burst must cover at least one %d-byte block"
                % BLOCK_SIZE
            )
        object.__setattr__(self, "bytes_per_second", float(bytes_per_second))
        object.__setattr__(self, "burst_bytes", float(burst_bytes))

    def __setattr__(self, key, value):
        raise AttributeError("AdmissionPolicy specs are immutable")

    @property
    def label(self) -> str:
        return "budget:%s/s" % format_bytes(int(self.bytes_per_second))

    def scaled(self, scale: int) -> "WriteBudgetAdmit":
        # A scaled trace moves ``scale``x less data in ``scale``x less
        # simulated time, so the byte *rate* is scale-invariant; only
        # the absolute burst shrinks with the geometry.
        if scale <= 1:
            return self
        return WriteBudgetAdmit(
            bytes_per_second=self.bytes_per_second,
            burst_bytes=max(float(BLOCK_SIZE), self.burst_bytes / scale),
        )

    def controller(self) -> "WriteBudgetController":
        return WriteBudgetController(self)


class AdmissionController:
    """Per-host mutable admission state plus verdict counters.

    ``admit_fill`` is the formal verdict for inserting a *new* block
    into flash; every call is counted, and the invariant suite checks
    ``checks == admits + rejects`` and that the flash store's lifetime
    insertions never exceed ``admits``.
    """

    __slots__ = ("spec", "checks", "admits", "rejects")
    #: True when the RAM store must maintain the per-block ref ledger
    needs_ref_ledger = False

    def __init__(self, spec: AdmissionPolicy) -> None:
        self.spec = spec
        self.checks = 0
        self.admits = 0
        self.rejects = 0

    def admit_fill(self, block: int, refs: int, now: int) -> bool:
        """Verdict for filling ``block`` (RAM ref count ``refs``) into
        flash at simulated time ``now``."""
        raise NotImplementedError

    def promote_on_hit(self, refs: int) -> bool:
        """Cheap pre-check on the RAM hit path: should this hit attempt
        a flash promotion?  (The attempt still goes through
        :meth:`admit_fill` for the counted verdict.)"""
        return False

    def note_update(self, now: int) -> None:
        """An update of an already-resident flash block happened."""

    def counters(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "admits": self.admits,
            "rejects": self.rejects,
        }

    def _admit(self) -> bool:
        self.checks += 1
        self.admits += 1
        return True

    def _reject(self) -> bool:
        self.checks += 1
        self.rejects += 1
        return False


class ProbationaryController(AdmissionController):
    __slots__ = ("_min_refs",)
    needs_ref_ledger = True

    def __init__(self, spec: ProbationaryAdmit) -> None:
        super().__init__(spec)
        self._min_refs = spec.min_refs

    def admit_fill(self, block: int, refs: int, now: int) -> bool:
        if refs >= self._min_refs:
            return self._admit()
        return self._reject()

    def promote_on_hit(self, refs: int) -> bool:
        return refs >= self._min_refs


class WriteBudgetController(AdmissionController):
    __slots__ = ("_tokens", "_last_ns", "_rate_per_ns", "_burst")

    def __init__(self, spec: WriteBudgetAdmit) -> None:
        super().__init__(spec)
        self._burst = spec.burst_bytes
        self._tokens = spec.burst_bytes
        self._last_ns = 0
        self._rate_per_ns = spec.bytes_per_second / SECOND

    def _refill(self, now: int) -> None:
        elapsed = now - self._last_ns
        if elapsed > 0:
            self._tokens = min(
                self._burst, self._tokens + elapsed * self._rate_per_ns
            )
            self._last_ns = now

    def admit_fill(self, block: int, refs: int, now: int) -> bool:
        self._refill(now)
        if self._tokens >= BLOCK_SIZE:
            self._tokens -= BLOCK_SIZE
            return self._admit()
        return self._reject()

    def note_update(self, now: int) -> None:
        # Updates are never blocked, but they consume budget (possibly
        # driving the balance negative and starving future fills).
        self._refill(now)
        self._tokens -= BLOCK_SIZE
