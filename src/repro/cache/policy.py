"""Eviction (replacement) policies for block stores.

The paper fixes LRU ("we use LRU") and explicitly leaves replacement
policy out of its design space; :class:`LRUPolicy` is therefore the
default everywhere.  FIFO and CLOCK are provided for the ablation
benchmarks that quantify how much the paper's conclusions depend on
that choice.

A policy tracks membership order only — the store owns the entries.
All operations are O(1) amortized.

Ordering is kept in plain ``dict`` objects (insertion-ordered since
Python 3.7): a move-to-end is ``d[key] = d.pop(key)``, which benches
faster than ``OrderedDict.move_to_end`` and keeps the per-entry memory
at one compact dict slot — this is the LRU chain the replay hot path
hits once per 4 KB block.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from repro.errors import CacheError


class EvictionPolicy:
    """Interface: maintains an ordering over block keys.

    Subclasses implement the four mutation hooks plus victim selection.
    ``victim(skip)`` returns the best eviction candidate whose key does
    not satisfy ``skip`` (used to honor pinned entries); it returns
    ``None`` only when every tracked key is skipped.
    """

    __slots__ = ()

    def insert(self, key: int) -> None:
        raise NotImplementedError

    def touch(self, key: int) -> None:
        raise NotImplementedError

    def remove(self, key: int) -> None:
        raise NotImplementedError

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[int]:
        """Iterate keys from eviction-candidate end to most-protected end."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Least-recently-used ordering — the paper's single LRU chain.

    Built on an insertion-ordered ``dict``: the front is the LRU end,
    and a touch re-inserts the key at the MRU end.
    """

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: Dict[int, None] = {}

    def insert(self, key: int) -> None:
        if key in self._order:
            raise CacheError("LRU insert of already-present key %d" % key)
        self._order[key] = None

    def touch(self, key: int) -> None:
        order = self._order
        order[key] = order.pop(key)

    def remove(self, key: int) -> None:
        del self._order[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        if skip is None:
            return next(iter(self._order), None)
        for key in self._order:
            if not skip(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)


class FIFOPolicy(EvictionPolicy):
    """First-in-first-out: insertion order, never reordered by touches."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: Dict[int, None] = {}

    def insert(self, key: int) -> None:
        if key in self._order:
            raise CacheError("FIFO insert of already-present key %d" % key)
        self._order[key] = None

    def touch(self, key: int) -> None:
        # FIFO ignores reuse.
        if key not in self._order:
            raise CacheError("FIFO touch of absent key %d" % key)

    def remove(self, key: int) -> None:
        del self._order[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        if skip is None:
            return next(iter(self._order), None)
        for key in self._order:
            if not skip(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)


class ClockPolicy(EvictionPolicy):
    """Second-chance (CLOCK) approximation of LRU.

    Entries carry a reference bit set on touch.  Victim selection sweeps
    a circular hand, clearing reference bits until it finds an entry
    with the bit unset (and not skipped).
    """

    __slots__ = ("_refbit",)

    def __init__(self) -> None:
        # Insertion-ordered dict as circular buffer: hand is the front.
        self._refbit: Dict[int, bool] = {}

    def insert(self, key: int) -> None:
        if key in self._refbit:
            raise CacheError("CLOCK insert of already-present key %d" % key)
        self._refbit[key] = False

    def touch(self, key: int) -> None:
        self._refbit[key] = True

    def remove(self, key: int) -> None:
        del self._refbit[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        if not self._refbit:
            return None
        # Two sweeps suffice: the first clears reference bits.
        for _sweep in range(2):
            for _ in range(len(self._refbit)):
                key, referenced = next(iter(self._refbit.items()))
                if (skip is None or not skip(key)) and not referenced:
                    return key
                # Give a second chance (or skip a pinned entry) by
                # rotating it to the back with the bit cleared.
                del self._refbit[key]
                self._refbit[key] = False if not (skip and skip(key)) else referenced
        # Everything was skipped.
        return None

    def __len__(self) -> int:
        return len(self._refbit)

    def __iter__(self) -> Iterator[int]:
        return iter(self._refbit)


class SLRUPolicy(EvictionPolicy):
    """Segmented LRU: a probationary and a protected segment.

    New keys enter the probationary segment; a hit promotes a key to
    the protected segment (demoting the protected LRU back to the
    probationary MRU when the protected segment is full).  Victims come
    from the probationary LRU end first.  Scan-resistant: a one-pass
    sweep never displaces the protected set.

    ``protected_capacity`` bounds the protected segment; the store
    passes a fraction of its capacity via :func:`make_policy`.
    """

    __slots__ = ("protected_capacity", "_probation", "_protected")

    def __init__(self, protected_capacity: int = 64) -> None:
        if protected_capacity < 1:
            raise CacheError("protected capacity must be >= 1")
        self.protected_capacity = protected_capacity
        self._probation: Dict[int, None] = {}
        self._protected: Dict[int, None] = {}

    def insert(self, key: int) -> None:
        if key in self._probation or key in self._protected:
            raise CacheError("SLRU insert of already-present key %d" % key)
        self._probation[key] = None

    def touch(self, key: int) -> None:
        protected = self._protected
        if key in protected:
            protected[key] = protected.pop(key)
            return
        if key not in self._probation:
            raise CacheError("SLRU touch of absent key %d" % key)
        del self._probation[key]
        protected[key] = None
        while len(protected) > self.protected_capacity:
            demoted = next(iter(protected))
            del protected[demoted]
            self._probation[demoted] = None  # back as probationary MRU

    def remove(self, key: int) -> None:
        if key in self._probation:
            del self._probation[key]
        else:
            del self._protected[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        for segment in (self._probation, self._protected):
            for key in segment:
                if skip is None or not skip(key):
                    return key
        return None

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def __iter__(self) -> Iterator[int]:
        yield from self._probation
        yield from self._protected


def _make_policy(name: str, capacity_blocks: int = 0) -> EvictionPolicy:
    """Construct an eviction policy from its name.

    Names: ``lru``, ``fifo``, ``clock``, ``slru`` (80 % protected), or
    ``slru:<fraction>`` with an explicit protected fraction.  The
    store's ``capacity_blocks`` sizes SLRU's protected segment.

    The public entry point is ``repro.policies.get("eviction", name)``;
    this private constructor is what the registry and
    :class:`~repro.cache.store.BlockStore` call.

    >>> type(_make_policy("lru")).__name__
    'LRUPolicy'
    """
    lowered = name.lower()
    if lowered.startswith("slru"):
        fraction = 0.8
        if ":" in lowered:
            try:
                fraction = float(lowered.split(":", 1)[1])
            except ValueError:
                raise CacheError("bad SLRU fraction in %r" % name) from None
        if not 0.0 < fraction < 1.0:
            raise CacheError("SLRU protected fraction must be in (0, 1)")
        protected = max(1, int(capacity_blocks * fraction)) if capacity_blocks else 64
        return SLRUPolicy(protected_capacity=protected)
    factories: Dict[str, Callable[[], EvictionPolicy]] = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
        "clock": ClockPolicy,
    }
    try:
        factory = factories[lowered]
    except KeyError:
        raise CacheError(
            "unknown eviction policy %r (choose from %s, slru[:fraction])"
            % (name, ", ".join(sorted(factories)))
        ) from None
    return factory()


def make_policy(name: str, capacity_blocks: int = 0) -> EvictionPolicy:
    """Deprecated alias for the unified registry.

    Use ``repro.policies.get("eviction", name,
    capacity_blocks=...)`` instead.
    """
    import warnings

    warnings.warn(
        "repro.cache.policy.make_policy is deprecated; use "
        'repro.policies.get("eviction", name, capacity_blocks=...)',
        DeprecationWarning,
        stacklevel=2,
    )
    return _make_policy(name, capacity_blocks)
