"""Eviction (replacement) policies for block stores.

The paper fixes LRU ("we use LRU") and explicitly leaves replacement
policy out of its design space; :class:`LRUPolicy` is therefore the
default everywhere.  FIFO and CLOCK are provided for the ablation
benchmarks that quantify how much the paper's conclusions depend on
that choice.

A policy tracks membership order only — the store owns the entries.
All operations are O(1) amortized.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional

from repro.errors import CacheError


class EvictionPolicy:
    """Interface: maintains an ordering over block keys.

    Subclasses implement the four mutation hooks plus victim selection.
    ``victim(skip)`` returns the best eviction candidate whose key does
    not satisfy ``skip`` (used to honor pinned entries); it returns
    ``None`` only when every tracked key is skipped.
    """

    def insert(self, key: int) -> None:
        raise NotImplementedError

    def touch(self, key: int) -> None:
        raise NotImplementedError

    def remove(self, key: int) -> None:
        raise NotImplementedError

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[int]:
        """Iterate keys from eviction-candidate end to most-protected end."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Least-recently-used ordering — the paper's single LRU chain.

    Built on :class:`collections.OrderedDict`: the front is the LRU end.
    """

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def insert(self, key: int) -> None:
        if key in self._order:
            raise CacheError("LRU insert of already-present key %d" % key)
        self._order[key] = None

    def touch(self, key: int) -> None:
        self._order.move_to_end(key)

    def remove(self, key: int) -> None:
        del self._order[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        if skip is None:
            return next(iter(self._order), None)
        for key in self._order:
            if not skip(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)


class FIFOPolicy(EvictionPolicy):
    """First-in-first-out: insertion order, never reordered by touches."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def insert(self, key: int) -> None:
        if key in self._order:
            raise CacheError("FIFO insert of already-present key %d" % key)
        self._order[key] = None

    def touch(self, key: int) -> None:
        # FIFO ignores reuse.
        if key not in self._order:
            raise CacheError("FIFO touch of absent key %d" % key)

    def remove(self, key: int) -> None:
        del self._order[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        if skip is None:
            return next(iter(self._order), None)
        for key in self._order:
            if not skip(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)


class ClockPolicy(EvictionPolicy):
    """Second-chance (CLOCK) approximation of LRU.

    Entries carry a reference bit set on touch.  Victim selection sweeps
    a circular hand, clearing reference bits until it finds an entry
    with the bit unset (and not skipped).
    """

    def __init__(self) -> None:
        # OrderedDict as circular buffer: hand is the front.
        self._refbit: "OrderedDict[int, bool]" = OrderedDict()

    def insert(self, key: int) -> None:
        if key in self._refbit:
            raise CacheError("CLOCK insert of already-present key %d" % key)
        self._refbit[key] = False

    def touch(self, key: int) -> None:
        self._refbit[key] = True

    def remove(self, key: int) -> None:
        del self._refbit[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        if not self._refbit:
            return None
        # Two sweeps suffice: the first clears reference bits.
        for _sweep in range(2):
            for _ in range(len(self._refbit)):
                key, referenced = next(iter(self._refbit.items()))
                if (skip is None or not skip(key)) and not referenced:
                    return key
                # Give a second chance (or skip a pinned entry) by
                # rotating it to the back with the bit cleared.
                self._refbit.move_to_end(key)
                self._refbit[key] = False if not (skip and skip(key)) else referenced
        # Everything was skipped.
        return None

    def __len__(self) -> int:
        return len(self._refbit)

    def __iter__(self) -> Iterator[int]:
        return iter(self._refbit)


class SLRUPolicy(EvictionPolicy):
    """Segmented LRU: a probationary and a protected segment.

    New keys enter the probationary segment; a hit promotes a key to
    the protected segment (demoting the protected LRU back to the
    probationary MRU when the protected segment is full).  Victims come
    from the probationary LRU end first.  Scan-resistant: a one-pass
    sweep never displaces the protected set.

    ``protected_capacity`` bounds the protected segment; the store
    passes a fraction of its capacity via :func:`make_policy`.
    """

    def __init__(self, protected_capacity: int = 64) -> None:
        if protected_capacity < 1:
            raise CacheError("protected capacity must be >= 1")
        self.protected_capacity = protected_capacity
        self._probation: "OrderedDict[int, None]" = OrderedDict()
        self._protected: "OrderedDict[int, None]" = OrderedDict()

    def insert(self, key: int) -> None:
        if key in self._probation or key in self._protected:
            raise CacheError("SLRU insert of already-present key %d" % key)
        self._probation[key] = None

    def touch(self, key: int) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        if key not in self._probation:
            raise CacheError("SLRU touch of absent key %d" % key)
        del self._probation[key]
        self._protected[key] = None
        while len(self._protected) > self.protected_capacity:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None  # back as probationary MRU

    def remove(self, key: int) -> None:
        if key in self._probation:
            del self._probation[key]
        else:
            del self._protected[key]

    def victim(self, skip: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        for segment in (self._probation, self._protected):
            for key in segment:
                if skip is None or not skip(key):
                    return key
        return None

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def __iter__(self) -> Iterator[int]:
        yield from self._probation
        yield from self._protected


def make_policy(name: str, capacity_blocks: int = 0) -> EvictionPolicy:
    """Construct an eviction policy from its name.

    Names: ``lru``, ``fifo``, ``clock``, ``slru`` (80 % protected), or
    ``slru:<fraction>`` with an explicit protected fraction.  The
    store's ``capacity_blocks`` sizes SLRU's protected segment.

    >>> type(make_policy("lru")).__name__
    'LRUPolicy'
    """
    lowered = name.lower()
    if lowered.startswith("slru"):
        fraction = 0.8
        if ":" in lowered:
            try:
                fraction = float(lowered.split(":", 1)[1])
            except ValueError:
                raise CacheError("bad SLRU fraction in %r" % name) from None
        if not 0.0 < fraction < 1.0:
            raise CacheError("SLRU protected fraction must be in (0, 1)")
        protected = max(1, int(capacity_blocks * fraction)) if capacity_blocks else 64
        return SLRUPolicy(protected_capacity=protected)
    factories: Dict[str, Callable[[], EvictionPolicy]] = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
        "clock": ClockPolicy,
    }
    try:
        factory = factories[lowered]
    except KeyError:
        raise CacheError(
            "unknown eviction policy %r (choose from %s, slru[:fraction])"
            % (name, ", ".join(sorted(factories)))
        ) from None
    return factory()
