"""Per-cache-store statistics.

Counts are split into a warmup phase and a measurement phase exactly as
the paper does ("half of it being devoted to a warmup period for which
statistics are not collected"): the store owner calls
:meth:`CacheStats.reset_for_measurement` at the warmup boundary, which
zeroes the measured counters while the cache contents persist.
"""

from __future__ import annotations

from typing import Dict


class CacheStats:
    """Hit/miss/eviction counters for one :class:`~repro.cache.store.BlockStore`."""

    __slots__ = (
        "lookups",
        "hits",
        "misses",
        "insertions",
        "evictions",
        "dirty_evictions",
        "invalidations",
        "writebacks",
    )

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0
        self.writebacks = 0

    def reset_for_measurement(self) -> None:
        """Zero all counters (called at the warmup/measurement boundary)."""
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        """Total lookups recorded (hits + misses).

        Identical to :attr:`lookups` on a consistent accumulator: every
        lookup is classified as exactly one hit or one miss, an identity
        :meth:`check_consistent` asserts and the runtime invariant suite
        checks per store.  The two counters exist separately so the
        identity is *checkable* — ``lookups`` increments at the top of
        the lookup path, hits/misses on its branches.
        """
        return self.hits + self.misses

    def check_consistent(self) -> None:
        """Raise ``ValueError`` unless hits + misses == lookups."""
        if self.hits + self.misses != self.lookups:
            raise ValueError(
                "inconsistent cache statistics: hits (%d) + misses (%d) "
                "!= lookups (%d)" % (self.hits, self.misses, self.lookups)
            )

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups occurred."""
        total = self.accesses
        if total == 0:
            return 0.0
        return self.hits / total

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict for reporting."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "invalidations": self.invalidations,
            "writebacks": self.writebacks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CacheStats hits=%d misses=%d hit_rate=%.3f>" % (
            self.hits,
            self.misses,
            self.hit_rate,
        )
