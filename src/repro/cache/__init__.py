"""Block-cache substrate: LRU chains, block stores, eviction policies.

The paper models every cache as "a single LRU chain of blocks"; this
package provides that structure (:class:`BlockStore` with the default
:class:`LRUPolicy`) plus the alternative eviction policies (FIFO, CLOCK)
used by the ablation benchmarks, and the per-store statistics the
simulator reports.

Stores are *pure data structures*: they take no simulated time.  The
host stack in :mod:`repro.core.host` orchestrates the latencies around
store operations.
"""

from repro.cache.block import BlockEntry, Medium
from repro.cache.policy import (
    ClockPolicy,
    EvictionPolicy,
    FIFOPolicy,
    LRUPolicy,
    SLRUPolicy,
    make_policy,
)
from repro.cache.store import BlockStore
from repro.cache.stats import CacheStats

__all__ = [
    "BlockEntry",
    "Medium",
    "EvictionPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "SLRUPolicy",
    "make_policy",
    "BlockStore",
    "CacheStats",
]
