"""The block store: a fixed-capacity cache of 4 KB blocks.

One :class:`BlockStore` models one cache tier ("a single LRU chain of
blocks").  It is a pure data structure — every operation is immediate;
the host stack charges device latencies around calls to it.

Key design points:

* **Eviction is two-phase.**  ``pop_victim`` removes and returns the
  victim entry; if it is dirty the *caller* performs the (simulated-
  time) writeback before filling the freed buffer.  The victim leaves
  the index immediately, so concurrent simulation threads never race on
  a half-evicted block — a re-reference simply misses and refetches,
  which is what a real cache with a locked-for-eviction buffer does.
* **Pinning** lets the naive/lookaside host stacks keep the flash cache
  a superset of the RAM cache: flash entries for RAM-resident blocks
  are pinned and skipped during victim selection.
* **Dirty tracking** maintains an explicit dirty set so the periodic
  syncer can snapshot dirty blocks in O(dirty).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Union

from repro.cache.block import BlockEntry, Medium
from repro.cache.policy import EvictionPolicy, _make_policy
from repro.cache.stats import CacheStats
from repro.errors import CacheError


class BlockStore:
    """A fixed-capacity block cache with pluggable eviction policy."""

    __slots__ = (
        "capacity_blocks",
        "name",
        "_entries",
        "_dirty",
        "lifetime_insertions",
        "lifetime_departures",
        "_policy",
        "stats",
        "_pinned",
        "_touch",
        "_refs",
        "obs_hook",
    )

    def __init__(
        self,
        capacity_blocks: int,
        policy: Union[str, EvictionPolicy] = "lru",
        name: str = "",
    ) -> None:
        if capacity_blocks < 0:
            raise CacheError("capacity must be >= 0, got %d" % capacity_blocks)
        self.capacity_blocks = capacity_blocks
        self.name = name
        entries: Dict[int, BlockEntry] = {}
        self._entries = entries
        self._dirty: Set[int] = set()
        # Lifetime occupancy accounting, never reset at the warmup
        # boundary (unlike ``stats``): the invariant checkers verify
        # insertions - departures == occupancy over the store's life.
        self.lifetime_insertions = 0
        self.lifetime_departures = 0
        if isinstance(policy, str):
            policy = _make_policy(policy, capacity_blocks)
        self._policy = policy
        self.stats = CacheStats()
        # Persistent victim-selection predicate: ``_entries`` is never
        # rebound, so one closure serves every pop_victim call instead
        # of allocating fresh closures on the eviction hot path.
        self._pinned = lambda key: entries[key].pinned
        # Bound-method shortcut for the per-lookup promote (the policy
        # never changes after construction).
        self._touch = self._policy.touch
        #: per-block reference ledger for probationary flash admission;
        #: None (and zero-cost) unless :meth:`enable_ref_ledger` ran.
        self._refs: Optional[Dict[int, int]] = None
        #: observability sink (a repro.obs StoreObserver); None when
        #: tracing is off, so the eviction/invalidation/writeback paths
        #: pay one branch each.
        self.obs_hook = None

    # --- lookup ------------------------------------------------------

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, block: int, touch: bool = True) -> Optional[BlockEntry]:
        """Look up a block, recording a hit or miss.

        ``touch=True`` (the default) promotes the entry in the eviction
        order, modeling a reference.
        """
        stats = self.stats
        stats.lookups += 1
        entry = self._entries.get(block)
        if entry is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if touch:
            self._touch(block)
        return entry

    def peek(self, block: int) -> Optional[BlockEntry]:
        """Look up without touching the eviction order or the statistics."""
        return self._entries.get(block)

    # --- insertion and eviction ---------------------------------------

    def is_full(self) -> bool:
        """True when the next insert needs an eviction first."""
        return len(self._entries) >= self.capacity_blocks

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - len(self._entries)

    def put(
        self,
        block: int,
        medium: Medium = Medium.RAM,
        dirty: bool = False,
        pinned: bool = False,
    ) -> BlockEntry:
        """Insert a new entry; there must be space and no duplicate.

        Callers evict first (``pop_victim``) when :meth:`is_full`.
        """
        if block in self._entries:
            raise CacheError("%s: duplicate insert of block %d" % (self.name, block))
        if len(self._entries) >= self.capacity_blocks:
            raise CacheError(
                "%s: insert into full store (capacity %d); evict first"
                % (self.name, self.capacity_blocks)
            )
        entry = BlockEntry(block, medium=medium, dirty=dirty, pinned=pinned)
        self._entries[block] = entry
        self._policy.insert(block)
        if dirty:
            self._dirty.add(block)
        self.stats.insertions += 1
        self.lifetime_insertions += 1
        return entry

    def pop_victim(
        self, skip: Optional[Callable[[int], bool]] = None
    ) -> Optional[BlockEntry]:
        """Remove and return the eviction victim.

        Pinned entries are always skipped; ``skip`` adds further
        exclusions.  When every entry is excluded the exclusions are
        relaxed in order of severity — ``skip`` first (it is advisory),
        pinning only after *all* unpinned entries are exhausted
        (evicting a pinned entry beats deadlock, but it is strictly the
        last resort).  ``None`` is returned only for an empty store.
        """
        policy = self._policy
        pinned = self._pinned
        if skip is None:
            victim = policy.victim(pinned)
        else:
            entries = self._entries
            victim = policy.victim(
                lambda key: entries[key].pinned or skip(key)
            )
            if victim is None:
                # Every unpinned entry was skip-excluded: prefer
                # overriding the skip filter over evicting a pinned
                # entry.
                victim = policy.victim(pinned)
        if victim is None:
            victim = policy.victim(skip)
            if victim is None:
                victim = policy.victim(None)
                if victim is None:
                    return None
        entry = self._remove_entry(victim)
        self.stats.evictions += 1
        if entry.dirty:
            self.stats.dirty_evictions += 1
        hook = self.obs_hook
        if hook is not None:
            hook.evicted(entry.block, entry.dirty)
        return entry

    def remove(self, block: int, invalidation: bool = False) -> Optional[BlockEntry]:
        """Drop a block (e.g. on cross-host invalidation); None if absent."""
        if block not in self._entries:
            return None
        entry = self._remove_entry(block)
        if invalidation:
            self.stats.invalidations += 1
            hook = self.obs_hook
            if hook is not None:
                hook.invalidated(block)
        return entry

    def _remove_entry(self, block: int) -> BlockEntry:
        entry = self._entries.pop(block)
        self._policy.remove(block)
        self._dirty.discard(block)
        if self._refs is not None:
            # Probation resets on departure: a block evicted from this
            # tier must re-earn its references after re-insertion.
            self._refs.pop(block, None)
        self.lifetime_departures += 1
        return entry

    def clear(self) -> None:
        """Empty the store (models a crash of a volatile cache)."""
        for block in list(self._entries):
            self._remove_entry(block)

    # --- dirty management ---------------------------------------------

    def mark_dirty(self, block: int) -> None:
        entry = self._entries[block]
        entry.dirty = True
        self._dirty.add(block)

    def mark_clean(self, block: int) -> None:
        """Mark a block clean, counting a writeback only on the
        dirty-to-clean transition (a redundant pass over an already
        clean block wrote nothing back)."""
        entry = self._entries.get(block)
        if entry is None or not entry.dirty:
            return
        entry.dirty = False
        self._dirty.discard(block)
        self.stats.writebacks += 1
        hook = self.obs_hook
        if hook is not None:
            hook.wrote_back(block)

    def dirty_blocks(self) -> List[int]:
        """Snapshot of currently dirty block numbers (syncer input)."""
        return list(self._dirty)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    # --- reference ledger ----------------------------------------------

    def enable_ref_ledger(self) -> None:
        """Track per-block reference counts for probationary admission.

        Off (and zero-cost: ``_touch`` stays the raw policy method) by
        default.  When enabled, every touching :meth:`get` hit counts
        one reference; the count resets when the block leaves the store
        (see :meth:`_remove_entry`).  Idempotent.
        """
        if self._refs is not None:
            return
        refs: Dict[int, int] = {}
        self._refs = refs
        policy_touch = self._policy.touch

        def touch_and_count(block: int) -> None:
            refs[block] = refs.get(block, 0) + 1
            policy_touch(block)

        self._touch = touch_and_count

    def ref_count(self, block: int) -> int:
        """References since insertion (0 when absent or ledger off)."""
        refs = self._refs
        if refs is None:
            return 0
        return refs.get(block, 0)

    # --- pinning -------------------------------------------------------

    def pin(self, block: int) -> None:
        """Protect a block from eviction (no-op if absent)."""
        entry = self._entries.get(block)
        if entry is not None:
            entry.pinned = True

    def unpin(self, block: int) -> None:
        entry = self._entries.get(block)
        if entry is not None:
            entry.pinned = False

    # --- introspection --------------------------------------------------

    def blocks(self) -> Iterator[int]:
        """Iterate resident block numbers in eviction order (LRU first)."""
        return iter(self._policy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<BlockStore %s %d/%d dirty=%d>" % (
            self.name,
            len(self._entries),
            self.capacity_blocks,
            len(self._dirty),
        )
