"""Block identifiers and cache-entry records.

A *block* is a 4 KB unit of file data.  Traces address blocks by
``(file, offset)``; the trace layer flattens these to a single global
integer block number (see :mod:`repro.traces.records`), so throughout
the simulator a block id is just an ``int``.
"""

from __future__ import annotations

import enum


class Medium(enum.Enum):
    """The physical medium backing a cache buffer.

    Only the unified architecture mixes media inside one store; the
    naive and lookaside architectures use one store per medium.
    """

    RAM = "ram"
    FLASH = "flash"

    def __str__(self) -> str:
        return self.value


class BlockEntry:
    """Metadata for one cached block.

    Attributes:
        block:  global block number.
        medium: which physical store holds the buffer.
        dirty:  True when the cached copy is newer than the next tier.
        pinned: True while the host stack forbids evicting this entry
                (used to keep the RAM cache a subset of the flash cache
                in the naive/lookaside architectures).
    """

    __slots__ = ("block", "medium", "dirty", "pinned")

    def __init__(
        self,
        block: int,
        medium: Medium = Medium.RAM,
        dirty: bool = False,
        pinned: bool = False,
    ) -> None:
        self.block = block
        self.medium = medium
        self.dirty = dirty
        self.pinned = pinned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, present in (("D", self.dirty), ("P", self.pinned))
            if present
        )
        return "<BlockEntry %d %s %s>" % (self.block, self.medium, flags or "-")
