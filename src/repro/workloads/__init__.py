"""Canonical workload scenarios from the paper's motivation (§1).

"There are many examples of such servers: application servers in
three-tier web applications, compute servers in data centers, render
farms used in animation, and compute nodes in scientific computation
clusters all fit this model."

The paper evaluates one stochastic workload shape (§4); this package
provides trace generators for the four motivating scenarios, each with
a distinct access structure the §4 generator cannot express:

* :func:`web_app_server`   — Zipf-skewed small random reads, session
  writes (the §4 shape tuned read-hot);
* :func:`render_farm`      — streaming sequential reads of large scene
  assets plus bursts of frame-output writes;
* :func:`scientific_compute` — sequential input sweeps punctuated by
  periodic full-working-set checkpoint write bursts;
* :func:`data_center_mixed` — a merge of the above on separate hosts
  sharing one filer.

All return :class:`repro.traces.Trace` objects ready for
:func:`repro.run_simulation`.
"""

from repro.workloads.scenarios import (
    WorkloadSpec,
    data_center_mixed,
    render_farm,
    scientific_compute,
    web_app_server,
)

__all__ = [
    "WorkloadSpec",
    "web_app_server",
    "render_farm",
    "scientific_compute",
    "data_center_mixed",
]
