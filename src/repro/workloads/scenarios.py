"""The four motivating workload scenarios.

Each scenario builds its own file population (shaped for the domain)
and emits records with the domain's access structure.  Block sizes,
host/thread conventions, and the warmup-half convention all match the
paper's trace model, so any scenario drops into any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro._units import KB, MB, blocks_for_bytes
from repro.engine.rng import RngStreams
from repro.errors import ConfigError
from repro.fsmodel.distributions import WeightedSampler, poisson_sample, zipf_popularity
from repro.fsmodel.files import FileSpec, FileSystemModel
from repro.traces.records import Trace, TraceOp, TraceRecord
from repro.traces.tools import merge_traces


@dataclass(frozen=True)
class WorkloadSpec:
    """Common knobs shared by every scenario generator."""

    #: total data volume the trace moves (drives the record count)
    volume_bytes: int = 32 * MB
    threads: int = 8
    warmup_fraction: float = 0.5
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.volume_bytes <= 0:
            raise ConfigError("volume must be positive")
        if self.threads < 1:
            raise ConfigError("need at least one thread")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup fraction must be in [0, 1)")


def _finish(records: List[TraceRecord], model: FileSystemModel, spec: WorkloadSpec, name: str) -> Trace:
    """Apply the warmup convention and wrap into a Trace."""
    # The warmup fraction applies to the volume actually produced
    # (bursty scenarios overshoot the requested volume slightly).
    actual_total = sum(record.nblocks for record in records)
    cumulative = 0
    warmup = 0
    warmup_target = int(actual_total * spec.warmup_fraction)
    for record in records:
        if cumulative < warmup_target:
            warmup += 1
        cumulative += record.nblocks
    return Trace(
        records,
        model.file_blocks(),
        warmup_records=warmup,
        metadata={"scenario": name, "seed": str(spec.seed)},
    )


# --- web application server -------------------------------------------------


def web_app_server(
    spec: WorkloadSpec = WorkloadSpec(),
    n_objects: int = 2000,
    object_mean_kb: int = 24,
    write_fraction: float = 0.10,
) -> Trace:
    """A three-tier web app's storage tier: Zipf-hot small objects.

    Mostly-random small reads with strong popularity skew (sessions,
    templates, thumbnails) and a light stream of session-state writes.
    """
    rng = RngStreams(spec.seed).stream("web")
    files = []
    for file_id in range(n_objects):
        blocks = max(1, poisson_sample(rng, object_mean_kb * KB / 4096))
        # strong skew: a few very hot objects (sessions, templates)
        files.append(FileSpec(file_id, blocks, zipf_popularity(rng, 64, 1.1)))
    model = FileSystemModel(files)
    sampler = WeightedSampler(model.popularities())

    records: List[TraceRecord] = []
    target = blocks_for_bytes(spec.volume_bytes)
    produced = 0
    while produced < target:
        spec_file = model[sampler.sample(rng)]
        length = min(spec_file.blocks, max(1, poisson_sample(rng, 2.0)))
        start = rng.randrange(spec_file.blocks - length + 1)
        op = TraceOp.WRITE if rng.random() < write_fraction else TraceOp.READ
        records.append(
            TraceRecord(op, 0, rng.randrange(spec.threads), spec_file.file_id, start, length)
        )
        produced += length
    return _finish(records, model, spec, "web_app_server")


# --- render farm -----------------------------------------------------------------


def render_farm(
    spec: WorkloadSpec = WorkloadSpec(),
    n_assets: int = 24,
    asset_mb: int = 2,
    frame_kb: int = 256,
    frames_per_asset_pass: int = 4,
) -> Trace:
    """A render node: stream big scene assets, write out frames.

    Each "pass" reads one asset sequentially (large sequential reads —
    friendly to the filer's prefetcher and to any cache big enough to
    hold the asset set), then writes a handful of output frames.
    """
    rng = RngStreams(spec.seed).stream("render")
    asset_blocks = blocks_for_bytes(asset_mb * MB)
    frame_blocks = blocks_for_bytes(frame_kb * KB)
    files = [FileSpec(i, asset_blocks, 1) for i in range(n_assets)]
    # output files, one per thread, sized for many frames
    output_capacity = frame_blocks * 512
    for thread in range(spec.threads):
        files.append(FileSpec(n_assets + thread, output_capacity, 1))
    model = FileSystemModel(files)

    records: List[TraceRecord] = []
    target = blocks_for_bytes(spec.volume_bytes)
    produced = 0
    frame_cursor = [0] * spec.threads
    io_blocks = 16  # large sequential read chunks (64 KB)
    while produced < target:
        thread = rng.randrange(spec.threads)
        asset = rng.randrange(n_assets)
        for start in range(0, asset_blocks, io_blocks):
            length = min(io_blocks, asset_blocks - start)
            records.append(
                TraceRecord(TraceOp.READ, 0, thread, asset, start, length)
            )
            produced += length
        for _frame in range(frames_per_asset_pass):
            start = frame_cursor[thread]
            if start + frame_blocks > output_capacity:
                frame_cursor[thread] = 0
                start = 0
            records.append(
                TraceRecord(
                    TraceOp.WRITE, 0, thread, n_assets + thread, start, frame_blocks
                )
            )
            frame_cursor[thread] += frame_blocks
            produced += frame_blocks
    return _finish(records, model, spec, "render_farm")


# --- scientific compute ------------------------------------------------------------


def scientific_compute(
    spec: WorkloadSpec = WorkloadSpec(),
    dataset_mb: int = 16,
    checkpoint_mb: int = 4,
    sweeps_per_checkpoint: int = 2,
) -> Trace:
    """A compute node: input sweeps punctuated by checkpoint bursts.

    Repeats: read a contiguous slice of the input dataset (sequential,
    cache-friendly once resident), every few sweeps dump a checkpoint —
    a dense burst of large writes, the pattern that stresses writeback
    policies (§7.6's high-write-rate regime, but bursty).
    """
    rng = RngStreams(spec.seed).stream("hpc")
    dataset_blocks = blocks_for_bytes(dataset_mb * MB)
    checkpoint_blocks = blocks_for_bytes(checkpoint_mb * MB)
    files = [
        FileSpec(0, dataset_blocks, 1),
        FileSpec(1, checkpoint_blocks * 4, 1),  # rotating checkpoint area
    ]
    model = FileSystemModel(files)

    records: List[TraceRecord] = []
    target = blocks_for_bytes(spec.volume_bytes)
    produced = 0
    sweep = 0
    checkpoint_slot = 0
    io_blocks = 32  # 128 KB sequential chunks
    # Size sweep slices so a run of the requested volume contains
    # several sweeps (and hence several checkpoints) regardless of how
    # the dataset size and volume compare.
    slice_blocks = max(
        io_blocks,
        min(dataset_blocks // 8, target // (8 * spec.threads) or io_blocks),
    )
    while produced < target:
        # one sweep: each thread reads a slice of the dataset
        for thread in range(spec.threads):
            base = rng.randrange(max(1, dataset_blocks - slice_blocks + 1))
            for start in range(base, base + slice_blocks, io_blocks):
                length = min(io_blocks, dataset_blocks - start)
                if length <= 0:
                    break
                records.append(TraceRecord(TraceOp.READ, 0, thread, 0, start, length))
                produced += length
        sweep += 1
        if sweep % sweeps_per_checkpoint == 0:
            base = (checkpoint_slot % 4) * checkpoint_blocks
            checkpoint_slot += 1
            for start in range(base, base + checkpoint_blocks, io_blocks):
                length = min(io_blocks, base + checkpoint_blocks - start)
                thread = rng.randrange(spec.threads)
                records.append(TraceRecord(TraceOp.WRITE, 0, thread, 1, start, length))
                produced += length
    return _finish(records, model, spec, "scientific_compute")


# --- combined data center ----------------------------------------------------------


def data_center_mixed(spec: WorkloadSpec = WorkloadSpec()) -> Trace:
    """Three heterogeneous hosts sharing one filer: web + render + HPC.

    The consolidation scenario the paper's deployment model implies —
    each host gets its own flash cache, the filer sees all three.
    """
    per_host = WorkloadSpec(
        volume_bytes=spec.volume_bytes // 3 or spec.volume_bytes,
        threads=spec.threads,
        warmup_fraction=spec.warmup_fraction,
        seed=spec.seed,
    )
    return merge_traces(
        [
            web_app_server(per_host),
            render_farm(per_host),
            scientific_compute(per_host),
        ]
    )
