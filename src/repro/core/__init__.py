"""The client cache stack and simulation driver — the paper's contribution.

This package assembles the substrates into the system the paper
studies: per-host RAM + flash caches in one of three architectures
(:class:`Architecture`), each tier governed by one of seven writeback
policies (:class:`WritebackPolicy`), connected over private network
segments to a shared filer, with a global instant-invalidation
consistency directory.

Entry point: :func:`run_simulation`, which replays a
:class:`~repro.traces.Trace` under a :class:`SimConfig` and returns
:class:`SimulationResults`.
"""

from repro.core.architectures import Architecture
from repro.core.policies import PolicyKind, WritebackPolicy
from repro.core.config import SimConfig, TimingModel
from repro.core.restart import RestartSpec
from repro.core.results import SimulationResults
from repro.core.simulator import run_simulation

__all__ = [
    "Architecture",
    "PolicyKind",
    "WritebackPolicy",
    "SimConfig",
    "TimingModel",
    "RestartSpec",
    "SimulationResults",
    "run_simulation",
]
