"""The three cache architectures of §3.3.

* **Naive** — "The flash cache is treated as an independent cache layer
  beneath the RAM cache; the RAM cache is always a subset of the flash
  cache, requiring no integrated management."
* **Lookaside** — "Based on Mercury, writes go directly from RAM to the
  file server instead of being routed through the flash.  The flash is
  updated after the file server and never contains dirty data. [...]
  The RAM cache is a subset of the flash cache."
* **Unified** — "RAM and flash are managed together using a single LRU
  chain.  Data blocks are placed into the least recently used buffer,
  whether RAM or flash, and are never migrated.  No attempt is made to
  prefer RAM to flash.  Here the RAM cache is not a subset of the
  flash, so integrated management is needed."
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError


class Architecture(enum.Enum):
    """Flash–RAM integration and placement choice (§3.1–§3.3).

    ``EXCLUSIVE`` is an extension: §3.2 sketches (without evaluating)
    an alternative placement that would "place blocks initially into
    RAM and then migrate less recently (or less frequently) used blocks
    down to flash".  Blocks live in exactly one tier: fills land in
    RAM, RAM evictions demote to flash, flash hits promote back to RAM.
    """

    NAIVE = "naive"
    LOOKASIDE = "lookaside"
    UNIFIED = "unified"
    EXCLUSIVE = "exclusive"

    def __str__(self) -> str:
        return self.value

    @property
    def ram_is_subset_of_flash(self) -> bool:
        """Whether the architecture keeps RAM contents duplicated in flash."""
        return self in (Architecture.NAIVE, Architecture.LOOKASIDE)

    @property
    def needs_integrated_management(self) -> bool:
        """Whether the OS buffer manager must manage the flash (§3.1)."""
        return self in (Architecture.UNIFIED, Architecture.EXCLUSIVE)

    @classmethod
    def parse(cls, name: str) -> "Architecture":
        """Parse an architecture name, case-insensitively.

        >>> Architecture.parse("Naive")
        <Architecture.NAIVE: 'naive'>
        """
        try:
            return cls(name.lower())
        except ValueError:
            raise ConfigError(
                "unknown architecture %r (choose from %s)"
                % (name, ", ".join(a.value for a in cls))
            ) from None
