"""The simulated machine: hosts, network segments, filer, directory.

:class:`System` wires the substrates together for one configuration and
replays a trace through them: one simulation process per (host, thread)
pair, each issuing its records in order with at most one I/O in flight
("the simulator issues I/O requests from the trace as quickly as
possible given that each application thread can have only one I/O in
progress").
"""

from __future__ import annotations

import gc
from typing import Dict, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.consistency import ConsistencyDirectory
from repro.core.restart import RestartSpec
from repro.core.host import HostStack, build_host_stack
from repro.core.metrics import MetricsCollector
from repro.engine.rng import RngStreams
from repro.engine.simulation import Simulator
from repro.filer.server import Filer
from repro.flash.device import FlashDevice
from repro.flash.ftl_device import FTLFlashDevice
from repro.invariants import build_suite, resolve_enabled
from repro.net.link import NetworkSegment
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.compiled import CompiledTrace
from repro.traces.records import Trace, TraceRecord


class System:
    """One simulated deployment: N hosts sharing one filer.

    ``restart`` (a :class:`~repro.core.restart.RestartSpec`) crashes or
    reboots every host's caches at the warmup/measurement boundary, so
    the measured phase runs against freshly-lost RAM and a lost or
    recovering flash cache.

    ``check_invariants`` attaches the :mod:`repro.invariants` sanitizer
    to the replay; ``None`` defers to ``config.check_invariants`` and
    the ``REPRO_CHECK_INVARIANTS`` environment variable.
    """

    def __init__(
        self,
        config: SimConfig,
        n_hosts: int,
        restart: Optional["RestartSpec"] = None,
        timeline_bucket_ns: Optional[int] = None,
        check_invariants: Optional[bool] = None,
        obs: Optional[object] = None,
    ) -> None:
        if n_hosts < 1:
            n_hosts = 1
        self.config = config
        self.n_hosts = n_hosts
        self.restart = restart
        self._timeline_bucket_ns = timeline_bucket_ns
        self.sim = Simulator()
        # Observability: an explicit Observation wins; otherwise
        # config.trace_events creates one internally (the sweep path).
        # When attached, hosts are built from the instrumented stack
        # classes — the plain classes stay untouched, so a run without
        # an observation takes none of the traced code paths.
        if obs is None and config.trace_events:
            from repro.obs import Observation

            obs = Observation()
        self.obs = obs
        if obs is not None:
            from repro.obs.instrument import build_obs_host_stack as _build_stack
        else:
            _build_stack = build_host_stack
        streams = RngStreams(config.seed)
        self.filer = Filer(self.sim, streams.stream("filer"), config.timing.filer)
        self.directory = ConsistencyDirectory(n_hosts)
        self.segments: List[NetworkSegment] = []
        self.flash_devices: List[Optional[FlashDevice]] = []
        self.hosts: List[HostStack] = []
        for host_id in range(n_hosts):
            segment = NetworkSegment(
                self.sim, config.timing.network, name="net.h%d" % host_id
            )
            device: Optional[FlashDevice] = None
            if config.has_flash:
                if config.ftl_model:
                    device = FTLFlashDevice(
                        self.sim,
                        capacity_blocks=config.flash_blocks,
                        timing=config.timing.flash,
                        persistent_metadata=config.persistent_flash,
                        overprovision=config.ftl_overprovision,
                        rated_erase_cycles=config.ftl_rated_erase_cycles,
                        name="flash.h%d" % host_id,
                    )
                else:
                    device = FlashDevice(
                        self.sim,
                        config.timing.flash,
                        parallelism=config.flash_parallelism,
                        persistent_metadata=config.persistent_flash,
                        name="flash.h%d" % host_id,
                    )
            stack = _build_stack(
                self.sim,
                host_id,
                config,
                device,
                segment,
                self.filer,
                self.directory,
                streams.stream("host", host_id),
            )
            self.segments.append(segment)
            self.flash_devices.append(device)
            self.hosts.append(stack)
        if obs is not None:
            from repro.obs.instrument import attach_observation

            attach_observation(self, obs)
        self.invalidation_messages = 0
        if config.model_invalidation_traffic:
            self.directory.traffic_hook = self._send_invalidation_message
        self.metrics = MetricsCollector(timeline_bucket_ns=timeline_bucket_ns)
        self.metrics.measuring = True  # the replay driver gates on warmup
        # Per-host collectors: consolidation workloads (different
        # scenarios per host) need per-host latency, not just the fleet
        # aggregate.
        self.host_metrics: List[MetricsCollector] = []
        for _ in range(n_hosts):
            collector = MetricsCollector()
            collector.measuring = True
            self.host_metrics.append(collector)
        self._blocks_until_measurement = 0
        self._active_threads = 0
        self._measurement_started_at: Optional[int] = None
        self.check_invariants = resolve_enabled(check_invariants, config)
        self.invariants = build_suite(self) if self.check_invariants else None
        self._records_since_check = 0

    def _send_invalidation_message(self, _writer_host: int, victim_host: int) -> None:
        """Occupy the victim's filer→host wire with one notification
        packet (the invalidation itself stays instant, as in the paper;
        only the traffic's contention is added)."""
        from repro.net.packet import Packet

        self.invalidation_messages += 1
        self.sim.spawn(
            self.segments[victim_host].transfer(Packet.request(), "down"),
            name="inval-msg.h%d" % victim_host,
        )

    # --- warmup boundary ------------------------------------------------
    #
    # Application metrics and invalidation counts are gated per record
    # (a record is warmup iff its index precedes trace.warmup_records).
    # The *global* statistics that cannot be attributed to single
    # records — cache hit counters, device/filer/network traffic — are
    # reset once the replay has completed a warmup's worth of block
    # volume.  Threads interleave uniformly, so that moment corresponds
    # to the paper's "half of the volume is warmup" boundary.

    def _record_completed(self, nblocks: int) -> None:
        if self.invariants is not None:
            # Record boundaries are safe check points: every simulation
            # process (this thread included) is suspended at a yield.
            self._records_since_check += 1
            if self._records_since_check >= self.config.invariant_check_interval:
                self._records_since_check = 0
                self.invariants.check()
        if self._measurement_started_at is not None:
            return
        self._blocks_until_measurement -= nblocks
        if self._blocks_until_measurement <= 0:
            self._begin_measurement()

    def _begin_measurement(self) -> None:
        """Reset everything that reports measurement-phase statistics."""
        self._measurement_started_at = self.sim.now
        if self.restart is not None:
            for host in self.hosts:
                host.apply_restart(
                    self.restart.volatile_flash, self.restart.scan_ns_per_block
                )
        self.metrics.begin_measurement(self.sim.now)
        self.filer.reset_counters()
        for host in self.hosts:
            host.reset_measurement_stats()
        for device in self.flash_devices:
            if device is not None:
                device.reset_counters()
        for segment in self.segments:
            segment.reset_counters()

    # --- replay -----------------------------------------------------------

    def replay(self, trace) -> None:
        """Replay the whole trace (``Trace``, ``CompiledTrace``, or
        ``ChunkedCompiledTrace``) to completion.  Compiled traces —
        in-memory or chunked/spooled — take the packed-column hot loop
        (chunked ones feed it lazy row streams, so peak memory stays
        bounded by chunk size); the instrumented (observability) path
        needs record objects, so a compiled trace is materialized first
        when tracing is on.
        """
        if isinstance(trace, (CompiledTrace, ChunkedCompiledTrace)):
            if self.obs is not None:
                trace = trace.to_trace()
            else:
                self._replay_compiled(trace)
                return
        groups = trace.split_by_issuer()
        self._blocks_until_measurement = sum(
            record.nblocks for record in trace.records[: trace.warmup_records]
        )
        if self._blocks_until_measurement == 0:
            self._begin_measurement()
        self._active_threads = len(groups)
        for (host_id, thread_id), items in sorted(groups.items()):
            if host_id >= self.n_hosts:
                raise ValueError(
                    "trace references host %d but the system has %d hosts"
                    % (host_id, self.n_hosts)
                )
            if self.obs is not None:
                process = self._thread_process_obs(
                    trace, self.hosts[host_id], items, thread_id
                )
            else:
                process = self._thread_process(trace, self.hosts[host_id], items)
            self.sim.spawn(process, name="app.h%d" % host_id)
        for host in self.hosts:
            # Syncers keep ticking while application threads are live and
            # wind down afterwards, letting the event queue drain.
            host.keep_running = lambda: self._active_threads > 0
            host.start_syncers()
        self.sim.run()
        if self.invariants is not None:
            self.invariants.final()

    def _replay_compiled(self, trace) -> None:
        """Compiled-trace twin of :meth:`replay` (keep in sync): same
        spawn order, same warmup accounting, bit-identical results.
        ``trace`` is a ``CompiledTrace`` or ``ChunkedCompiledTrace``;
        both expose the same ``issuer_plan()``/``warmup_blocks()``
        contract, differing only in whether the row containers are
        materialized lists or bounded streaming reads.

        Eligible configurations take the table-driven compiled kernel
        (:mod:`repro.engine.compiled`) instead of spawning generator
        processes; it replays bit-identically (the differential gates
        compare the two every CI run) and exists purely for speed.
        ``REPRO_COMPILE_KERNEL=0`` forces the generator path."""
        from repro.engine.compiled import kernel_eligible, replay_compiled_kernel

        if kernel_eligible(self):
            replay_compiled_kernel(self, trace)
            return
        plan = trace.issuer_plan()
        self._blocks_until_measurement = trace.warmup_blocks()
        if self._blocks_until_measurement == 0:
            self._begin_measurement()
        self._active_threads = len(plan)
        for host_id, _thread_id, warmup_rows, measured_rows in plan:
            if host_id >= self.n_hosts:
                raise ValueError(
                    "trace references host %d but the system has %d hosts"
                    % (host_id, self.n_hosts)
                )
            self.sim.spawn(
                self._thread_process_compiled(
                    self.hosts[host_id], warmup_rows, measured_rows
                ),
                name="app.h%d" % host_id,
            )
        for host in self.hosts:
            host.keep_running = lambda: self._active_threads > 0
            host.start_syncers()
        # The replay loop's allocations (generator frames, event-heap
        # tuples) are acyclic and die by reference counting, so cyclic
        # collections during the run only re-scan the stable simulation
        # heap — a few thousand times on a million-record trace.  Pause
        # the collector for the duration; any stray cycle is picked up
        # by the first collection after re-enabling.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.sim.run()
        finally:
            if gc_was_enabled:
                gc.enable()
        if self.invariants is not None:
            self.invariants.final()

    def _thread_process_compiled(
        self,
        stack: HostStack,
        warmup_rows,
        measured_rows,
    ):
        """One application thread over packed rows — the compiled twin
        of :meth:`_thread_process` (keep in sync).

        The row containers are any re-iterable of ``(op, start_block,
        nblocks)`` int tuples: materialized lists from
        ``CompiledTrace.issuer_plan`` or lazy run-buffer streams from
        ``ChunkedCompiledTrace.issuer_plan``.  Each is iterated exactly
        once per replay, in order, so both forms drive the identical
        sequence of block operations.

        The warmup/measured split is precomputed (no per-record warmup
        test), rows are plain int tuples (no attribute or property
        lookups), single-block records skip the ``range`` object, the
        read/write branch is taken once per record instead of once per
        block, and the post-measurement ``_record_completed`` call is
        elided when the invariant sanitizer is off (it would be a
        no-op).  When no latency timeline is collected, the metric
        wrappers are inlined too: ``measuring`` is always True during a
        replay (the driver gates on warmup, not the flag), so
        ``record_block`` reduces to one accumulator call plus a counter
        bump per collector — done here directly.  All of this is
        bookkeeping around the same ``read_block``/``write_block``
        calls in the same order, so results stay bit-identical to the
        object path.
        """
        sim = self.sim
        read_block = stack.read_block
        write_block = stack.write_block
        fleet = self.metrics
        host_m = self.host_metrics[stack.host_id]
        record_completed = self._record_completed
        check_invariants = self.invariants is not None
        for op, start, nb in warmup_rows:
            if op:
                if nb == 1:
                    yield from write_block(start, False)
                else:
                    for block in range(start, start + nb):
                        yield from write_block(block, False)
            else:
                if nb == 1:
                    yield from read_block(start)
                else:
                    for block in range(start, start + nb):
                        yield from read_block(block)
            if check_invariants or self._measurement_started_at is None:
                record_completed(nb)
        if not (fleet.measuring and host_m.measuring) or (
            fleet.read_timeline is not None or host_m.read_timeline is not None
        ):
            # Rare configurations (timeline collection, externally
            # gated collectors) go through the generic wrappers.
            yield from self._measured_rows_generic(stack, measured_rows)
            self._active_threads -= 1
            return
        fleet_read = fleet.read_latency.record
        fleet_write = fleet.write_latency.record
        host_read = host_m.read_latency.record
        host_write = host_m.write_latency.record
        req_read = fleet.read_request_latency.record
        req_write = fleet.write_request_latency.record
        for op, start, nb in measured_rows:
            if op:
                if nb == 1:
                    request_start = sim.now
                    yield from write_block(start)
                    latency = sim.now - request_start
                    fleet_write(latency)
                    fleet.blocks_written += 1
                    host_write(latency)
                    host_m.blocks_written += 1
                    req_write(latency)
                else:
                    request_start = sim.now
                    for block in range(start, start + nb):
                        block_start = sim.now
                        yield from write_block(block)
                        latency = sim.now - block_start
                        fleet_write(latency)
                        fleet.blocks_written += 1
                        host_write(latency)
                        host_m.blocks_written += 1
                    req_write(sim.now - request_start)
            else:
                if nb == 1:
                    request_start = sim.now
                    yield from read_block(start)
                    latency = sim.now - request_start
                    fleet_read(latency)
                    fleet.blocks_read += 1
                    host_read(latency)
                    host_m.blocks_read += 1
                    req_read(latency)
                else:
                    request_start = sim.now
                    for block in range(start, start + nb):
                        block_start = sim.now
                        yield from read_block(block)
                        latency = sim.now - block_start
                        fleet_read(latency)
                        fleet.blocks_read += 1
                        host_read(latency)
                        host_m.blocks_read += 1
                    req_read(sim.now - request_start)
            if check_invariants or self._measurement_started_at is None:
                record_completed(nb)
        self._active_threads -= 1

    def _measured_rows_generic(
        self,
        stack: HostStack,
        measured_rows,
    ):
        """Measured-phase loop through the metric wrappers — used when a
        latency timeline is collected (the wrapper owns the bucketing)
        or a collector is gated off."""
        sim = self.sim
        read_block = stack.read_block
        write_block = stack.write_block
        metrics = self.metrics
        record_fleet_block = metrics.record_block
        record_request = metrics.record_request
        record_host_block = self.host_metrics[stack.host_id].record_block
        record_completed = self._record_completed
        check_invariants = self.invariants is not None
        for op, start, nb in measured_rows:
            is_write = op != 0
            request_start = sim.now
            for block in range(start, start + nb):
                block_start = sim.now
                if is_write:
                    yield from write_block(block)
                else:
                    yield from read_block(block)
                now = sim.now
                latency = now - block_start
                record_fleet_block(is_write, latency, now)
                record_host_block(is_write, latency)
            record_request(is_write, sim.now - request_start)
            if check_invariants or self._measurement_started_at is None:
                record_completed(nb)

    def _thread_process(
        self,
        trace: Trace,
        stack: HostStack,
        items: List[Tuple[int, TraceRecord]],
    ):
        """One application thread: issue records in order, one at a time."""
        # This loop runs once per trace record and its body once per
        # 4 KB block — the replay hot path.  Attribute lookups that are
        # loop-invariant (the simulator, the stack's entry points, the
        # collectors) are hoisted into locals.
        sim = self.sim
        warmup_records = trace.warmup_records
        record_blocks = trace.record_blocks
        read_block = stack.read_block
        write_block = stack.write_block
        metrics = self.metrics
        record_fleet_block = metrics.record_block
        record_request = metrics.record_request
        record_host_block = self.host_metrics[stack.host_id].record_block
        record_completed = self._record_completed
        for index, record in items:
            is_warmup = index < warmup_records
            measured = not is_warmup
            is_write = record.is_write
            request_start = sim.now
            for block in record_blocks(record):
                block_start = sim.now
                if is_write:
                    yield from write_block(block, measured=measured)
                else:
                    yield from read_block(block)
                if measured:
                    now = sim.now
                    latency = now - block_start
                    record_fleet_block(is_write, latency, at_ns=now)
                    record_host_block(is_write, latency)
            if measured:
                record_request(is_write, sim.now - request_start)
            record_completed(record.nblocks)
        self._active_threads -= 1

    def _thread_process_obs(
        self,
        trace: Trace,
        stack: HostStack,
        items: List[Tuple[int, TraceRecord]],
        thread_id: int,
    ):
        """Instrumented twin of :meth:`_thread_process` (keep in sync).

        Adds request start/finish events and routes each block through
        the stack's ``*_obs`` entry points with a reusable
        :class:`~repro.obs.breakdown.Span` for exact component
        attribution.  Stacks without instrumented paths (the exclusive
        architecture) fall back to the plain entry points with the whole
        latency attributed to ``other``.
        """
        from repro.obs.breakdown import Span
        from repro.obs.events import EventKind

        sim = self.sim
        obs = self.obs
        rec = obs.recorder
        collector = obs.breakdown_collector
        record_span = collector.record if collector is not None else None
        warmup_records = trace.warmup_records
        record_blocks = trace.record_blocks
        read_obs = getattr(stack, "read_block_obs", None)
        write_obs = getattr(stack, "write_block_obs", None)
        read_block = stack.read_block
        write_block = stack.write_block
        metrics = self.metrics
        record_fleet_block = metrics.record_block
        record_request = metrics.record_request
        record_host_block = self.host_metrics[stack.host_id].record_block
        record_completed = self._record_completed
        host_id = stack.host_id
        start_kind = EventKind.REQUEST_START
        finish_kind = EventKind.REQUEST_FINISH
        span = Span()
        for index, record in items:
            measured = index >= warmup_records
            is_write = record.is_write
            request_start = sim.now
            if rec is not None:
                rec.emit(
                    request_start,
                    start_kind,
                    host_id,
                    info={
                        "thread": thread_id,
                        "op": "w" if is_write else "r",
                        "blocks": record.nblocks,
                    },
                )
            for block in record_blocks(record):
                span.reset()
                block_start = sim.now
                if is_write:
                    if write_obs is not None:
                        yield from write_obs(block, span, measured=measured)
                    else:
                        yield from write_block(block, measured=measured)
                        span.other += sim.now - block_start
                else:
                    if read_obs is not None:
                        yield from read_obs(block, span)
                    else:
                        yield from read_block(block)
                        span.other += sim.now - block_start
                if measured:
                    now = sim.now
                    latency = now - block_start
                    record_fleet_block(is_write, latency, at_ns=now)
                    record_host_block(is_write, latency)
                    if record_span is not None:
                        record_span(is_write, latency, span)
            if measured:
                record_request(is_write, sim.now - request_start)
            if rec is not None:
                rec.emit(
                    sim.now,
                    finish_kind,
                    host_id,
                    dur=sim.now - request_start,
                    info={"thread": thread_id},
                )
            record_completed(record.nblocks)
        self._active_threads -= 1

    # --- reporting inputs ----------------------------------------------------

    def measured_ns(self) -> int:
        if self._measurement_started_at is None:
            return 0
        return self.sim.now - self._measurement_started_at

    def aggregate_tier_stats(self) -> Dict[str, Dict[str, float]]:
        """Sum per-tier cache counters across hosts."""
        totals: Dict[str, Dict[str, float]] = {}
        for host in self.hosts:
            for tier_name, store in _stores_of(host):
                tier = totals.setdefault(tier_name, {})
                for key, value in store.stats.as_dict().items():
                    if key == "hit_rate":
                        continue
                    tier[key] = tier.get(key, 0) + value
        for tier in totals.values():
            accesses = tier.get("hits", 0) + tier.get("misses", 0)
            tier["hit_rate"] = (tier.get("hits", 0) / accesses) if accesses else 0.0
        return totals

    def mean_network_utilization(self) -> float:
        if not self.segments:
            return 0.0
        return sum(s.utilization() for s in self.segments) / len(self.segments)

    def total_flash_traffic(self) -> Tuple[int, int]:
        reads = sum(d.blocks_read for d in self.flash_devices if d is not None)
        writes = sum(d.blocks_written for d in self.flash_devices if d is not None)
        return reads, writes

    def per_host_summary(self) -> List[Dict[str, float]]:
        """Per-host application latency summary (measurement phase)."""
        rows: List[Dict[str, float]] = []
        for host_id, collector in enumerate(self.host_metrics):
            rows.append(
                {
                    "host": host_id,
                    "read_us": collector.read_latency.mean_us,
                    "read_blocks": collector.read_latency.count,
                    "write_us": collector.write_latency.mean_us,
                    "write_blocks": collector.write_latency.count,
                }
            )
        return rows

    def mean_write_amplification(self) -> Optional[float]:
        """Mean FTL write amplification across hosts (None without FTLs)."""
        factors = [
            d.write_amplification
            for d in self.flash_devices
            if isinstance(d, FTLFlashDevice)
        ]
        if not factors:
            return None
        return sum(factors) / len(factors)

    # --- endurance reporting -------------------------------------------

    def total_flash_program_bytes(self) -> int:
        """Bytes physically programmed across all flash devices during
        the measurement phase (GC relocations included with the FTL
        model; plain host traffic without)."""
        return sum(
            d.program_bytes() for d in self.flash_devices if d is not None
        )

    def total_flash_erases(self) -> int:
        """Erase operations across all flash devices during the
        measurement phase (0 without the FTL model)."""
        return sum(
            d.erase_count() for d in self.flash_devices if d is not None
        )

    def measured_write_amplification(self) -> Optional[float]:
        """Measurement-window write amplification (flash page programs
        per host page write), aggregated over the fleet's FTL devices.
        None without the FTL model; 0.0 when nothing was written."""
        host_pages = 0
        flash_pages = 0
        seen_ftl = False
        for device in self.flash_devices:
            if not isinstance(device, FTLFlashDevice):
                continue
            seen_ftl = True
            host_pages += device.ftl.host_writes - device._host_writes_at_reset
            flash_pages += device.ftl.flash_writes - device._flash_writes_at_reset
        if not seen_ftl:
            return None
        if host_pages == 0:
            return 0.0
        return flash_pages / host_pages

    def device_lifetime_days(self) -> Optional[float]:
        """Projected device lifetime at the measured erase rate.

        The fleet's worst (minimum) estimate: each FTL device's rated
        erase budget (``rated_erase_cycles x n_blocks``) divided by its
        measured erase rate over the measurement window.  ``inf`` when
        no erase happened; None without the FTL model or before the
        measurement phase produced any simulated time.
        """
        window_ns = self.measured_ns()
        if window_ns <= 0:
            return None
        day_ns = 86_400 * 1_000_000_000
        lifetimes: List[float] = []
        for device in self.flash_devices:
            if not isinstance(device, FTLFlashDevice):
                continue
            erases = device.erase_count()
            if erases == 0:
                lifetimes.append(float("inf"))
                continue
            budget = device.ftl.config.rated_total_erases
            lifetimes.append(budget / erases * window_ns / day_ns)
        if not lifetimes:
            return None
        return min(lifetimes)

    def admission_stats(self) -> Optional[Dict[str, int]]:
        """Summed admission-verdict counters across hosts (None when
        the paper-default always-admit policy is active everywhere)."""
        totals: Optional[Dict[str, int]] = None
        for host in self.hosts:
            controller = getattr(host, "_admission", None)
            if controller is None:
                continue
            counters = controller.counters()
            if totals is None:
                totals = dict(counters)
            else:
                for key, value in counters.items():
                    totals[key] = totals.get(key, 0) + value
        return totals


def _stores_of(host: HostStack):
    """Yield (tier name, store) pairs for any architecture."""
    ram = getattr(host, "ram", None)
    if ram is not None and ram.capacity_blocks > 0:
        yield "ram", ram
    flash = getattr(host, "flash", None)
    if flash is not None:
        yield "flash", flash
    cache = getattr(host, "cache", None)
    if cache is not None:
        yield "unified", cache
