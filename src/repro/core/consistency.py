"""Global cache-consistency directory (§3.8, §7.9) — fleet-scale form.

"The simulator invalidates stale copies of blocks instantly (using
global knowledge) when a new version is first written into a cache.
This exposes the overhead caused when these blocks must be fetched
again later.  However, we only count invalidations; we do not model the
overhead of cache consistency traffic."

The directory tracks, per block, which hosts hold any copy.  When a
host writes a block, every *other* host's copies are dropped from all
of its tiers, and the write is counted as "requiring invalidation" if
any copy was dropped.  The headline metric is the fraction of
application-level block writes requiring invalidations (Figures 11
and 12).

Beyond the paper's two hosts this module scales to fleets of
thousands:

* **Sharding.**  State lives in an array of :class:`_DirectoryShard`
  objects keyed by ``block & (n_shards - 1)`` (``n_shards`` is a power
  of two), each with its own holder map and counters.  Shard counters
  are merged at report time through summing properties, so callers see
  one directory regardless of the shard count.
* **Bitmask holders.**  The per-block holder set is a plain ``int``
  bitmask (bit *i* set ⇔ host *i* holds a copy) instead of a
  ``set`` — one machine word for fleets up to word size, and still a
  single arbitrary-precision int beyond it.
* **Flat registration.**  Dropper callbacks live in a list indexed by
  host id rather than a dict, so a 1 000-host registration is one
  array fill.

At the paper's default (zero directory latency, any shard count) the
observable behavior — counters, drop order, traffic-hook messages — is
bit-identical to the original unsharded implementation; the
differential harness pins this.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ParallelReplayConflict

#: Fleets at or below this size keep a single shard — the paper-scale
#: fast path, with no indexing arithmetic worth amortizing.
_SINGLE_SHARD_MAX_HOSTS = 8

#: Default shard count for larger fleets (must be a power of two).
_DEFAULT_SHARDS = 64

#: Environment override for the automatic shard count (power of two).
#: The differential harness uses it to replay one trace single-sharded
#: and multi-sharded and pin the results bit-identical; explicit
#: ``n_shards`` arguments win over the environment.
SHARDS_ENV = "REPRO_DIRECTORY_SHARDS"


class _DirectoryShard:
    """One shard of the directory: a holder map plus its own counters."""

    __slots__ = (
        "holders",
        "block_writes",
        "writes_requiring_invalidation",
        "copies_invalidated",
    )

    def __init__(self) -> None:
        # block -> bitmask of host ids holding a copy in any tier
        self.holders: Dict[int, int] = {}
        self.block_writes = 0
        self.writes_requiring_invalidation = 0
        self.copies_invalidated = 0


def _decode_mask(mask: int) -> Set[int]:
    """The set of host ids whose bits are set in ``mask``."""
    hosts: Set[int] = set()
    while mask:
        low = mask & -mask
        hosts.add(low.bit_length() - 1)
        mask ^= low
    return hosts


class ConsistencyDirectory:
    """Tracks block copies across hosts and performs invalidation."""

    __slots__ = ("n_hosts", "n_shards", "_shards", "_shard_mask", "_droppers",
                 "invalidation_latency_ns", "traffic_hook", "conflict_watch")

    def __init__(self, n_hosts: int, n_shards: Optional[int] = None) -> None:
        self.n_hosts = n_hosts
        if n_shards is None:
            env = os.environ.get(SHARDS_ENV, "").strip()
            if env:
                n_shards = int(env)
            else:
                n_shards = 1 if n_hosts <= _SINGLE_SHARD_MAX_HOSTS else _DEFAULT_SHARDS
        if n_shards < 1 or n_shards & (n_shards - 1):
            raise ValueError("n_shards must be a power of two, got %r" % n_shards)
        self.n_shards = n_shards
        self._shards: Tuple[_DirectoryShard, ...] = tuple(
            _DirectoryShard() for _ in range(n_shards)
        )
        self._shard_mask = n_shards - 1
        # host id -> callback(block) dropping the block from that host's
        # caches; a flat slot array so fleet-size registration stays cheap.
        self._droppers: List[Optional[Callable[[int], None]]] = [None] * n_hosts
        #: simulated nanoseconds spent on measured directory lookups and
        #: invalidate messages (zero unless ``timing.directory`` is set;
        #: accumulated by the host stacks, which own the clock).
        self.invalidation_latency_ns = 0
        #: optional hook(writer_host, victim_host) fired per dropped
        #: remote copy; the System uses it to charge invalidation
        #: messages to the victim's network segment (the §3.8 protocol
        #: traffic the paper leaves unmodeled).
        self.traffic_hook: Optional[Callable[[int, int], None]] = None
        #: optional set of blocks *written by other replay groups* when
        #: this directory serves one group of a sharded parallel replay
        #: (:mod:`repro.engine.parallel`).  The moment a host here
        #: caches a watched block the groups are provably coupled, so
        #: ``note_copy`` raises ParallelReplayConflict and the parent
        #: falls back to serial replay.  ``None`` (the default) is the
        #: normal single-process directory with zero overhead.
        self.conflict_watch: Optional[Set[int]] = None

    def register_host(self, host_id: int, dropper: Callable[[int], None]) -> None:
        """Register the callback that drops a block from a host's caches."""
        self._droppers[host_id] = dropper

    # --- copy tracking ---------------------------------------------------

    def note_copy(self, host_id: int, block: int) -> None:
        """A host now holds a copy of ``block`` (in any tier)."""
        if self.conflict_watch is not None and block in self.conflict_watch:
            raise ParallelReplayConflict(host_id, block)
        holders = self._shards[block & self._shard_mask].holders
        bit = 1 << host_id
        mask = holders.get(block)
        if mask is None:
            holders[block] = bit
        else:
            holders[block] = mask | bit

    def note_drop(self, host_id: int, block: int) -> None:
        """A host no longer holds any copy of ``block``.

        The host stack calls this only when the block has left *every*
        tier on that host.
        """
        holders = self._shards[block & self._shard_mask].holders
        mask = holders.get(block)
        if mask is not None:
            mask &= ~(1 << host_id)
            if mask:
                holders[block] = mask
            else:
                del holders[block]

    def drop_host(self, host_id: int) -> None:
        """Forget every copy a host holds (crash/reboot state cleanup).

        Called from the restart path: a rebooted host's caches are
        empty, so any holder bits it still carries are stale and would
        inflate ``copies_invalidated`` on later writes.  This is state
        maintenance, not an invalidation — no droppers, hooks, or
        counters fire.
        """
        keep = ~(1 << host_id)
        for shard in self._shards:
            holders = shard.holders
            dead = []
            for block, mask in holders.items():
                stripped = mask & keep
                if stripped != mask:
                    if stripped:
                        holders[block] = stripped
                    else:
                        dead.append(block)
            for block in dead:
                del holders[block]

    def holders_of(self, block: int) -> Set[int]:
        """The hosts currently holding a copy (a snapshot)."""
        return _decode_mask(
            self._shards[block & self._shard_mask].holders.get(block, 0)
        )

    # --- invalidation -----------------------------------------------------

    def on_block_write(self, writer_host: int, block: int, measured: bool = True) -> int:
        """A host wrote a new version of ``block``: invalidate other copies.

        Returns the number of remote copies invalidated.  ``measured``
        says whether this write belongs to the measurement phase of the
        trace (warmup writes still *invalidate* — the cache contents
        must be correct — but are not counted, matching how the paper
        reports invalidations as a percentage of measured writes).
        Threads interleave freely, so the phase is a per-record
        property, not a global clock.
        """
        shard = self._shards[block & self._shard_mask]
        if measured:
            shard.block_writes += 1
        holders = shard.holders
        mask = holders.get(block)
        writer_bit = 1 << writer_host
        if not mask or mask == writer_bit:
            # Nobody, or only the writer, holds a copy — nothing to
            # invalidate.  (The common case for single-host runs and
            # private blocks.)
            return 0
        others = mask & ~writer_bit
        kept = mask & writer_bit
        if kept:
            holders[block] = kept
        else:
            del holders[block]
        droppers = self._droppers
        hook = self.traffic_hook
        count = 0
        remaining = others
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            host = low.bit_length() - 1
            count += 1
            dropper = droppers[host]
            if dropper is not None:
                dropper(block)
                if hook is not None:
                    # Only a host that actually dropped something owes
                    # an invalidation message; an unregistered holder
                    # has no caches to invalidate over the wire.
                    hook(writer_host, host)
        if measured:
            shard.writes_requiring_invalidation += 1
            shard.copies_invalidated += count
        return count

    # --- reporting -----------------------------------------------------------

    @property
    def block_writes(self) -> int:
        """Measured application block writes (merged across shards)."""
        return sum(shard.block_writes for shard in self._shards)

    @property
    def writes_requiring_invalidation(self) -> int:
        return sum(shard.writes_requiring_invalidation for shard in self._shards)

    @property
    def copies_invalidated(self) -> int:
        return sum(shard.copies_invalidated for shard in self._shards)

    def shard_counters(self) -> List[Tuple[int, int, int]]:
        """Per-shard ``(block_writes, writes_requiring_invalidation,
        copies_invalidated)`` triples, in shard order."""
        return [
            (
                shard.block_writes,
                shard.writes_requiring_invalidation,
                shard.copies_invalidated,
            )
            for shard in self._shards
        ]

    @property
    def invalidation_fraction(self) -> float:
        """Fraction of measured block writes that required invalidation
        (the y-axis of Figures 11 and 12)."""
        writes = self.block_writes
        if writes == 0:
            return 0.0
        return self.writes_requiring_invalidation / writes

    def reset_counters(self) -> None:
        """Zero the measured counters (used by tests and restarts)."""
        for shard in self._shards:
            shard.block_writes = 0
            shard.writes_requiring_invalidation = 0
            shard.copies_invalidated = 0
        self.invalidation_latency_ns = 0
