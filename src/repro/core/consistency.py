"""Global cache-consistency directory (§3.8, §7.9).

"The simulator invalidates stale copies of blocks instantly (using
global knowledge) when a new version is first written into a cache.
This exposes the overhead caused when these blocks must be fetched
again later.  However, we only count invalidations; we do not model the
overhead of cache consistency traffic."

The directory tracks, per block, which hosts hold any copy.  When a
host writes a block, every *other* host's copies are dropped from all
of its tiers instantly (zero simulated time), and the write is counted
as "requiring invalidation" if any copy was dropped.  The headline
metric is the fraction of application-level block writes requiring
invalidations (Figures 11 and 12).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set


class ConsistencyDirectory:
    """Tracks block copies across hosts and performs instant invalidation."""

    def __init__(self, n_hosts: int) -> None:
        self.n_hosts = n_hosts
        # block -> set of host ids holding a copy in any tier
        self._holders: Dict[int, Set[int]] = {}
        # host id -> callback(block) dropping the block from that host's caches
        self._droppers: Dict[int, Callable[[int], None]] = {}
        # measured counters (only writes flagged as measured count)
        self.block_writes = 0
        self.writes_requiring_invalidation = 0
        self.copies_invalidated = 0
        #: optional hook(writer_host, victim_host) fired per dropped
        #: remote copy; the System uses it to charge invalidation
        #: messages to the victim's network segment (the §3.8 protocol
        #: traffic the paper leaves unmodeled).
        self.traffic_hook: Optional[Callable[[int, int], None]] = None

    def register_host(self, host_id: int, dropper: Callable[[int], None]) -> None:
        """Register the callback that drops a block from a host's caches."""
        self._droppers[host_id] = dropper

    # --- copy tracking ---------------------------------------------------

    def note_copy(self, host_id: int, block: int) -> None:
        """A host now holds a copy of ``block`` (in any tier)."""
        holders = self._holders.get(block)
        if holders is None:
            self._holders[block] = {host_id}
        else:
            holders.add(host_id)

    def note_drop(self, host_id: int, block: int) -> None:
        """A host no longer holds any copy of ``block``.

        The host stack calls this only when the block has left *every*
        tier on that host.
        """
        holders = self._holders.get(block)
        if holders is not None:
            holders.discard(host_id)
            if not holders:
                del self._holders[block]

    def holders_of(self, block: int) -> Set[int]:
        """The hosts currently holding a copy (a snapshot)."""
        return set(self._holders.get(block, ()))

    # --- invalidation -----------------------------------------------------

    def on_block_write(self, writer_host: int, block: int, measured: bool = True) -> int:
        """A host wrote a new version of ``block``: invalidate other copies.

        Returns the number of remote copies invalidated.  ``measured``
        says whether this write belongs to the measurement phase of the
        trace (warmup writes still *invalidate* — the cache contents
        must be correct — but are not counted, matching how the paper
        reports invalidations as a percentage of measured writes).
        Threads interleave freely, so the phase is a per-record
        property, not a global clock.
        """
        if measured:
            self.block_writes += 1
        holders = self._holders.get(block)
        if not holders:
            return 0
        if len(holders) == 1 and writer_host in holders:
            # Only the writer holds a copy — nothing to invalidate.
            # (The common case for single-host runs and private blocks.)
            return 0
        others = [host for host in holders if host != writer_host]
        if not others:
            return 0
        for host in others:
            dropper = self._droppers.get(host)
            if dropper is not None:
                dropper(block)
            holders.discard(host)
            if self.traffic_hook is not None:
                self.traffic_hook(writer_host, host)
        if measured:
            self.writes_requiring_invalidation += 1
            self.copies_invalidated += len(others)
        return len(others)

    # --- reporting -----------------------------------------------------------

    @property
    def invalidation_fraction(self) -> float:
        """Fraction of measured block writes that required invalidation
        (the y-axis of Figures 11 and 12)."""
        if self.block_writes == 0:
            return 0.0
        return self.writes_requiring_invalidation / self.block_writes

    def reset_counters(self) -> None:
        """Zero the measured counters (used by tests and restarts)."""
        self.block_writes = 0
        self.writes_requiring_invalidation = 0
        self.copies_invalidated = 0
