"""Top-level entry point: replay a trace under a configuration."""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Union

from repro.core.config import SimConfig
from repro.core.machine import System
from repro.core.restart import RestartSpec
from repro.core.results import SimulationResults
from repro.errors import ConfigError
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.records import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observation

#: Traces with at least this many records are compiled to the packed
#: columnar form before replay (see :mod:`repro.traces.compiled`).
#: Compilation is one O(n) pass memoized on the trace object, and the
#: compiled replay loop is measurably faster, so the threshold only
#: exists to keep tiny traces on the zero-setup path.  Override with
#: ``REPRO_COMPILE_MIN_RECORDS`` (``0`` or negative disables
#: auto-compilation; explicit ``CompiledTrace`` inputs always take the
#: compiled path).
AUTO_COMPILE_MIN_RECORDS = 32_768
COMPILE_ENV = "REPRO_COMPILE_MIN_RECORDS"

#: Environment default for ``run_simulation(parallel_hosts=...)``:
#: the number of worker processes to shard a multi-host replay across
#: (``0``/unset keeps the serial path).  See
#: :mod:`repro.engine.parallel` for eligibility — ineligible runs fall
#: back to serial with identical results either way.
PARALLEL_HOSTS_ENV = "REPRO_PARALLEL_HOSTS"


def _auto_compile_min_records() -> int:
    env = os.environ.get(COMPILE_ENV, "").strip()
    if not env:
        return AUTO_COMPILE_MIN_RECORDS
    try:
        return int(env)
    except ValueError:
        raise ConfigError("%s must be an integer, got %r" % (COMPILE_ENV, env))


def _parallel_hosts_default() -> int:
    env = os.environ.get(PARALLEL_HOSTS_ENV, "").strip()
    if not env:
        return 0
    try:
        return int(env)
    except ValueError:
        raise ConfigError("%s must be an integer, got %r" % (PARALLEL_HOSTS_ENV, env))


def results_from_system(
    system: System, config: SimConfig, records_replayed: int
) -> SimulationResults:
    """Collect a finished :class:`System`'s state into results.

    Shared by the serial replay path below and the parallel replay
    workers (:mod:`repro.engine.parallel`), so both report through the
    exact same aggregation code.
    """
    obs = system.obs
    tier_stats = system.aggregate_tier_stats()
    flash_reads, flash_writes = system.total_flash_traffic()
    metrics = system.metrics
    return SimulationResults(
        config_description=config.describe(),
        read_latency=metrics.read_latency,
        write_latency=metrics.write_latency,
        read_request_latency=metrics.read_request_latency,
        write_request_latency=metrics.write_request_latency,
        simulated_ns=system.sim.now,
        measured_ns=system.measured_ns(),
        records_replayed=records_replayed,
        blocks_read=metrics.blocks_read,
        blocks_written=metrics.blocks_written,
        tier_stats=tier_stats,
        filer_fast_reads=system.filer.fast_reads,
        filer_slow_reads=system.filer.slow_reads,
        filer_writes=system.filer.writes,
        flash_blocks_read=flash_reads,
        flash_blocks_written=flash_writes,
        flash_write_amplification=system.mean_write_amplification(),
        flash_program_bytes=system.total_flash_program_bytes(),
        flash_erase_count=system.total_flash_erases(),
        flash_write_amp=system.measured_write_amplification(),
        device_lifetime_days=system.device_lifetime_days(),
        flash_admission_stats=system.admission_stats(),
        network_utilization=system.mean_network_utilization(),
        read_timeline=metrics.read_timeline,
        per_host=system.per_host_summary(),
        block_writes=system.directory.block_writes,
        writes_requiring_invalidation=system.directory.writes_requiring_invalidation,
        copies_invalidated=system.directory.copies_invalidated,
        invalidation_latency_ns=system.directory.invalidation_latency_ns,
        breakdown=obs.breakdown if obs is not None else None,
        obs_counters=obs.counters() if obs is not None else None,
    )


def run_simulation(
    trace: Union[Trace, CompiledTrace, ChunkedCompiledTrace],
    config: SimConfig,
    *,
    n_hosts: Optional[int] = None,
    cold_start: bool = False,
    restart: Optional[RestartSpec] = None,
    timeline_bucket_ns: Optional[int] = None,
    check_invariants: Optional[bool] = None,
    obs: Optional["Observation"] = None,
    parallel_hosts: Optional[int] = None,
) -> SimulationResults:
    """Replay ``trace`` on a system built from ``config``.

    The options are keyword-only: sweep code builds these calls from
    dictionaries of overrides (see :mod:`repro.sweep`), and a keyword
    API keeps a reordered option from silently becoming a host count.

    For batches of independent points, use :func:`repro.sweep.run_sweep`
    — it fans configurations across CPU cores and caches results.

    ``trace`` may be a :class:`~repro.traces.records.Trace`, a
    :class:`~repro.traces.compiled.CompiledTrace`, or a
    :class:`~repro.traces.chunked.ChunkedCompiledTrace` (a spooled
    trace replayed with peak memory bounded by chunk size — see
    ``docs/SCALING.md``).  Plain traces with at least
    ``REPRO_COMPILE_MIN_RECORDS`` records (default
    ``AUTO_COMPILE_MIN_RECORDS``) are compiled automatically unless the
    run attaches an Observation; results are bit-identical across all
    three forms.  Observation runs need record objects, so a chunked
    trace is materialized first in that case — attach observations to
    traces that fit in memory.

    ``n_hosts`` defaults to the number of hosts appearing in the trace.
    ``cold_start=True`` removes the warmup phase instead of replaying
    it — the paper's model of "having a non-persistent flash cache and
    crashing at the beginning of the simulator run" (§7.8): statistics
    then cover the same records as a warm run, but against initially
    empty caches.

    ``restart`` (extension) instead *replays* the warmup and then
    crashes/reboots the caches at the measurement boundary, optionally
    modeling the recovery scan of a persistent flash cache — see
    :class:`~repro.core.restart.RestartSpec`.

    ``timeline_bucket_ns`` additionally collects a read-latency
    *timeline* (mean per time bucket since the measurement boundary),
    exposed as ``results.read_timeline``.

    ``check_invariants`` runs the :mod:`repro.invariants` sanitizer
    during the replay, raising
    :class:`~repro.errors.InvariantViolation` the moment the
    simulation's internal accounting drifts.  ``None`` (the default)
    defers to ``config.check_invariants`` and the
    ``REPRO_CHECK_INVARIANTS`` environment variable.

    ``obs`` attaches a :class:`repro.obs.Observation`: the run then
    emits structured trace events into its recorder and aggregates an
    exact per-request latency breakdown, both also surfaced on the
    results (``results.breakdown`` / ``results.obs_counters``).
    ``config.trace_events=True`` creates an internal Observation
    instead — useful when the run executes in a sweep worker process
    and only the (picklable) results travel back.  The simulation
    itself is bit-identical either way.

    ``parallel_hosts`` (or the ``REPRO_PARALLEL_HOSTS`` environment
    variable) shards an eligible multi-host replay across that many
    worker processes with a deterministic merge — results are
    bit-identical to the serial path, which any ineligible run silently
    falls back to.  See :mod:`repro.engine.parallel` and
    ``docs/SCALING.md``.
    """
    if cold_start:
        trace = trace.without_warmup()
    if isinstance(trace, Trace):
        threshold = _auto_compile_min_records()
        wants_obs = obs is not None or config.trace_events
        if threshold > 0 and len(trace) >= threshold and not wants_obs:
            # Large traces replay through the packed columnar fast path;
            # observation runs keep the object path, which is the one
            # that emits per-record structured events.
            trace = compile_trace(trace)
    if n_hosts is None:
        hosts_in_trace = trace.hosts()
        n_hosts = (max(hosts_in_trace) + 1) if hosts_in_trace else 1
    if parallel_hosts is None:
        parallel_hosts = _parallel_hosts_default()
    if parallel_hosts and parallel_hosts > 1:
        from repro.engine.parallel import try_parallel_replay

        merged = try_parallel_replay(
            trace,
            config,
            n_hosts=n_hosts,
            workers=parallel_hosts,
            restart=restart,
            timeline_bucket_ns=timeline_bucket_ns,
            check_invariants=check_invariants,
            obs=obs,
        )
        if merged is not None:
            return merged
        # Ineligible (or a cross-group conflict surfaced): fall through
        # to the serial path, which is always correct.
    system = System(
        config,
        n_hosts,
        restart=restart,
        timeline_bucket_ns=timeline_bucket_ns,
        check_invariants=check_invariants,
        obs=obs,
    )
    system.replay(trace)
    return results_from_system(system, config, len(trace))
