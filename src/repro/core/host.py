"""The per-host cache stack: naive, lookaside, and unified architectures.

This is the system under study.  Each host owns its cache tiers, its
flash device, and a private network segment to the shared filer.  The
public surface is two process generators — :meth:`HostStack.read_block`
and :meth:`HostStack.write_block` — whose simulated duration *is* the
application-observed latency, plus :meth:`HostStack.drop_block` used by
the consistency directory for instant invalidation.

Concurrency notes (threads interleave freely, as in the paper):

* Installs are idempotent — if another thread installed the block while
  this one was waiting on a device, the install becomes a touch.
* Eviction removes the victim from the index *before* its writeback, so
  a re-reference during the writeback simply misses (a real cache's
  locked-for-eviction buffer behaves the same way).
* In the naive/lookaside architectures, flash entries of RAM-resident
  blocks are pinned so victim selection preserves the paper's "RAM is
  always a subset of the flash cache" placement (write-allocated blocks
  join the flash on their first writeback).

Writeback semantics (§3.5/§3.6): writing *into* a tier follows that
tier's policy — ``s`` propagates to the next tier before the writer
continues, ``a`` spawns the propagation in the background, ``p``/``n``
leave the block dirty for the syncer or the eviction path.  Evicting a
dirty block always writes it back synchronously, charged to whichever
process needed the buffer; this is what makes the ``n`` policy degrade
once a cache fills ("multiple threads doing evictions contend for the
network, convoy, and slow down").
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.cache.block import Medium
from repro.cache.store import BlockStore
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.core.consistency import ConsistencyDirectory
from repro.core.policies import PolicyKind
from repro.engine.simulation import Simulator
from repro.errors import ConfigError
from repro.filer.server import Filer
from repro.flash.device import FlashDevice
from repro.net.link import NetworkSegment
from repro.net.packet import Packet
from repro.obs.events import EventKind

_SYNCER_RUN = EventKind.SYNCER_RUN


def _after(delay_ns: int, gen: Iterator) -> Iterator:
    """Run a process generator after a delay (delayed-flush helper)."""
    yield delay_ns
    yield from gen


#: The three protocol packet shapes, hoisted so the per-block I/O paths
#: skip the classmethod + singleton-cache lookup.
_PKT_REQUEST = Packet.request()
_PKT_DATA = Packet.data_block()
_PKT_ACK = Packet.ack()


class HostStack:
    """Common machinery shared by the three architectures.

    Slotted: a fleet-scale ``System`` instantiates thousands of these,
    and the per-instance ``__dict__`` was the dominant construction
    cost.  (The obs twin subclasses declare no ``__slots__`` and get a
    dict back — they are rare and carry recorder state.)
    """

    __slots__ = (
        "sim",
        "host_id",
        "config",
        "flash_device",
        "segment",
        "filer",
        "directory",
        "rng",
        "timing",
        "_ram_read_ns",
        "_ram_write_ns",
        "_has_ram",
        "_dir_stall",
        "_obs_rec",
        "keep_running",
        "flash_online_at",
    )

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        config: SimConfig,
        flash_device: Optional[FlashDevice],
        segment: NetworkSegment,
        filer: Filer,
        directory: ConsistencyDirectory,
        rng: random.Random,
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.config = config
        self.flash_device = flash_device
        self.segment = segment
        self.filer = filer
        self.directory = directory
        self.rng = rng
        self.timing = config.timing
        # Hot-path constants hoisted out of the per-block generators
        # (timing is a frozen dataclass; has_ram is fixed by the config).
        self._ram_read_ns = self.timing.ram_read_ns
        self._ram_write_ns = self.timing.ram_write_ns
        self._has_ram = config.has_ram
        # Directory latency model: None at the paper default (instant
        # invalidation — the write path pays zero extra yields and
        # replays bit-identically), else (lookup_ns, invalidate_ns).
        directory_timing = self.timing.directory
        self._dir_stall = (
            None
            if directory_timing.is_instant
            else (directory_timing.lookup_ns, directory_timing.invalidate_ns)
        )
        #: observability event sink (a repro.obs EventRecorder),
        #: attached by repro.obs.instrument.attach_observation;
        #: rare-event sites (syncer rounds) guard on it.
        self._obs_rec = None
        #: syncer-loop liveness predicate; the System replaces it with a
        #: check on active application threads so the event queue drains
        #: once the trace replay finishes.
        self.keep_running = lambda: True
        #: the flash tier is offline (recovering) before this time
        self.flash_online_at = 0
        directory.register_host(host_id, self.drop_block)

    def _flash_online(self) -> bool:
        """Whether the flash tier exists and has finished recovering."""
        return self.flash_device is not None and self.sim.now >= self.flash_online_at

    def apply_restart(self, volatile_flash: bool, scan_ns_per_block: int) -> None:
        """Crash/reboot the host's caches (see repro.core.restart)."""
        raise NotImplementedError(
            "restart modeling is not supported by the %s architecture"
            % self.config.architecture
        )

    # --- public interface (implemented by subclasses) -----------------

    def read_block(self, block: int) -> Iterator:
        """Process generator: application read of one block."""
        raise NotImplementedError

    def write_block(self, block: int, measured: bool = True) -> Iterator:
        """Process generator: application write of one block.

        ``measured`` marks whether this write belongs to the trace's
        measurement phase (it gates invalidation *counting* only; the
        invalidation itself always happens).
        """
        raise NotImplementedError

    def drop_block(self, block: int) -> None:
        """Instantly drop every copy of a block (consistency invalidation)."""
        raise NotImplementedError

    def start_syncers(self) -> None:
        """Spawn the periodic syncer processes this configuration needs."""
        raise NotImplementedError

    def reset_measurement_stats(self) -> None:
        """Zero cache statistics at the warmup/measurement boundary."""
        raise NotImplementedError

    # --- filer access over the private segment -------------------------------

    def _filer_read(self) -> Iterator:
        """One block read from the filer: request packet, service, data packet.

        The segment occupancy and filer service are folded into this
        frame (via :meth:`NetworkSegment.charge` and
        :meth:`Filer.read_service_ns`) instead of delegating to nested
        generators — this path runs once per cache miss.
        """
        segment = self.segment
        wire, wire_time = segment.charge(_PKT_REQUEST, "up")
        if not wire.try_acquire():
            yield wire.acquire()
        yield wire_time
        wire.release()
        yield self.filer.read_service_ns()
        wire, wire_time = segment.charge(_PKT_DATA, "down")
        if not wire.try_acquire():
            yield wire.acquire()
        yield wire_time
        wire.release()

    def _filer_write(self) -> Iterator:
        """One block write to the filer: data packet, service, ack."""
        segment = self.segment
        wire, wire_time = segment.charge(_PKT_DATA, "up")
        if not wire.try_acquire():
            yield wire.acquire()
        yield wire_time
        wire.release()
        yield self.filer.write_service_ns()
        wire, wire_time = segment.charge(_PKT_ACK, "down")
        if not wire.try_acquire():
            yield wire.acquire()
        yield wire_time
        wire.release()

    # --- background flush helper ------------------------------------------

    def _spawn(self, gen: Iterator, name: str) -> None:
        self.sim.spawn(gen, name="%s.h%d" % (name, self.host_id))


class LayeredStack(HostStack):
    """Shared implementation of the two layered architectures
    (naive and lookaside), which differ only in where RAM writebacks go."""

    __slots__ = ("ram", "flash", "_flash_direct", "_admission", "_cleaning")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        config = self.config
        self.ram = BlockStore(config.ram_blocks, config.eviction_policy, name="ram")
        self.flash: Optional[BlockStore] = None
        if config.has_flash:
            if self.flash_device is None:
                raise ConfigError("flash configured but no flash device supplied")
            self.flash = BlockStore(
                config.flash_blocks, config.eviction_policy, name="flash"
            )
        # Pure-latency devices (the default) take the non-generator
        # service-cost path; channel-limited devices must queue.
        self._flash_direct = (
            self.flash is not None and self.flash_device.unlimited_parallelism
        )
        # Admission/cleaning controllers: None at the paper defaults
        # (always-admit, periodic cleaning), so the default hot paths
        # pay one ``is not None`` branch each and replay bit-identically
        # to the pre-policy-API build.
        self._admission = None
        self._cleaning = None
        if self.flash is not None:
            admission = config.flash_admission
            if not admission.is_always:
                self._admission = admission.controller()
                if self._admission.needs_ref_ledger:
                    self.ram.enable_ref_ledger()
            cleaning = config.flash_cleaning
            if not cleaning.is_periodic:
                self._cleaning = cleaning.controller(self)

    # --- presence bookkeeping for the consistency directory ---------------

    def _note_present(self, block: int) -> None:
        self.directory.note_copy(self.host_id, block)

    def _note_maybe_gone(self, block: int) -> None:
        if block in self.ram:
            return
        if self.flash is not None and block in self.flash:
            return
        self.directory.note_drop(self.host_id, block)

    def drop_block(self, block: int) -> None:
        self.ram.remove(block, invalidation=True)
        if self.flash is not None:
            removed = self.flash.remove(block, invalidation=True)
            if removed is not None:
                self.flash_device.trim_block(block)

    def reset_measurement_stats(self) -> None:
        self.ram.stats.reset_for_measurement()
        if self.flash is not None:
            self.flash.stats.reset_for_measurement()

    def apply_restart(self, volatile_flash: bool, scan_ns_per_block: int) -> None:
        # RAM is always volatile: its contents (dirty data included —
        # this is a crash) are gone.
        for block in list(self.ram.blocks()):
            if self.flash is not None:
                self.flash.unpin(block)
            self.ram.remove(block)
            self._note_maybe_gone(block)
        if self.flash is None:
            # Both tiers are now empty; bulk-clear any holder bits that
            # in-flight writebacks left behind.
            self.directory.drop_host(self.host_id)
            return
        if volatile_flash:
            for block in list(self.flash.blocks()):
                self.flash.remove(block)
                self.flash_device.trim_block(block)
                self._note_maybe_gone(block)
            self.directory.drop_host(self.host_id)
        else:
            # Contents survive, but the cache is offline while recovery
            # scans and validates its metadata.
            self.flash_online_at = (
                self.sim.now + len(self.flash) * scan_ns_per_block
            )

    # --- read path --------------------------------------------------------

    def read_block(self, block: int) -> Iterator:
        if self._has_ram:
            entry = self.ram.get(block)
            if entry is not None:
                admission = self._admission
                if (
                    admission is not None
                    and admission.promote_on_hit(self.ram.ref_count(block))
                    and self._flash_online()
                    and self.flash.peek(block) is None
                ):
                    # Probation served: this hit crosses the reference
                    # threshold, so promote the block into flash (the
                    # program is charged to this reader).
                    yield from self._install_flash(block, dirty=False)
                yield self._ram_read_ns
                return
        if self.flash is not None and self._flash_online():
            fentry = self.flash.get(block)
            if fentry is not None:
                if self._flash_direct:
                    yield self.flash_device.read_service_ns(block)
                else:
                    yield from self.flash_device.read_block(block)
                yield from self._install_ram(block, dirty=False)
                return
            # Miss everywhere: fetch, then fill flash and RAM
            # ("newly referenced blocks are first placed in flash,
            # then into RAM").
            yield from self._filer_read()
            yield from self._install_flash(block, dirty=False)
            yield from self._install_ram(block, dirty=False)
            return
        # No flash tier configured.
        yield from self._filer_read()
        yield from self._install_ram(block, dirty=False)

    # --- write path ------------------------------------------------------

    def write_block(self, block: int, measured: bool = True) -> Iterator:
        dropped = self.directory.on_block_write(self.host_id, block, measured)
        dir_stall = self._dir_stall
        if dir_stall is not None:
            cost = dir_stall[0] + dropped * dir_stall[1]
            if cost:
                if measured:
                    self.directory.invalidation_latency_ns += cost
                yield cost
        if not self._has_ram:
            # No RAM cache at all: writes land on the next tier directly.
            if self.flash is not None:
                yield from self._write_into_flash(block)
            else:
                yield from self._filer_write()
            return
        yield from self._install_ram(block, dirty=True)
        policy = self.config.ram_policy
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_ram_block(block)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_ram_block(block), "ram-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_ram_block(block)),
                "ram-delayed-flush",
            )
        # periodic/trickle/none: the block stays dirty for the
        # syncer/eviction path.

    # --- RAM tier internals ------------------------------------------------

    def _install_ram(self, block: int, dirty: bool) -> Iterator:
        """Place (or refresh) a block in RAM, evicting as needed."""
        if not self._has_ram:
            return
        ram = self.ram
        existing = ram.peek(block)
        if existing is not None:
            ram.get(block)  # touch + count the access pattern
            if dirty:
                ram.mark_dirty(block)
            yield self._ram_write_ns
            return
        while ram.is_full():
            victim = ram.pop_victim()
            if victim is None:
                break
            if self.flash is not None:
                self.flash.unpin(victim.block)
            if victim.dirty:
                yield from self._flush_evicted_ram_block(victim.block)
            self._note_maybe_gone(victim.block)
            # Re-check: another thread may have installed our block
            # while the writeback was in flight.
            installed = ram.peek(block)
            if installed is not None:
                if dirty:
                    ram.mark_dirty(block)
                yield self._ram_write_ns
                return
        ram.put(block, Medium.RAM, dirty=dirty)
        if self.flash is not None:
            self.flash.pin(block)
        self._note_present(block)
        yield self._ram_write_ns

    def _flush_ram_block(self, block: int) -> Iterator:
        """Policy-driven flush of one (possibly already clean) RAM block."""
        entry = self.ram.peek(block)
        if entry is None or not entry.dirty:
            return
        self.ram.mark_clean(block)
        yield from self._writeback_ram_data(block)

    def _flush_evicted_ram_block(self, block: int) -> Iterator:
        """Writeback for a dirty block already removed from the RAM index."""
        yield from self._writeback_ram_data(block)

    def _writeback_ram_data(self, block: int) -> Iterator:
        """Where RAM writebacks go — the one divergence between the
        naive and lookaside architectures."""
        raise NotImplementedError

    # --- flash tier internals -----------------------------------------------

    def _install_flash(self, block: int, dirty: bool) -> Iterator:
        """Write a block's data into the flash cache (fill or update).

        Returns the admission verdict: False when the admission policy
        rejected a *fill* (nothing was written to flash), True in every
        other case (updates of resident blocks are never rejected).
        """
        if self.flash is None or not self._flash_online():
            return True
        existing = self.flash.peek(block)
        admission = self._admission
        if existing is None:
            if admission is not None and not admission.admit_fill(
                block, self.ram.ref_count(block), self.sim.now
            ):
                return False
            yield from self._make_flash_room(block)
            if self.flash.peek(block) is None:
                self.flash.put(
                    block, Medium.FLASH, dirty=False, pinned=block in self.ram
                )
                self._note_present(block)
        else:
            self.flash.get(block)  # touch
            if admission is not None:
                admission.note_update(self.sim.now)
        if self._flash_direct:
            yield self.flash_device.write_service_ns(block)
        else:
            yield from self.flash_device.write_block(block)
        # The entry can be evicted by another thread during the device
        # write; if so there is nothing left to mark (the stale data is
        # simply gone, as on a real device) — tell the device so an
        # FTL-backed model reclaims the page.
        if self.flash.peek(block) is None:
            self.flash_device.trim_block(block)
        elif dirty:
            self.flash.mark_dirty(block)
            cleaning = self._cleaning
            if cleaning is not None:
                cleaning.note_dirtied(block, self.sim.now)
        return True

    def _write_into_flash(self, block: int) -> Iterator:
        """Write *dirty* data into flash, then honor the flash policy."""
        if self.flash is not None and not self._flash_online():
            # Recovering: the flash cannot accept writebacks, so dirty
            # data goes straight to the filer (§3.8's availability gap).
            yield from self._filer_write()
            return
        admitted = yield from self._install_flash(block, dirty=True)
        if not admitted:
            # The admission policy kept this dirty block out of flash;
            # its data still needs durability, so it writes through to
            # the filer (charged to this writer, like an eviction).
            yield from self._filer_write()
            return
        policy = self.config.flash_policy
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_flash_block(block)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_flash_block(block), "flash-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_flash_block(block)),
                "flash-delayed-flush",
            )

    def _make_flash_room(self, incoming: int) -> Iterator:
        assert self.flash is not None
        while self.flash.is_full():
            victim = self.flash.pop_victim()
            if victim is None:
                break
            self.flash_device.trim_block(victim.block)
            if victim.dirty:
                yield from self._filer_write()
            if victim.pinned:
                # Fallback: every other entry was pinned, so a
                # RAM-resident block lost its flash copy; drop the RAM
                # copy too to preserve the subset placement.
                ram_copy = self.ram.remove(victim.block)
                if ram_copy is not None and ram_copy.dirty:
                    yield from self._writeback_ram_data(victim.block)
            self._note_maybe_gone(victim.block)
            if self.flash.peek(incoming) is not None:
                return

    def _flush_flash_block(self, block: int) -> Iterator:
        """Flush one dirty flash block to the filer."""
        assert self.flash is not None
        if not self._flash_online():
            # "It cannot flush dirty data ... until afterwards."
            return
        entry = self.flash.peek(block)
        if entry is None or not entry.dirty:
            return
        self.flash.mark_clean(block)
        yield from self._filer_write()

    # --- syncers ----------------------------------------------------------

    def start_syncers(self) -> None:
        ram_policy = self.config.ram_policy
        if ram_policy.has_syncer and self.config.has_ram:
            self._spawn(
                self._syncer_loop(ram_policy, self.ram, self._flush_ram_block),
                "ram-syncer",
            )
        if self._cleaning is not None:
            # A non-default cleaning policy *replaces* the flash tier's
            # periodic syncer (the write-path behavior of the flash
            # writeback policy is unchanged).
            self._cleaning.start()
            return
        flash_policy = self.config.flash_policy
        if flash_policy.has_syncer and self.flash is not None:
            self._spawn(
                self._syncer_loop(flash_policy, self.flash, self._flush_flash_block),
                "flash-syncer",
            )

    def _syncer_loop(self, policy, store, flush_block) -> Iterator:
        # A periodic syncer issues its whole batch of writebacks at
        # once, asynchronously (they pipeline on the devices and the
        # network, as real syncers' queued I/O does; a strictly serial
        # syncer could never exceed one writeback per round-trip time).
        # A trickle syncer spreads the batch evenly across the period.
        trickle = policy.kind is PolicyKind.TRICKLE
        period_ns = policy.period_ns
        while self.keep_running():
            yield period_ns
            dirty = store.dirty_blocks()
            if not dirty:
                continue
            rec = self._obs_rec
            if rec is not None:
                rec.emit(
                    self.sim.now, _SYNCER_RUN, self.host_id, tier=store.name,
                    info={"dirty": len(dirty)},
                )
            if trickle:
                spacing = period_ns // len(dirty)
                for index, block in enumerate(dirty):
                    self._spawn(
                        _after(index * spacing, flush_block(block)),
                        "trickle-flush",
                    )
            else:
                for block in dirty:
                    self._spawn(flush_block(block), "syncer-flush")


class NaiveStack(LayeredStack):
    """§3.3 "Naive": an independent flash layer beneath the RAM cache.

    RAM writebacks go to the flash; flash writebacks go to the filer.
    """

    __slots__ = ()

    def _writeback_ram_data(self, block: int) -> Iterator:
        if self.flash is not None:
            yield from self._write_into_flash(block)
        else:
            yield from self._filer_write()


class LookasideStack(LayeredStack):
    """§3.3 "Lookaside" (Mercury-like): writes bypass the flash.

    "Writes go directly from RAM to the file server instead of being
    routed through the flash.  The flash is updated after the file
    server and never contains dirty data."
    """

    __slots__ = ()

    def _writeback_ram_data(self, block: int) -> Iterator:
        yield from self._filer_write()
        if self.flash is not None:
            # Update the flash copy only after the filer write, so the
            # flash never holds dirty data.
            yield from self._install_flash(block, dirty=False)


class UnifiedStack(HostStack):
    """§3.3 "Unified": one LRU chain across RAM and flash buffers.

    New blocks land in "the least recently used buffer, whether RAM or
    flash" — when the cache is full, that is the buffer the LRU victim
    freed; while filling, free buffers are drawn in proportion to the
    remaining capacity of each medium (no preference for RAM).  Blocks
    are never migrated between media.
    """

    __slots__ = ("cache", "_free_ram", "_free_flash", "_flash_direct")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        config = self.config
        total = config.ram_blocks + config.flash_blocks
        self.cache = BlockStore(total, config.eviction_policy, name="unified")
        self._free_ram = config.ram_blocks
        self._free_flash = config.flash_blocks
        if config.has_flash and self.flash_device is None:
            raise ConfigError("flash configured but no flash device supplied")
        self._flash_direct = (
            self.flash_device is not None
            and self.flash_device.unlimited_parallelism
        )

    # --- medium accounting ------------------------------------------------

    def _allocate_medium(self) -> Medium:
        """Pick the medium of a fresh buffer, proportionally to free space."""
        total_free = self._free_ram + self._free_flash
        assert total_free > 0, "allocation requested with no free buffers"
        if self.rng.randrange(total_free) < self._free_ram:
            self._free_ram -= 1
            return Medium.RAM
        self._free_flash -= 1
        return Medium.FLASH

    def _release_medium(self, medium: Medium) -> None:
        if medium is Medium.RAM:
            self._free_ram += 1
        else:
            self._free_flash += 1

    def _medium_read(self, medium: Medium, block: int) -> Iterator:
        if medium is Medium.RAM:
            yield self._ram_read_ns
        elif self._flash_direct:
            yield self.flash_device.read_service_ns(block)
        else:
            yield from self.flash_device.read_block(block)

    def _medium_write(self, medium: Medium, block: int) -> Iterator:
        if medium is Medium.RAM:
            yield self._ram_write_ns
        elif self._flash_direct:
            yield self.flash_device.write_service_ns(block)
        else:
            yield from self.flash_device.write_block(block)

    def _policy_for(self, medium: Medium):
        """Dirty blocks in RAM buffers follow the RAM policy; dirty
        blocks in flash buffers follow the flash policy."""
        if medium is Medium.RAM:
            return self.config.ram_policy
        return self.config.flash_policy

    # --- public paths -------------------------------------------------------

    def read_block(self, block: int) -> Iterator:
        entry = self.cache.get(block)
        if entry is not None:
            # Inline of _medium_read: this is the unified hit path.
            if entry.medium is Medium.RAM:
                yield self._ram_read_ns
            elif self._flash_direct:
                yield self.flash_device.read_service_ns(block)
            else:
                yield from self.flash_device.read_block(block)
            return
        yield from self._filer_read()
        yield from self._install(block, dirty=False)

    def write_block(self, block: int, measured: bool = True) -> Iterator:
        dropped = self.directory.on_block_write(self.host_id, block, measured)
        dir_stall = self._dir_stall
        if dir_stall is not None:
            cost = dir_stall[0] + dropped * dir_stall[1]
            if cost:
                if measured:
                    self.directory.invalidation_latency_ns += cost
                yield cost
        entry = self.cache.get(block)
        if entry is not None:
            self.cache.mark_dirty(block)
            medium = entry.medium
            # Inline of _medium_write: this is the unified write hit path.
            if medium is Medium.RAM:
                yield self._ram_write_ns
            elif self._flash_direct:
                yield self.flash_device.write_service_ns(block)
            else:
                yield from self.flash_device.write_block(block)
            self._reclaim_if_gone(block, medium)
        else:
            medium = yield from self._install(block, dirty=True)
            if medium is None:
                # Cache of zero capacity: write straight to the filer.
                yield from self._filer_write()
                return
        policy = self._policy_for(medium)
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_block(block)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_block(block), "unified-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_block(block)),
                "unified-delayed-flush",
            )

    def drop_block(self, block: int) -> None:
        entry = self.cache.remove(block, invalidation=True)
        if entry is not None:
            self._release_medium(entry.medium)
            if entry.medium is Medium.FLASH:
                self.flash_device.trim_block(block)

    # --- internals -----------------------------------------------------------

    def _install(self, block: int, dirty: bool) -> Iterator:
        """Insert a block; returns the medium it landed in (or None when
        the cache has zero capacity)."""
        if self.cache.capacity_blocks == 0:
            return None
        existing = self.cache.peek(block)
        if existing is None:
            while self.cache.is_full():
                victim = self.cache.pop_victim()
                if victim is None:
                    break
                self._release_medium(victim.medium)
                if victim.medium is Medium.FLASH:
                    self.flash_device.trim_block(victim.block)
                if victim.dirty:
                    yield from self._filer_write()
                # The victim may have been re-fetched by another thread
                # during the writeback; only report it gone if it is.
                if victim.block not in self.cache:
                    self.directory.note_drop(self.host_id, victim.block)
                existing = self.cache.peek(block)
                if existing is not None:
                    break
        if existing is not None:
            if dirty:
                self.cache.mark_dirty(block)
            yield from self._medium_write(existing.medium, block)
            self._reclaim_if_gone(block, existing.medium)
            return existing.medium
        medium = self._allocate_medium()
        self.cache.put(block, medium, dirty=dirty)
        self.directory.note_copy(self.host_id, block)
        yield from self._medium_write(medium, block)
        self._reclaim_if_gone(block, medium)
        return medium

    def _reclaim_if_gone(self, block: int, medium: Medium) -> None:
        """If another thread evicted the block during its device write,
        release its FTL page (no-op for the base device model)."""
        if medium is Medium.FLASH and self.cache.peek(block) is None:
            self.flash_device.trim_block(block)

    def _flush_block(self, block: int) -> Iterator:
        entry = self.cache.peek(block)
        if entry is None or not entry.dirty:
            return
        self.cache.mark_clean(block)
        yield from self._filer_write()

    def start_syncers(self) -> None:
        # One syncer per medium with a periodic/trickle policy; each
        # scans only its medium's dirty blocks.
        if self.config.ram_policy.has_syncer:
            self._spawn(
                self._syncer_loop(self.config.ram_policy, Medium.RAM),
                "unified-ram-syncer",
            )
        if self.config.flash_policy.has_syncer:
            self._spawn(
                self._syncer_loop(self.config.flash_policy, Medium.FLASH),
                "unified-flash-syncer",
            )

    def _syncer_loop(self, policy, medium: Medium) -> Iterator:
        # Writebacks are issued asynchronously (periodic) or spread
        # over the period (trickle); see LayeredStack's syncer loop.
        trickle = policy.kind is PolicyKind.TRICKLE
        period_ns = policy.period_ns
        while self.keep_running():
            yield period_ns
            dirty = [
                block
                for block in self.cache.dirty_blocks()
                if (entry := self.cache.peek(block)) is not None
                and entry.medium is medium
            ]
            if not dirty:
                continue
            rec = self._obs_rec
            if rec is not None:
                rec.emit(
                    self.sim.now, _SYNCER_RUN, self.host_id, tier=medium.name.lower(),
                    info={"dirty": len(dirty)},
                )
            spacing = period_ns // len(dirty) if trickle else 0
            for index, block in enumerate(dirty):
                self._spawn(
                    _after(index * spacing, self._flush_block(block)),
                    "unified-syncer-flush",
                )

    def reset_measurement_stats(self) -> None:
        self.cache.stats.reset_for_measurement()


def build_host_stack(
    sim: Simulator,
    host_id: int,
    config: SimConfig,
    flash_device: Optional[FlashDevice],
    segment: NetworkSegment,
    filer: Filer,
    directory: ConsistencyDirectory,
    rng: random.Random,
) -> HostStack:
    """Construct the stack class matching the configured architecture."""
    from repro.core.migration import MigrationStack

    cls = {
        Architecture.NAIVE: NaiveStack,
        Architecture.LOOKASIDE: LookasideStack,
        Architecture.UNIFIED: UnifiedStack,
        Architecture.EXCLUSIVE: MigrationStack,
    }[config.architecture]
    return cls(sim, host_id, config, flash_device, segment, filer, directory, rng)
