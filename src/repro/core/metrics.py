"""Latency statistics.

"In evaluating possible configurations, we use the latency experienced
by the application as the governing metric."  Latencies are recorded
per *block* (the figures' y-axes are per-4KB-block microseconds), split
into read and write, and only during the measurement phase — the
warmup half of every trace is replayed but not recorded.

:class:`LatencyStat` is a streaming accumulator (count/total/min/max
plus log-scale histogram buckets, so percentiles can be estimated
without storing samples).

:class:`PercentileSketch` is the bounded-state quantile companion: a
log-bucket (DDSketch-style) sketch whose percentile estimates carry a
*guaranteed* relative-error bound, with memory bounded by the bucket
cap regardless of how many observations stream through.  A
``LatencyStat`` optionally carries one (``REPRO_METRICS_SKETCH`` or an
explicit :class:`MetricsCollector` argument), keeping the streaming
pipeline's metrics memory-bounded end to end; the differential harness
cross-checks sketch estimates against exact quantiles within the
documented bound (see ``repro.validation.differential``).
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional

from repro._units import US, format_time
from repro.errors import ConfigError

#: Environment knob enabling percentile sketches inside every
#: ``LatencyStat`` a :class:`MetricsCollector` creates.  ``off`` /
#: ``0`` / unset disables (the default); ``on`` / ``1`` / ``true``
#: enables at :data:`DEFAULT_SKETCH_ERROR`; a float in (0, 1) enables
#: at that relative-error bound.
SKETCH_ENV = "REPRO_METRICS_SKETCH"

#: Default relative-error bound of an enabled sketch (1 %).
DEFAULT_SKETCH_ERROR = 0.01


def _sketch_error_from_env() -> Optional[float]:
    env = os.environ.get(SKETCH_ENV, "").strip().lower()
    if env in ("", "0", "off", "false", "no"):
        return None
    if env in ("1", "on", "true", "yes"):
        return DEFAULT_SKETCH_ERROR
    try:
        error = float(env)
    except ValueError:
        raise ConfigError(
            "%s must be a flag or a relative error in (0, 1), got %r"
            % (SKETCH_ENV, env)
        )
    if not 0.0 < error < 1.0:
        raise ConfigError(
            "%s relative error must be in (0, 1), got %g" % (SKETCH_ENV, error)
        )
    return error


class PercentileSketch:
    """Streaming log-bucket quantile sketch with a relative-error bound.

    DDSketch-style: a positive value ``v`` lands in bucket
    ``ceil(log_gamma(v))`` with ``gamma = (1 + e) / (1 - e)``, so every
    value in bucket ``i`` lies in ``(gamma^(i-1), gamma^i]`` and the
    bucket midpoint estimate ``2 * gamma^i / (gamma + 1)`` is within
    relative error ``e`` of *any* value in the bucket — hence
    :meth:`percentile` is within ``e`` (relative) of the exact
    empirical quantile, whatever the distribution.

    State is a sparse bucket dict bounded by ``max_buckets`` (the
    lowest buckets collapse into their neighbor when the cap is hit,
    which can only degrade accuracy of the extreme low tail); memory
    is O(max_buckets) no matter how many observations stream through —
    the property the bounded-memory replay pipeline needs.
    """

    __slots__ = ("relative_error", "_gamma", "_log_gamma", "count", "_zero_count", "_buckets", "_max_buckets")

    def __init__(self, relative_error: float = DEFAULT_SKETCH_ERROR, max_buckets: int = 4096) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        if max_buckets < 2:
            raise ValueError("max_buckets must be >= 2")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self._zero_count = 0
        self._buckets: Dict[int, int] = {}
        self._max_buckets = max_buckets

    def record(self, value: float) -> None:
        """Add one non-negative observation."""
        if value < 0:
            raise ValueError("sketch values must be non-negative")
        self.count += 1
        if value == 0:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1
        if len(buckets) > self._max_buckets:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Merge the lowest bucket into its upward neighbor (bounds the
        bucket count; only the extreme low tail loses precision)."""
        lowest, second = sorted(self._buckets)[:2]
        self._buckets[second] += self._buckets.pop(lowest)

    def percentile(self, fraction: float) -> float:
        """The estimated ``fraction`` quantile (0..1).

        Within ``relative_error`` of the exact empirical quantile of
        the recorded values (rank ``fraction * (count - 1)`` of the
        sorted sample), modulo float rounding at bucket boundaries and
        low-tail collapse under bucket pressure.  Returns 0.0 when
        empty.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = fraction * (self.count - 1)
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        gamma = self._gamma
        last_index = None
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            last_index = index
            if seen > rank:
                break
        assert last_index is not None
        return 2.0 * gamma ** last_index / (gamma + 1.0)

    def merge(self, other: "PercentileSketch") -> None:
        """Fold another sketch into this one (must share gamma).

        The check is exact, not tolerance-based: two sketches built from
        distinct ``relative_error`` values use different bucket
        geometries even when their gammas agree to within float noise,
        and folding one's bucket indices into the other silently
        corrupts every quantile.
        """
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sketches with different relative errors "
                "(%g vs %g)" % (self.relative_error, other.relative_error)
            )
        self.count += other.count
        self._zero_count += other._zero_count
        buckets = self._buckets
        for index, bucket_count in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + bucket_count
        while len(buckets) > self._max_buckets:
            self._collapse_lowest()

    def __getstate__(self):
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "zero_count": self._zero_count,
            "buckets": dict(self._buckets),
            "max_buckets": self._max_buckets,
        }

    def __setstate__(self, state) -> None:
        self.__init__(state["relative_error"], state["max_buckets"])
        self.count = state["count"]
        self._zero_count = state["zero_count"]
        self._buckets = dict(state["buckets"])

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "relative_error": self.relative_error,
            "buckets": len(self._buckets),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PercentileSketch n=%d e=%g buckets=%d>" % (
            self.count,
            self.relative_error,
            len(self._buckets),
        )


class LatencyStat:
    """Streaming latency accumulator with log-scale histogram buckets.

    ``sketch`` optionally attaches a :class:`PercentileSketch`: every
    recorded latency is fed to it too, giving tight-error percentiles
    (the built-in histogram is good to a factor of two) at bounded
    memory.  The sketch never participates in result signatures or
    fingerprints — enabling it cannot change what the drift gates see.
    """

    #: bucket boundaries in nanoseconds: 100ns, 200ns, 400ns, ... ~ 1.7s
    _BUCKET_BASE_NS = 100
    _N_BUCKETS = 25

    __slots__ = ("count", "total_ns", "min_ns", "max_ns", "_buckets", "sketch")

    def __init__(self, sketch: Optional[PercentileSketch] = None) -> None:
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns = 0
        self._buckets: List[int] = [0] * self._N_BUCKETS
        self.sketch = sketch

    def record(self, latency_ns: int) -> None:
        """Add one observation."""
        self.count += 1
        self.total_ns += latency_ns
        if self.min_ns is None or latency_ns < self.min_ns:
            self.min_ns = latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        # Closed form of "double a 100ns threshold until it covers the
        # latency": bucket i spans (100*2^(i-1), 100*2^i] ns, so the
        # index is the bit length of ceil(latency/100) - 1, clamped to
        # the bucket range.  Equivalent to the obvious loop but O(1).
        base = self._BUCKET_BASE_NS
        quotient = (latency_ns + base - 1) // base
        index = (quotient - 1).bit_length() if quotient > 1 else 0
        if index >= self._N_BUCKETS:
            index = self._N_BUCKETS - 1
        self._buckets[index] += 1
        if self.sketch is not None:
            self.sketch.record(latency_ns)

    @property
    def mean_ns(self) -> float:
        """Mean latency in nanoseconds (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total_ns / self.count

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds — the figures' unit."""
        return self.mean_ns / US

    def percentile(self, fraction: float) -> float:
        """Estimate a percentile (0..1) from the histogram, in ns.

        Returns the upper edge of the bucket containing the requested
        rank, clamped into ``[min_ns, max_ns]`` so the estimate never
        leaves the observed range; good to a factor of two, which
        suffices for shape checks.  ``fraction == 0.0`` reflects the
        recorded minimum.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        min_ns = self.min_ns or 0
        if fraction == 0.0:
            return float(min_ns)
        rank = fraction * self.count
        seen = 0
        threshold = self._BUCKET_BASE_NS
        for bucket_count in self._buckets:
            # Empty leading buckets say nothing about the sample; only a
            # bucket that holds observations can satisfy the rank.
            if bucket_count:
                seen += bucket_count
                if seen >= rank:
                    if threshold < min_ns:
                        return float(min_ns)
                    if threshold > self.max_ns:
                        return float(self.max_ns)
                    return float(threshold)
            threshold *= 2
        return float(self.max_ns)

    def merge(self, other: "LatencyStat") -> None:
        """Fold another accumulator into this one."""
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min_ns is not None and (self.min_ns is None or other.min_ns < self.min_ns):
            self.min_ns = other.min_ns
        self.max_ns = max(self.max_ns, other.max_ns)
        for index, bucket_count in enumerate(other._buckets):
            self._buckets[index] += bucket_count
        # getattr: results unpickled from caches written before the
        # sketch slot existed have no ``sketch`` attribute.
        other_sketch = getattr(other, "sketch", None)
        if self.sketch is not None and other_sketch is not None:
            self.sketch.merge(other_sketch)

    def as_dict(self) -> Dict[str, float]:
        summary = {
            "count": self.count,
            "mean_us": self.mean_us,
            "min_us": (self.min_ns or 0) / US,
            "max_us": self.max_ns / US,
            "p50_us": self.percentile(0.50) / US,
            "p99_us": self.percentile(0.99) / US,
        }
        sketch = getattr(self, "sketch", None)
        if sketch is not None and sketch.count:
            summary["sketch_p50_us"] = sketch.percentile(0.50) / US
            summary["sketch_p99_us"] = sketch.percentile(0.99) / US
        return summary

    def __getstate__(self):
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "buckets": list(self._buckets),
            "sketch": self.sketch,
        }

    def __setstate__(self, state) -> None:
        self.count = state["count"]
        self.total_ns = state["total_ns"]
        self.min_ns = state["min_ns"]
        self.max_ns = state["max_ns"]
        self._buckets = list(state["buckets"])
        # Tolerate payloads pickled before the sketch existed.
        self.sketch = state.get("sketch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LatencyStat n=%d mean=%s>" % (self.count, format_time(round(self.mean_ns)))


class TimelineStat:
    """Time-bucketed mean latencies: latency *as a function of when*.

    Used by the restart/recovery experiments to show how latency
    evolves after a reboot — a dimension the aggregate means hide.
    Buckets are fixed-width in simulated time, keyed relative to the
    measurement start.
    """

    __slots__ = ("bucket_ns", "_sums", "_counts")

    def __init__(self, bucket_ns: int) -> None:
        if bucket_ns <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_ns = bucket_ns
        self._sums: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}

    def record(self, at_ns: int, latency_ns: int) -> None:
        bucket = at_ns // self.bucket_ns
        self._sums[bucket] = self._sums.get(bucket, 0) + latency_ns
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def series(self) -> List[tuple]:
        """Sorted (bucket_start_ns, mean_latency_ns, count) triples."""
        return [
            (
                bucket * self.bucket_ns,
                self._sums[bucket] / self._counts[bucket],
                self._counts[bucket],
            )
            for bucket in sorted(self._sums)
        ]

    def __len__(self) -> int:
        return len(self._sums)


class MetricsCollector:
    """All per-run application-level metrics, with warmup gating.

    ``measuring`` starts False; the simulation driver flips it once
    every warmup record has completed.  Block-level latencies recorded
    while it is False are discarded.

    ``timeline_bucket_ns`` (optional) additionally records read
    latencies into time buckets relative to the measurement start.

    ``sketch_error`` attaches a :class:`PercentileSketch` at that
    relative-error bound to every latency accumulator; ``None`` (the
    default) defers to the ``REPRO_METRICS_SKETCH`` environment
    variable (off unless set).  Sketches ride along with the normal
    inlined-fast-path recording — ``LatencyStat.record`` feeds them —
    and never affect result signatures.
    """

    def __init__(
        self,
        timeline_bucket_ns: Optional[int] = None,
        sketch_error: Optional[float] = None,
    ) -> None:
        if sketch_error is None:
            sketch_error = _sketch_error_from_env()

        def stat() -> LatencyStat:
            if sketch_error is None:
                return LatencyStat()
            return LatencyStat(sketch=PercentileSketch(sketch_error))

        self.measuring = False
        self.read_latency = stat()
        self.write_latency = stat()
        # request-level latencies (whole multi-block operations)
        self.read_request_latency = stat()
        self.write_request_latency = stat()
        self.blocks_read = 0
        self.blocks_written = 0
        self.measurement_start_ns: Optional[int] = None
        self.read_timeline: Optional[TimelineStat] = (
            TimelineStat(timeline_bucket_ns) if timeline_bucket_ns else None
        )

    def record_block(
        self, is_write: bool, latency_ns: int, at_ns: Optional[int] = None
    ) -> None:
        if not self.measuring:
            return
        if is_write:
            self.write_latency.record(latency_ns)
            self.blocks_written += 1
        else:
            self.read_latency.record(latency_ns)
            self.blocks_read += 1
            if self.read_timeline is not None and at_ns is not None:
                origin = self.measurement_start_ns or 0
                self.read_timeline.record(max(0, at_ns - origin), latency_ns)

    def record_request(self, is_write: bool, latency_ns: int) -> None:
        if not self.measuring:
            return
        if is_write:
            self.write_request_latency.record(latency_ns)
        else:
            self.read_request_latency.record(latency_ns)

    def begin_measurement(self, now_ns: int) -> None:
        """Mark the measurement boundary (idempotent on the timestamp).

        The replay driver may enable ``measuring`` early (it gates
        per-record instead), so the timestamp is recorded on the first
        call regardless of the flag's current state.
        """
        self.measuring = True
        if self.measurement_start_ns is None:
            self.measurement_start_ns = now_ns
