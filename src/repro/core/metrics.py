"""Latency statistics.

"In evaluating possible configurations, we use the latency experienced
by the application as the governing metric."  Latencies are recorded
per *block* (the figures' y-axes are per-4KB-block microseconds), split
into read and write, and only during the measurement phase — the
warmup half of every trace is replayed but not recorded.

:class:`LatencyStat` is a streaming accumulator (count/total/min/max
plus log-scale histogram buckets, so percentiles can be estimated
without storing samples).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro._units import US, format_time


class LatencyStat:
    """Streaming latency accumulator with log-scale histogram buckets."""

    #: bucket boundaries in nanoseconds: 100ns, 200ns, 400ns, ... ~ 1.7s
    _BUCKET_BASE_NS = 100
    _N_BUCKETS = 25

    __slots__ = ("count", "total_ns", "min_ns", "max_ns", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns = 0
        self._buckets: List[int] = [0] * self._N_BUCKETS

    def record(self, latency_ns: int) -> None:
        """Add one observation."""
        self.count += 1
        self.total_ns += latency_ns
        if self.min_ns is None or latency_ns < self.min_ns:
            self.min_ns = latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        # Closed form of "double a 100ns threshold until it covers the
        # latency": bucket i spans (100*2^(i-1), 100*2^i] ns, so the
        # index is the bit length of ceil(latency/100) - 1, clamped to
        # the bucket range.  Equivalent to the obvious loop but O(1).
        base = self._BUCKET_BASE_NS
        quotient = (latency_ns + base - 1) // base
        index = (quotient - 1).bit_length() if quotient > 1 else 0
        if index >= self._N_BUCKETS:
            index = self._N_BUCKETS - 1
        self._buckets[index] += 1

    @property
    def mean_ns(self) -> float:
        """Mean latency in nanoseconds (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total_ns / self.count

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds — the figures' unit."""
        return self.mean_ns / US

    def percentile(self, fraction: float) -> float:
        """Estimate a percentile (0..1) from the histogram, in ns.

        Returns the upper edge of the bucket containing the requested
        rank, clamped into ``[min_ns, max_ns]`` so the estimate never
        leaves the observed range; good to a factor of two, which
        suffices for shape checks.  ``fraction == 0.0`` reflects the
        recorded minimum.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        min_ns = self.min_ns or 0
        if fraction == 0.0:
            return float(min_ns)
        rank = fraction * self.count
        seen = 0
        threshold = self._BUCKET_BASE_NS
        for bucket_count in self._buckets:
            # Empty leading buckets say nothing about the sample; only a
            # bucket that holds observations can satisfy the rank.
            if bucket_count:
                seen += bucket_count
                if seen >= rank:
                    if threshold < min_ns:
                        return float(min_ns)
                    if threshold > self.max_ns:
                        return float(self.max_ns)
                    return float(threshold)
            threshold *= 2
        return float(self.max_ns)

    def merge(self, other: "LatencyStat") -> None:
        """Fold another accumulator into this one."""
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min_ns is not None and (self.min_ns is None or other.min_ns < self.min_ns):
            self.min_ns = other.min_ns
        self.max_ns = max(self.max_ns, other.max_ns)
        for index, bucket_count in enumerate(other._buckets):
            self._buckets[index] += bucket_count

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "min_us": (self.min_ns or 0) / US,
            "max_us": self.max_ns / US,
            "p50_us": self.percentile(0.50) / US,
            "p99_us": self.percentile(0.99) / US,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LatencyStat n=%d mean=%s>" % (self.count, format_time(round(self.mean_ns)))


class TimelineStat:
    """Time-bucketed mean latencies: latency *as a function of when*.

    Used by the restart/recovery experiments to show how latency
    evolves after a reboot — a dimension the aggregate means hide.
    Buckets are fixed-width in simulated time, keyed relative to the
    measurement start.
    """

    __slots__ = ("bucket_ns", "_sums", "_counts")

    def __init__(self, bucket_ns: int) -> None:
        if bucket_ns <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_ns = bucket_ns
        self._sums: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}

    def record(self, at_ns: int, latency_ns: int) -> None:
        bucket = at_ns // self.bucket_ns
        self._sums[bucket] = self._sums.get(bucket, 0) + latency_ns
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def series(self) -> List[tuple]:
        """Sorted (bucket_start_ns, mean_latency_ns, count) triples."""
        return [
            (
                bucket * self.bucket_ns,
                self._sums[bucket] / self._counts[bucket],
                self._counts[bucket],
            )
            for bucket in sorted(self._sums)
        ]

    def __len__(self) -> int:
        return len(self._sums)


class MetricsCollector:
    """All per-run application-level metrics, with warmup gating.

    ``measuring`` starts False; the simulation driver flips it once
    every warmup record has completed.  Block-level latencies recorded
    while it is False are discarded.

    ``timeline_bucket_ns`` (optional) additionally records read
    latencies into time buckets relative to the measurement start.
    """

    def __init__(self, timeline_bucket_ns: Optional[int] = None) -> None:
        self.measuring = False
        self.read_latency = LatencyStat()
        self.write_latency = LatencyStat()
        # request-level latencies (whole multi-block operations)
        self.read_request_latency = LatencyStat()
        self.write_request_latency = LatencyStat()
        self.blocks_read = 0
        self.blocks_written = 0
        self.measurement_start_ns: Optional[int] = None
        self.read_timeline: Optional[TimelineStat] = (
            TimelineStat(timeline_bucket_ns) if timeline_bucket_ns else None
        )

    def record_block(
        self, is_write: bool, latency_ns: int, at_ns: Optional[int] = None
    ) -> None:
        if not self.measuring:
            return
        if is_write:
            self.write_latency.record(latency_ns)
            self.blocks_written += 1
        else:
            self.read_latency.record(latency_ns)
            self.blocks_read += 1
            if self.read_timeline is not None and at_ns is not None:
                origin = self.measurement_start_ns or 0
                self.read_timeline.record(max(0, at_ns - origin), latency_ns)

    def record_request(self, is_write: bool, latency_ns: int) -> None:
        if not self.measuring:
            return
        if is_write:
            self.write_request_latency.record(latency_ns)
        else:
            self.read_request_latency.record(latency_ns)

    def begin_measurement(self, now_ns: int) -> None:
        """Mark the measurement boundary (idempotent on the timestamp).

        The replay driver may enable ``measuring`` early (it gates
        per-record instead), so the timestamp is recorded on the first
        call regardless of the flag's current state.
        """
        self.measuring = True
        if self.measurement_start_ns is None:
            self.measurement_start_ns = now_ns
