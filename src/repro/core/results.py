"""Simulation results: everything a run reports."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, List, Optional

from repro._units import SECOND
from repro.core.metrics import LatencyStat, TimelineStat
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.breakdown import LatencyBreakdown


#: Canonical merge rule per :class:`SimulationResults` field.  ``merge``
#: walks ``dataclasses.fields`` and refuses to combine two results when
#: any field is missing here, so a new counter cannot be dropped
#: silently — adding a field without choosing its merge semantics is a
#: loud :class:`~repro.errors.SimulationError`, not a wrong number.
#:
#: Rules (all exact: anything that cannot be reconstructed exactly from
#: the two operands must either be equal on both sides or be supplied
#: via ``overrides`` by a caller that knows the true combined value —
#: the parallel replay engine does exactly that):
#:
#: ``same``             both operands must already be equal
#: ``latency``          fold both :class:`LatencyStat`\ s (integer sums)
#: ``sum``              integer/float addition
#: ``max``              maximum (clock endpoints)
#: ``tier_stats``       sum raw per-tier counters, recompute hit_rate
#: ``per_host``         elementwise row sums; a host active (nonzero
#:                      block counts) on *both* sides cannot be merged
#:                      exactly (rows carry means) and raises
#: ``optional_sum_dict`` ``None``+``None`` is ``None``; otherwise sum
#:                      the dicts key-wise, treating ``None`` as empty
#: ``timeline``         ``None``+``None`` is ``None``; otherwise sum
#:                      per-bucket sums/counts (bucket widths must match)
#: ``none_only``        only ``None``+``None`` merges; anything else
#:                      raises (per-request breakdowns are not mergeable)
#: ``override_or_equal`` derived ratios/means: the caller must supply
#:                      the exact combined value in ``overrides`` unless
#:                      both operands agree
_MERGE_RULES: Dict[str, str] = {
    "config_description": "same",
    "read_latency": "latency",
    "write_latency": "latency",
    "read_request_latency": "latency",
    "write_request_latency": "latency",
    "simulated_ns": "max",
    "measured_ns": "max",
    "records_replayed": "sum",
    "blocks_read": "sum",
    "blocks_written": "sum",
    "tier_stats": "tier_stats",
    "filer_fast_reads": "sum",
    "filer_slow_reads": "sum",
    "filer_writes": "sum",
    "flash_blocks_read": "sum",
    "flash_blocks_written": "sum",
    "flash_write_amplification": "override_or_equal",
    "flash_program_bytes": "sum",
    "flash_erase_count": "sum",
    "flash_write_amp": "override_or_equal",
    "device_lifetime_days": "override_or_equal",
    "flash_admission_stats": "optional_sum_dict",
    "network_utilization": "override_or_equal",
    "read_timeline": "timeline",
    "per_host": "per_host",
    "block_writes": "sum",
    "writes_requiring_invalidation": "sum",
    "copies_invalidated": "sum",
    "invalidation_latency_ns": "sum",
    "breakdown": "none_only",
    "obs_counters": "optional_sum_dict",
}


def _merge_latency(a: LatencyStat, b: LatencyStat) -> LatencyStat:
    merged = LatencyStat()
    merged.merge(a)
    merged.merge(b)
    return merged


def _merge_tier_stats(
    a: Dict[str, Dict[str, float]], b: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    totals: Dict[str, Dict[str, float]] = {}
    for operand in (a, b):
        for tier_name, stats in operand.items():
            tier = totals.setdefault(tier_name, {})
            for key, value in stats.items():
                if key == "hit_rate":
                    continue
                tier[key] = tier.get(key, 0) + value
    for tier in totals.values():
        accesses = tier.get("hits", 0) + tier.get("misses", 0)
        tier["hit_rate"] = (tier.get("hits", 0) / accesses) if accesses else 0.0
    return totals


def _per_host_active(row: Dict[str, float]) -> bool:
    return bool(row.get("read_blocks", 0) or row.get("write_blocks", 0))


def _merge_per_host(
    a: List[Dict[str, float]], b: List[Dict[str, float]]
) -> List[Dict[str, float]]:
    by_host: Dict[int, Dict[str, float]] = {}
    for operand in (a, b):
        for row in operand:
            host = int(row["host"])
            existing = by_host.get(host)
            if existing is None:
                by_host[host] = dict(row)
                continue
            if _per_host_active(existing) and _per_host_active(row):
                raise SimulationError(
                    "cannot merge per_host rows for host %d: both operands "
                    "measured it (latency means are not additive)" % host
                )
            for key, value in row.items():
                if key == "host":
                    continue
                existing[key] = existing.get(key, 0) + value
    return [by_host[host] for host in sorted(by_host)]


def _merge_timeline(
    a: Optional[TimelineStat], b: Optional[TimelineStat]
) -> Optional[TimelineStat]:
    if a is None and b is None:
        return None
    if a is None or b is None or a.bucket_ns != b.bucket_ns:
        raise SimulationError(
            "cannot merge read timelines: both runs must use the same "
            "timeline_bucket_ns (got %r and %r)"
            % (a and a.bucket_ns, b and b.bucket_ns)
        )
    merged = TimelineStat(a.bucket_ns)
    for operand in (a, b):
        for bucket, total in operand._sums.items():
            merged._sums[bucket] = merged._sums.get(bucket, 0) + total
            merged._counts[bucket] = (
                merged._counts.get(bucket, 0) + operand._counts[bucket]
            )
    return merged


def _merge_optional_sum_dict(
    a: Optional[Dict[str, int]], b: Optional[Dict[str, int]]
) -> Optional[Dict[str, int]]:
    if a is None and b is None:
        return None
    merged: Dict[str, int] = dict(a or {})
    for key, value in (b or {}).items():
        merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class SimulationResults:
    """The measured output of one simulation run.

    Latencies are application-observed, per 4 KB block, collected only
    during the measurement phase (after warmup), exactly as the paper
    reports them.  ``tier_stats`` holds the raw per-cache-tier counters
    (keys ``ram``/``flash`` for the layered architectures, ``unified``
    for the unified one), aggregated across hosts.
    """

    config_description: str
    read_latency: LatencyStat
    write_latency: LatencyStat
    read_request_latency: LatencyStat
    write_request_latency: LatencyStat
    #: simulated nanoseconds consumed by the whole trace replay
    simulated_ns: int
    #: simulated nanoseconds of the measurement phase only
    measured_ns: int
    records_replayed: int
    blocks_read: int
    blocks_written: int
    tier_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # filer-side traffic (measurement phase)
    filer_fast_reads: int = 0
    filer_slow_reads: int = 0
    filer_writes: int = 0
    # flash device traffic (measurement phase, summed over hosts)
    flash_blocks_read: int = 0
    flash_blocks_written: int = 0
    #: mean write amplification across hosts' FTL-modeled flash devices
    #: (None unless the run used SimConfig.ftl_model)
    flash_write_amplification: Optional[float] = None
    # --- endurance metrics (measurement phase) ---
    #: bytes physically programmed into flash (GC relocations included
    #: with the FTL model; host traffic only without)
    flash_program_bytes: int = 0
    #: flash erase-block erases (0 without the FTL model)
    flash_erase_count: int = 0
    #: measurement-window write amplification: flash page programs per
    #: host page write, fleet-aggregated (None without the FTL model)
    flash_write_amp: Optional[float] = None
    #: projected device lifetime at the measured erase rate, against the
    #: rated_erase_cycles budget (inf with zero erases; None without the
    #: FTL model)
    device_lifetime_days: Optional[float] = None
    #: flash admission verdict counters (checks/admits/rejects summed
    #: over hosts; None under the paper-default always-admit policy)
    flash_admission_stats: Optional[Dict[str, int]] = None
    # network
    network_utilization: float = 0.0
    #: optional read-latency timeline (present when the run was invoked
    #: with timeline_bucket_ns); see repro.core.metrics.TimelineStat
    read_timeline: Optional["TimelineStat"] = None
    #: per-host latency breakdown (one dict per host)
    per_host: List[Dict[str, float]] = field(default_factory=list)
    # consistency
    block_writes: int = 0
    writes_requiring_invalidation: int = 0
    copies_invalidated: int = 0
    #: simulated nanoseconds the measured write paths stalled on
    #: directory lookups and invalidate messages (0 at the paper's
    #: instant-invalidation default, i.e. timing.directory zero)
    invalidation_latency_ns: int = 0
    #: per-request latency breakdown (present when the run carried an
    #: Observation — run_simulation(obs=...) or SimConfig.trace_events)
    breakdown: Optional["LatencyBreakdown"] = None
    #: per-event-kind trace counters from the same Observation
    obs_counters: Optional[Dict[str, int]] = None

    # --- merging ----------------------------------------------------------

    def merge(
        self,
        other: "SimulationResults",
        *,
        overrides: Optional[Dict[str, object]] = None,
    ) -> "SimulationResults":
        """Combine two runs' results into one, field by field.

        Every dataclass field is merged by its entry in
        :data:`_MERGE_RULES`; a field without an entry raises
        :class:`~repro.errors.SimulationError` so new counters cannot
        silently fall out of aggregated reports.  All rules are exact
        (integer sums, maxima, equality) — fields that are *derived*
        ratios or means (``network_utilization``,
        ``flash_write_amplification``, ``flash_write_amp``,
        ``device_lifetime_days``) cannot generally be reconstructed
        from two finished results, so they must either agree on both
        sides or be supplied through ``overrides`` by a caller that
        recomputed the true combined value (the parallel replay engine
        ships the raw integer inputs and does exactly that).

        ``overrides`` wins over the per-field rule for any field named
        in it.  Percentile sketches attached to latency accumulators do
        not survive a merge (they never participate in signatures).
        """
        overrides = overrides or {}
        unknown = set(overrides) - {spec.name for spec in fields(type(self))}
        if unknown:
            raise SimulationError(
                "merge overrides name unknown fields: %s" % ", ".join(sorted(unknown))
            )
        merged: Dict[str, object] = {}
        for spec in fields(type(self)):
            name = spec.name
            if name in overrides:
                merged[name] = overrides[name]
                continue
            rule = _MERGE_RULES.get(name)
            if rule is None:
                raise SimulationError(
                    "SimulationResults.merge has no rule for field %r — "
                    "add it to repro.core.results._MERGE_RULES (this is "
                    "deliberate: unmerged counters would silently report "
                    "only one side's value)" % name
                )
            a, b = getattr(self, name), getattr(other, name)
            if rule == "same":
                if a != b:
                    raise SimulationError(
                        "cannot merge results with differing %r: %r != %r"
                        % (name, a, b)
                    )
                merged[name] = a
            elif rule == "latency":
                merged[name] = _merge_latency(a, b)
            elif rule == "sum":
                merged[name] = a + b
            elif rule == "max":
                merged[name] = max(a, b)
            elif rule == "tier_stats":
                merged[name] = _merge_tier_stats(a, b)
            elif rule == "per_host":
                merged[name] = _merge_per_host(a, b)
            elif rule == "optional_sum_dict":
                merged[name] = _merge_optional_sum_dict(a, b)
            elif rule == "timeline":
                merged[name] = _merge_timeline(a, b)
            elif rule == "none_only":
                if a is not None or b is not None:
                    raise SimulationError(
                        "cannot merge results carrying %r (per-request "
                        "breakdowns are not mergeable; rerun without an "
                        "Observation or merge upstream)" % name
                    )
                merged[name] = None
            elif rule == "override_or_equal":
                if a != b and not (a is None and b is None):
                    raise SimulationError(
                        "field %r is a derived ratio and differs between "
                        "operands (%r != %r): the caller must supply the "
                        "combined value via overrides" % (name, a, b)
                    )
                merged[name] = a
            else:  # pragma: no cover - rule table typo guard
                raise SimulationError("unknown merge rule %r for field %r" % (rule, name))
        return type(self)(**merged)

    @classmethod
    def merge_all(
        cls,
        parts: List["SimulationResults"],
        *,
        overrides: Optional[Dict[str, object]] = None,
    ) -> "SimulationResults":
        """Left-fold :meth:`merge` over ``parts`` (at least one).

        ``overrides`` is applied on every fold, so the supplied combined
        values land in the final result regardless of fold order.
        """
        if not parts:
            raise SimulationError("merge_all needs at least one result")
        merged = parts[0]
        if len(parts) == 1 and overrides:
            merged = merged.merge(merged._empty_like(), overrides=overrides)
        for part in parts[1:]:
            merged = merged.merge(part, overrides=overrides)
        return merged

    def _empty_like(self) -> "SimulationResults":
        """A zero-contribution result mergeable with ``self`` (identity
        element for every exact rule; derived fields copy over)."""
        return type(self)(
            config_description=self.config_description,
            read_latency=LatencyStat(),
            write_latency=LatencyStat(),
            read_request_latency=LatencyStat(),
            write_request_latency=LatencyStat(),
            simulated_ns=0,
            measured_ns=0,
            records_replayed=0,
            blocks_read=0,
            blocks_written=0,
            tier_stats={},
            flash_write_amplification=self.flash_write_amplification,
            flash_write_amp=self.flash_write_amp,
            device_lifetime_days=self.device_lifetime_days,
            network_utilization=self.network_utilization,
            read_timeline=None if self.read_timeline is None else TimelineStat(
                self.read_timeline.bucket_ns
            ),
        )

    # --- headline metrics -------------------------------------------------

    @property
    def read_latency_us(self) -> float:
        """Mean application read latency, µs/block (the figures' metric)."""
        return self.read_latency.mean_us

    @property
    def write_latency_us(self) -> float:
        """Mean application write latency, µs/block."""
        return self.write_latency.mean_us

    def hit_rate(self, tier: str) -> Optional[float]:
        """Hit rate of a cache tier (``ram``/``flash``/``unified``), or
        None when that tier does not exist in this configuration."""
        stats = self.tier_stats.get(tier)
        if stats is None:
            return None
        return stats.get("hit_rate")

    @property
    def invalidation_fraction(self) -> float:
        """Fraction of measured block writes requiring invalidations
        (Figures 11/12)."""
        if self.block_writes == 0:
            return 0.0
        return self.writes_requiring_invalidation / self.block_writes

    @property
    def filer_reads(self) -> int:
        return self.filer_fast_reads + self.filer_slow_reads

    # --- throughput (measurement phase) -------------------------------

    @property
    def blocks_per_second(self) -> float:
        """Application block operations per simulated second."""
        if self.measured_ns <= 0:
            return 0.0
        total = self.read_latency.count + self.write_latency.count
        return total * (SECOND / self.measured_ns)

    @property
    def throughput_mb_s(self) -> float:
        """Application data rate in MB/s (4 KB blocks)."""
        return self.blocks_per_second * 4096 / (1024 * 1024)

    # --- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            "config:            %s" % self.config_description,
            "simulated time:    %.3f s (measured %.3f s)"
            % (self.simulated_ns / SECOND, self.measured_ns / SECOND),
            "records replayed:  %d" % self.records_replayed,
            "read latency:      %.1f us/block over %d blocks"
            % (self.read_latency_us, self.read_latency.count),
            "write latency:     %.1f us/block over %d blocks"
            % (self.write_latency_us, self.write_latency.count),
            "throughput:        %.0f blocks/s (%.1f MB/s)"
            % (self.blocks_per_second, self.throughput_mb_s),
        ]
        for tier in ("ram", "flash", "unified"):
            rate = self.hit_rate(tier)
            if rate is not None:
                lines.append("%s hit rate:%s%.1f%%" % (tier, " " * (10 - len(tier)), 100 * rate))
        lines.append(
            "filer:             %d reads (%.0f%% fast), %d writes"
            % (
                self.filer_reads,
                100 * (self.filer_fast_reads / self.filer_reads) if self.filer_reads else 0.0,
                self.filer_writes,
            )
        )
        if self.flash_blocks_read or self.flash_blocks_written:
            lines.append(
                "flash traffic:     %d block reads, %d block writes"
                % (self.flash_blocks_read, self.flash_blocks_written)
            )
        if self.flash_program_bytes:
            endurance = "flash endurance:   %.1f MB programmed" % (
                self.flash_program_bytes / (1024 * 1024)
            )
            if self.flash_write_amp is not None:
                endurance += ", WA %.2f, %d erases" % (
                    self.flash_write_amp, self.flash_erase_count
                )
            if self.device_lifetime_days is not None:
                if self.device_lifetime_days == float("inf"):
                    endurance += ", lifetime inf"
                else:
                    endurance += ", lifetime %.0f days" % self.device_lifetime_days
            lines.append(endurance)
        if self.flash_admission_stats is not None:
            stats = self.flash_admission_stats
            lines.append(
                "flash admission:   %d checks, %d admits, %d rejects"
                % (
                    stats.get("checks", 0),
                    stats.get("admits", 0),
                    stats.get("rejects", 0),
                )
            )
        lines.append("network util:      %.1f%%" % (100 * self.network_utilization))
        if len(self.per_host) > 1:
            for row in self.per_host:
                lines.append(
                    "  host %d:          read %.1f us (%d), write %.1f us (%d)"
                    % (
                        row["host"],
                        row["read_us"],
                        row["read_blocks"],
                        row["write_us"],
                        row["write_blocks"],
                    )
                )
        if self.block_writes:
            lines.append(
                "invalidations:     %.1f%% of %d block writes"
                % (100 * self.invalidation_fraction, self.block_writes)
            )
        if self.invalidation_latency_ns:
            lines.append(
                "invalidation time: %.3f ms of directory stalls"
                % (self.invalidation_latency_ns / 1_000_000)
            )
        if self.breakdown is not None:
            lines.append("latency breakdown (us/block):")
            mean_read = self.breakdown.mean_read_us()
            mean_write = self.breakdown.mean_write_us()
            for component in mean_read:
                read_us = mean_read[component]
                write_us = mean_write[component]
                if read_us == 0.0 and write_us == 0.0:
                    continue
                lines.append(
                    "  %-13s read %8.2f   write %8.2f"
                    % (component, read_us, write_us)
                )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to plain types (for JSON reports in EXPERIMENTS.md)."""
        payload: Dict[str, object] = {
            "config": self.config_description,
            "read_latency_us": self.read_latency_us,
            "write_latency_us": self.write_latency_us,
            "simulated_s": self.simulated_ns / SECOND,
            "tier_stats": self.tier_stats,
            "filer_fast_reads": self.filer_fast_reads,
            "filer_slow_reads": self.filer_slow_reads,
            "filer_writes": self.filer_writes,
            "network_utilization": self.network_utilization,
            "invalidation_fraction": self.invalidation_fraction,
            "flash_program_bytes": self.flash_program_bytes,
            "flash_erase_count": self.flash_erase_count,
        }
        if self.invalidation_latency_ns:
            payload["invalidation_latency_ns"] = self.invalidation_latency_ns
        if self.flash_write_amp is not None:
            payload["flash_write_amp"] = self.flash_write_amp
        if self.device_lifetime_days is not None:
            payload["device_lifetime_days"] = self.device_lifetime_days
        if self.flash_admission_stats is not None:
            payload["flash_admission_stats"] = dict(self.flash_admission_stats)
        if self.breakdown is not None:
            payload["breakdown"] = self.breakdown.as_dict()
        if self.obs_counters is not None:
            payload["obs_counters"] = dict(self.obs_counters)
        return payload
