"""Simulation results: everything a run reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro._units import SECOND
from repro.core.metrics import LatencyStat, TimelineStat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.breakdown import LatencyBreakdown


@dataclass
class SimulationResults:
    """The measured output of one simulation run.

    Latencies are application-observed, per 4 KB block, collected only
    during the measurement phase (after warmup), exactly as the paper
    reports them.  ``tier_stats`` holds the raw per-cache-tier counters
    (keys ``ram``/``flash`` for the layered architectures, ``unified``
    for the unified one), aggregated across hosts.
    """

    config_description: str
    read_latency: LatencyStat
    write_latency: LatencyStat
    read_request_latency: LatencyStat
    write_request_latency: LatencyStat
    #: simulated nanoseconds consumed by the whole trace replay
    simulated_ns: int
    #: simulated nanoseconds of the measurement phase only
    measured_ns: int
    records_replayed: int
    blocks_read: int
    blocks_written: int
    tier_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # filer-side traffic (measurement phase)
    filer_fast_reads: int = 0
    filer_slow_reads: int = 0
    filer_writes: int = 0
    # flash device traffic (measurement phase, summed over hosts)
    flash_blocks_read: int = 0
    flash_blocks_written: int = 0
    #: mean write amplification across hosts' FTL-modeled flash devices
    #: (None unless the run used SimConfig.ftl_model)
    flash_write_amplification: Optional[float] = None
    # --- endurance metrics (measurement phase) ---
    #: bytes physically programmed into flash (GC relocations included
    #: with the FTL model; host traffic only without)
    flash_program_bytes: int = 0
    #: flash erase-block erases (0 without the FTL model)
    flash_erase_count: int = 0
    #: measurement-window write amplification: flash page programs per
    #: host page write, fleet-aggregated (None without the FTL model)
    flash_write_amp: Optional[float] = None
    #: projected device lifetime at the measured erase rate, against the
    #: rated_erase_cycles budget (inf with zero erases; None without the
    #: FTL model)
    device_lifetime_days: Optional[float] = None
    #: flash admission verdict counters (checks/admits/rejects summed
    #: over hosts; None under the paper-default always-admit policy)
    flash_admission_stats: Optional[Dict[str, int]] = None
    # network
    network_utilization: float = 0.0
    #: optional read-latency timeline (present when the run was invoked
    #: with timeline_bucket_ns); see repro.core.metrics.TimelineStat
    read_timeline: Optional["TimelineStat"] = None
    #: per-host latency breakdown (one dict per host)
    per_host: List[Dict[str, float]] = field(default_factory=list)
    # consistency
    block_writes: int = 0
    writes_requiring_invalidation: int = 0
    copies_invalidated: int = 0
    #: simulated nanoseconds the measured write paths stalled on
    #: directory lookups and invalidate messages (0 at the paper's
    #: instant-invalidation default, i.e. timing.directory zero)
    invalidation_latency_ns: int = 0
    #: per-request latency breakdown (present when the run carried an
    #: Observation — run_simulation(obs=...) or SimConfig.trace_events)
    breakdown: Optional["LatencyBreakdown"] = None
    #: per-event-kind trace counters from the same Observation
    obs_counters: Optional[Dict[str, int]] = None

    # --- headline metrics -------------------------------------------------

    @property
    def read_latency_us(self) -> float:
        """Mean application read latency, µs/block (the figures' metric)."""
        return self.read_latency.mean_us

    @property
    def write_latency_us(self) -> float:
        """Mean application write latency, µs/block."""
        return self.write_latency.mean_us

    def hit_rate(self, tier: str) -> Optional[float]:
        """Hit rate of a cache tier (``ram``/``flash``/``unified``), or
        None when that tier does not exist in this configuration."""
        stats = self.tier_stats.get(tier)
        if stats is None:
            return None
        return stats.get("hit_rate")

    @property
    def invalidation_fraction(self) -> float:
        """Fraction of measured block writes requiring invalidations
        (Figures 11/12)."""
        if self.block_writes == 0:
            return 0.0
        return self.writes_requiring_invalidation / self.block_writes

    @property
    def filer_reads(self) -> int:
        return self.filer_fast_reads + self.filer_slow_reads

    # --- throughput (measurement phase) -------------------------------

    @property
    def blocks_per_second(self) -> float:
        """Application block operations per simulated second."""
        if self.measured_ns <= 0:
            return 0.0
        total = self.read_latency.count + self.write_latency.count
        return total * (SECOND / self.measured_ns)

    @property
    def throughput_mb_s(self) -> float:
        """Application data rate in MB/s (4 KB blocks)."""
        return self.blocks_per_second * 4096 / (1024 * 1024)

    # --- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            "config:            %s" % self.config_description,
            "simulated time:    %.3f s (measured %.3f s)"
            % (self.simulated_ns / SECOND, self.measured_ns / SECOND),
            "records replayed:  %d" % self.records_replayed,
            "read latency:      %.1f us/block over %d blocks"
            % (self.read_latency_us, self.read_latency.count),
            "write latency:     %.1f us/block over %d blocks"
            % (self.write_latency_us, self.write_latency.count),
            "throughput:        %.0f blocks/s (%.1f MB/s)"
            % (self.blocks_per_second, self.throughput_mb_s),
        ]
        for tier in ("ram", "flash", "unified"):
            rate = self.hit_rate(tier)
            if rate is not None:
                lines.append("%s hit rate:%s%.1f%%" % (tier, " " * (10 - len(tier)), 100 * rate))
        lines.append(
            "filer:             %d reads (%.0f%% fast), %d writes"
            % (
                self.filer_reads,
                100 * (self.filer_fast_reads / self.filer_reads) if self.filer_reads else 0.0,
                self.filer_writes,
            )
        )
        if self.flash_blocks_read or self.flash_blocks_written:
            lines.append(
                "flash traffic:     %d block reads, %d block writes"
                % (self.flash_blocks_read, self.flash_blocks_written)
            )
        if self.flash_program_bytes:
            endurance = "flash endurance:   %.1f MB programmed" % (
                self.flash_program_bytes / (1024 * 1024)
            )
            if self.flash_write_amp is not None:
                endurance += ", WA %.2f, %d erases" % (
                    self.flash_write_amp, self.flash_erase_count
                )
            if self.device_lifetime_days is not None:
                if self.device_lifetime_days == float("inf"):
                    endurance += ", lifetime inf"
                else:
                    endurance += ", lifetime %.0f days" % self.device_lifetime_days
            lines.append(endurance)
        if self.flash_admission_stats is not None:
            stats = self.flash_admission_stats
            lines.append(
                "flash admission:   %d checks, %d admits, %d rejects"
                % (
                    stats.get("checks", 0),
                    stats.get("admits", 0),
                    stats.get("rejects", 0),
                )
            )
        lines.append("network util:      %.1f%%" % (100 * self.network_utilization))
        if len(self.per_host) > 1:
            for row in self.per_host:
                lines.append(
                    "  host %d:          read %.1f us (%d), write %.1f us (%d)"
                    % (
                        row["host"],
                        row["read_us"],
                        row["read_blocks"],
                        row["write_us"],
                        row["write_blocks"],
                    )
                )
        if self.block_writes:
            lines.append(
                "invalidations:     %.1f%% of %d block writes"
                % (100 * self.invalidation_fraction, self.block_writes)
            )
        if self.invalidation_latency_ns:
            lines.append(
                "invalidation time: %.3f ms of directory stalls"
                % (self.invalidation_latency_ns / 1_000_000)
            )
        if self.breakdown is not None:
            lines.append("latency breakdown (us/block):")
            mean_read = self.breakdown.mean_read_us()
            mean_write = self.breakdown.mean_write_us()
            for component in mean_read:
                read_us = mean_read[component]
                write_us = mean_write[component]
                if read_us == 0.0 and write_us == 0.0:
                    continue
                lines.append(
                    "  %-13s read %8.2f   write %8.2f"
                    % (component, read_us, write_us)
                )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to plain types (for JSON reports in EXPERIMENTS.md)."""
        payload: Dict[str, object] = {
            "config": self.config_description,
            "read_latency_us": self.read_latency_us,
            "write_latency_us": self.write_latency_us,
            "simulated_s": self.simulated_ns / SECOND,
            "tier_stats": self.tier_stats,
            "filer_fast_reads": self.filer_fast_reads,
            "filer_slow_reads": self.filer_slow_reads,
            "filer_writes": self.filer_writes,
            "network_utilization": self.network_utilization,
            "invalidation_fraction": self.invalidation_fraction,
            "flash_program_bytes": self.flash_program_bytes,
            "flash_erase_count": self.flash_erase_count,
        }
        if self.invalidation_latency_ns:
            payload["invalidation_latency_ns"] = self.invalidation_latency_ns
        if self.flash_write_amp is not None:
            payload["flash_write_amp"] = self.flash_write_amp
        if self.device_lifetime_days is not None:
            payload["device_lifetime_days"] = self.device_lifetime_days
        if self.flash_admission_stats is not None:
            payload["flash_admission_stats"] = dict(self.flash_admission_stats)
        if self.breakdown is not None:
            payload["breakdown"] = self.breakdown.as_dict()
        if self.obs_counters is not None:
            payload["obs_counters"] = dict(self.obs_counters)
        return payload
