"""Simulation configuration: Table 1's timing model plus the design-space knobs."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Union

from repro import policies as policy_registry
from repro._units import GB, NS, blocks_for_bytes, format_bytes
from repro.core.architectures import Architecture
from repro.core.policies import WritebackPolicy
from repro.errors import ConfigError
from repro.filer.timing import FilerTiming
from repro.flash.timing import FlashTiming
from repro.net.directory import DirectoryTiming
from repro.net.link import NetworkTiming
from repro.policies.admission import AdmissionPolicy
from repro.policies.cleaning import CleaningPolicy


@dataclass(frozen=True)
class TimingModel:
    """All device timings (Table 1 of the paper).

    RAM is 400 ns per 4 KB block ("corresponding to roughly 10 GB/sec
    memory bandwidth"); the flash, network, and filer components carry
    their own timing dataclasses.
    """

    ram_read_ns: int = 400 * NS
    ram_write_ns: int = 400 * NS
    flash: FlashTiming = field(default_factory=FlashTiming.paper_default)
    network: NetworkTiming = field(default_factory=NetworkTiming.paper_default)
    filer: FilerTiming = field(default_factory=FilerTiming.paper_default)
    #: consistency-directory latencies (§3.8 extension); both zero by
    #: default — the paper's instant-invalidation model.
    directory: DirectoryTiming = field(default_factory=DirectoryTiming.paper_default)

    def __post_init__(self) -> None:
        if self.ram_read_ns < 0 or self.ram_write_ns < 0:
            raise ConfigError("RAM latencies must be non-negative")

    @classmethod
    def paper_default(cls) -> "TimingModel":
        """Exactly Table 1."""
        return cls()

    def with_flash(self, flash: FlashTiming) -> "TimingModel":
        return replace(self, flash=flash)

    def with_prefetch_rate(self, rate: float) -> "TimingModel":
        return replace(self, filer=self.filer.with_prefetch_rate(rate))

    def with_directory(self, directory: DirectoryTiming) -> "TimingModel":
        return replace(self, directory=directory)

    def as_table(self) -> str:
        """Render Table 1 ("Timing Model Parameters")."""
        rows = [
            ("RAM read", "%d ns / 4K block" % self.ram_read_ns),
            ("RAM write", "%d ns / 4K block" % self.ram_write_ns),
            ("Flash read", "%.1f us / 4K block" % (self.flash.read_ns / 1000)),
            ("Flash write", "%.1f us / 4K block" % (self.flash.write_ns / 1000)),
            ("Network base latency", "%.1f us / packet" % (self.network.base_latency_ns / 1000)),
            ("Network data latency", "%g ns / bit" % self.network.per_bit_ns),
            ("File server fast read", "%.1f us / 4K block" % (self.filer.fast_read_ns / 1000)),
            ("File server slow read", "%.1f us / 4K block" % (self.filer.slow_read_ns / 1000)),
            ("File server write", "%.1f us / 4K block" % (self.filer.write_ns / 1000)),
            ("File server fast read rate", "%d%%" % round(100 * self.filer.fast_read_rate)),
        ]
        if not self.directory.is_instant:
            # Extension rows — Table 1 proper stays ten lines at the
            # paper default (the directory is instant there).
            rows.append(
                ("Directory lookup", "%.1f us / write" % (self.directory.lookup_ns / 1000))
            )
            rows.append(
                ("Directory invalidate", "%.1f us / copy" % (self.directory.invalidate_ns / 1000))
            )
        width = max(len(name) for name, _value in rows)
        return "\n".join("%-*s  %s" % (width, name, value) for name, value in rows)


@dataclass(frozen=True)
class SimConfig:
    """One point in the paper's design space.

    Defaults are the paper's baseline: the naive architecture, 8 GB of
    RAM available for file caching, 64 GB of flash, a one-second
    periodic RAM writeback policy, asynchronous write-through for the
    flash (§7.1's chosen combination), Table 1 timings, and a
    non-persistent flash cache.
    """

    architecture: Architecture = Architecture.NAIVE
    ram_bytes: int = 8 * GB
    flash_bytes: int = 64 * GB
    ram_policy: WritebackPolicy = field(default_factory=lambda: WritebackPolicy.periodic(1))
    flash_policy: WritebackPolicy = field(default_factory=WritebackPolicy.asynchronous)
    timing: TimingModel = field(default_factory=TimingModel.paper_default)
    #: §7.8: charge two flash writes per block (data + metadata)
    persistent_flash: bool = False
    #: 0 = unlimited internal parallelism (pure latency server)
    flash_parallelism: int = 0
    #: Extension (§8 future work): model the flash translation layer
    #: explicitly — garbage-collection relocations and erases inflate
    #: write latency instead of being free.  Implies parallelism 0.
    ftl_model: bool = False
    #: Overprovisioned fraction of the FTL-modeled device.
    ftl_overprovision: float = 0.07
    #: Extension (§3.8): charge each cross-host invalidation one
    #: notification packet on the victim host's filer→host wire (the
    #: consistency-protocol traffic the paper deliberately leaves
    #: unmodeled; it only counts invalidations).
    model_invalidation_traffic: bool = False
    #: eviction policy name for all stores ("lru" is the paper's choice)
    eviction_policy: str = "lru"
    #: flash admission policy — a ``repro.policies`` spec string
    #: (``"always"``, ``"probationary:2"``, ``"budget:8M"``) or an
    #: :class:`~repro.policies.admission.AdmissionPolicy` instance;
    #: normalized to the instance.  The paper default admits everything.
    flash_admission: Union[str, AdmissionPolicy] = "always"
    #: flash cleaning policy — spec string (``"periodic"``,
    #: ``"alru:30"``, ``"acp:0.5:0.25"``) or a
    #: :class:`~repro.policies.cleaning.CleaningPolicy` instance;
    #: normalized to the instance.  The paper default keeps the flash
    #: writeback policy's own periodic syncer.
    flash_cleaning: Union[str, CleaningPolicy] = "periodic"
    #: rated program/erase cycles per flash block for the
    #: ``device_lifetime_days`` estimate (MLC-class default; only
    #: meaningful with ``ftl_model``).
    ftl_rated_erase_cycles: int = 3000
    #: run the :mod:`repro.invariants` sanitizer during replay (also
    #: enabled by REPRO_CHECK_INVARIANTS=1 or the CLI's ``--check``)
    check_invariants: bool = False
    #: trace records between interval checks when the sanitizer is on
    invariant_check_interval: int = 256
    #: attach a :class:`repro.obs.Observation` to the run — structured
    #: event tracing plus the per-request latency breakdown, returned on
    #: ``SimulationResults.breakdown`` / ``.obs_counters``.  Use this
    #: (rather than ``run_simulation(obs=...)``) when the run happens in
    #: a sweep worker process and the observation must travel back
    #: inside the picklable results.
    trace_events: bool = False
    #: master seed for the simulator's stochastic choices (filer prefetch)
    seed: int = 7
    #: replay warmup records but exclude them from statistics (the
    #: paper's default).  The cold-start experiments instead remove the
    #: warmup with Trace.without_warmup().
    name: str = ""

    def __post_init__(self) -> None:
        # Normalize the policy fields: spec strings and instances are
        # both accepted, instances are stored (strings for eviction,
        # which is a per-store mutable object).
        object.__setattr__(
            self, "ram_policy",
            policy_registry.resolve("writeback", self.ram_policy),
        )
        object.__setattr__(
            self, "flash_policy",
            policy_registry.resolve("writeback", self.flash_policy),
        )
        if not isinstance(self.eviction_policy, str):
            raise ConfigError(
                "SimConfig.eviction_policy takes the spec string (eviction "
                "policies are per-store mutable objects); got %r"
                % type(self.eviction_policy).__name__
            )
        object.__setattr__(
            self, "eviction_policy",
            policy_registry.resolve("eviction", self.eviction_policy),
        )
        object.__setattr__(
            self, "flash_admission",
            policy_registry.resolve("admission", self.flash_admission),
        )
        object.__setattr__(
            self, "flash_cleaning",
            policy_registry.resolve("cleaning", self.flash_cleaning),
        )
        if self.ram_bytes < 0 or self.flash_bytes < 0:
            raise ConfigError("cache sizes must be non-negative")
        if self.ram_bytes == 0 and self.flash_bytes == 0:
            # Permitted: a cacheless client (useful as an extreme baseline).
            pass
        if self.flash_parallelism < 0:
            raise ConfigError("flash parallelism must be >= 0")
        if not 0.0 <= self.ftl_overprovision < 1.0:
            raise ConfigError("FTL overprovision must be in [0, 1)")
        if self.invariant_check_interval < 1:
            raise ConfigError("invariant check interval must be >= 1")
        if self.ftl_rated_erase_cycles < 1:
            raise ConfigError("rated erase cycles must be >= 1")
        if self.architecture.needs_integrated_management:
            # Unified/exclusive manage flash inside the single LRU chain;
            # the admission/cleaning hooks live in the layered stacks.
            if not self.flash_admission.is_always:
                raise ConfigError(
                    "flash admission policies apply to the layered "
                    "architectures (naive, lookaside); the %s architecture "
                    "has no separate flash fill path" % self.architecture
                )
            if not self.flash_cleaning.is_periodic:
                raise ConfigError(
                    "flash cleaning policies apply to the layered "
                    "architectures (naive, lookaside); the %s architecture "
                    "has no separate flash syncer" % self.architecture
                )
        if self.ftl_model and self.flash_parallelism > 0:
            raise ConfigError("the FTL model serializes internally; "
                              "flash_parallelism must be 0 with ftl_model")
        if (
            self.architecture.ram_is_subset_of_flash
            and self.flash_bytes > 0
            and self.flash_blocks < self.ram_blocks
        ):
            raise ConfigError(
                "the %s architecture keeps RAM a subset of flash, so flash "
                "(%s) must be at least as large as RAM (%s)"
                % (
                    self.architecture,
                    format_bytes(self.flash_bytes),
                    format_bytes(self.ram_bytes),
                )
            )

    # --- derived geometry ---------------------------------------------

    @property
    def ram_blocks(self) -> int:
        return blocks_for_bytes(self.ram_bytes)

    @property
    def flash_blocks(self) -> int:
        return blocks_for_bytes(self.flash_bytes)

    @property
    def has_flash(self) -> bool:
        return self.flash_bytes > 0

    @property
    def has_ram(self) -> bool:
        return self.ram_bytes > 0

    # --- variants ---------------------------------------------------------

    def with_policies(
        self,
        *args: WritebackPolicy,
        eviction: object = None,
        ram_writeback: object = None,
        flash_writeback: object = None,
        flash_admission: object = None,
        flash_cleaning: object = None,
    ) -> "SimConfig":
        """A copy with any subset of the policy axes replaced.

        Each axis accepts a spec string or a policy instance (see
        :mod:`repro.policies`)::

            config.with_policies(ram_writeback="p1", flash_writeback="a",
                                 flash_admission="probationary:2",
                                 flash_cleaning="alru:30")

        The pre-registry positional form ``with_policies(ram, flash)``
        still works but warns; it maps to
        ``ram_writeback=``/``flash_writeback=``.
        """
        if args:
            warnings.warn(
                "with_policies(ram, flash) with positional writeback "
                "policies is deprecated; use with_policies("
                "ram_writeback=..., flash_writeback=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2:
                raise ConfigError(
                    "with_policies takes at most two positional "
                    "(writeback) policies"
                )
            if ram_writeback is not None or (
                len(args) == 2 and flash_writeback is not None
            ):
                raise ConfigError(
                    "with_policies got writeback policies both "
                    "positionally and by keyword"
                )
            ram_writeback = args[0]
            if len(args) == 2:
                flash_writeback = args[1]
        overrides = {}
        if eviction is not None:
            overrides["eviction_policy"] = eviction
        if ram_writeback is not None:
            overrides["ram_policy"] = ram_writeback
        if flash_writeback is not None:
            overrides["flash_policy"] = flash_writeback
        if flash_admission is not None:
            overrides["flash_admission"] = flash_admission
        if flash_cleaning is not None:
            overrides["flash_cleaning"] = flash_cleaning
        return replace(self, **overrides)

    def with_architecture(self, architecture: Architecture) -> "SimConfig":
        return replace(self, architecture=architecture)

    def with_sizes(self, ram_bytes: int, flash_bytes: int) -> "SimConfig":
        return replace(self, ram_bytes=ram_bytes, flash_bytes=flash_bytes)

    def with_timing(self, timing: TimingModel) -> "SimConfig":
        return replace(self, timing=timing)

    def with_overrides(self, **overrides: object) -> "SimConfig":
        """A copy with the named fields replaced, validated.

        The sweep-friendly variant constructor: unknown field names
        raise :class:`~repro.errors.ConfigError` (instead of
        ``dataclasses.replace``'s ``TypeError``) and the copy re-runs
        the full ``__post_init__`` consistency validation, so a sweep
        over generated override dictionaries fails loudly at the bad
        point rather than simulating a config it never meant to build.
        """
        valid = self.__dataclass_fields__
        unknown = [name for name in overrides if name not in valid]
        if unknown:
            raise ConfigError(
                "unknown SimConfig field(s) %s; valid fields: %s"
                % (", ".join(sorted(unknown)), ", ".join(sorted(valid)))
            )
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line description for experiment logs.

        Byte-identical to the pre-registry format at the paper-default
        admission/cleaning policies (the differential harness folds this
        string into result signatures).
        """
        extras = " persistent" if self.persistent_flash else ""
        if not self.flash_admission.is_always:
            extras += " admission=%s" % self.flash_admission.label
        if not self.flash_cleaning.is_periodic:
            extras += " cleaning=%s" % self.flash_cleaning.label
        return "%s ram=%s flash=%s ram_policy=%s flash_policy=%s%s" % (
            self.architecture,
            format_bytes(self.ram_bytes),
            format_bytes(self.flash_bytes),
            self.ram_policy,
            self.flash_policy,
            extras,
        )

    # --- presets ----------------------------------------------------------

    @classmethod
    def baseline(cls) -> "SimConfig":
        """The paper's full-size baseline (8 GB RAM, 64 GB flash)."""
        return cls()

    @classmethod
    def baseline_scaled(cls, scale: int = 1024) -> "SimConfig":
        """The baseline with every capacity divided by ``scale``.

        Latency constants are untouched; only the geometry shrinks, so
        crossovers fall at the same cache/working-set ratios.  The
        default scale (1024) maps GB → MB.
        """
        if scale < 1:
            raise ConfigError("scale must be >= 1")
        return cls(ram_bytes=8 * GB // scale, flash_bytes=64 * GB // scale)
