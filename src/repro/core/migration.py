"""The exclusive (migration) architecture — §3.2's unevaluated sketch.

"Alternatively, one could use two separate layers of cache, but choose
some more elaborate policy; for example, one might place blocks
initially into RAM and then migrate less recently (or less frequently)
used blocks down to flash."  The paper asks "how much better (if at
all) an alternate placement scheme performs" but evaluates only the
three simple architectures; this stack answers the question.

Semantics:

* every cached block lives in **exactly one** tier (exclusive caching),
  so the effective capacity is RAM + flash — like unified — but the
  *hot* fraction sits in RAM rather than being placed randomly;
* fills from the filer land in RAM;
* a RAM eviction **demotes** the victim to flash (one flash write;
  dirty state travels with it);
* a flash hit **promotes** the block back to RAM (flash read + removal
  from flash), demoting RAM's victim in exchange;
* policy-driven writebacks go straight to the filer from either tier
  (writing dirty data into the other tier would duplicate it);
* a dirty flash eviction writes back to the filer synchronously,
  exactly like the other architectures.

The cost of the better placement is migration traffic: every
demotion is a flash write and every promotion a flash read that the
naive architecture would not have issued.
"""

from __future__ import annotations

from typing import Iterator

from repro.cache.block import Medium
from repro.cache.store import BlockStore
from repro.core.host import HostStack, _after
from repro.core.policies import PolicyKind
from repro.errors import ConfigError


class MigrationStack(HostStack):
    """Exclusive two-tier cache with demotion/promotion migration."""

    __slots__ = ("ram", "flash")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        config = self.config
        self.ram = BlockStore(config.ram_blocks, config.eviction_policy, name="ram")
        self.flash = None
        if config.has_flash:
            if self.flash_device is None:
                raise ConfigError("flash configured but no flash device supplied")
            self.flash = BlockStore(
                config.flash_blocks, config.eviction_policy, name="flash"
            )

    # --- presence bookkeeping -----------------------------------------

    def _note_maybe_gone(self, block: int) -> None:
        if block in self.ram:
            return
        if self.flash is not None and block in self.flash:
            return
        self.directory.note_drop(self.host_id, block)

    def drop_block(self, block: int) -> None:
        self.ram.remove(block, invalidation=True)
        if self.flash is not None:
            removed = self.flash.remove(block, invalidation=True)
            if removed is not None:
                self.flash_device.trim_block(block)

    def reset_measurement_stats(self) -> None:
        self.ram.stats.reset_for_measurement()
        if self.flash is not None:
            self.flash.stats.reset_for_measurement()

    def apply_restart(self, volatile_flash: bool, scan_ns_per_block: int) -> None:
        for block in list(self.ram.blocks()):
            self.ram.remove(block)
            self._note_maybe_gone(block)
        if self.flash is None:
            # Both tiers are now empty; bulk-clear any holder bits that
            # in-flight writebacks left behind.
            self.directory.drop_host(self.host_id)
            return
        if volatile_flash:
            for block in list(self.flash.blocks()):
                self.flash.remove(block)
                self.flash_device.trim_block(block)
                self._note_maybe_gone(block)
            self.directory.drop_host(self.host_id)
        else:
            self.flash_online_at = (
                self.sim.now + len(self.flash) * scan_ns_per_block
            )

    # --- read path ---------------------------------------------------------

    def read_block(self, block: int) -> Iterator:
        if self.config.has_ram and self.ram.get(block) is not None:
            yield self.timing.ram_read_ns
            return
        if self.flash is not None and self._flash_online():
            fentry = self.flash.get(block)
            if fentry is not None:
                # Promote: read from flash, move to RAM (exclusive).
                yield from self.flash_device.read_block(block)
                self.flash.remove(block)
                self.flash_device.trim_block(block)
                yield from self._install_ram(block, dirty=fentry.dirty)
                return
        yield from self._filer_read()
        yield from self._install_ram(block, dirty=False)

    # --- write path ------------------------------------------------------------

    def write_block(self, block: int, measured: bool = True) -> Iterator:
        dropped = self.directory.on_block_write(self.host_id, block, measured)
        dir_stall = self._dir_stall
        if dir_stall is not None:
            cost = dir_stall[0] + dropped * dir_stall[1]
            if cost:
                if measured:
                    self.directory.invalidation_latency_ns += cost
                yield cost
        if not self.config.has_ram:
            yield from self._filer_write()
            return
        # Exclusivity: a write lands in RAM, superseding any flash copy.
        if self.flash is not None:
            stale = self.flash.remove(block)
            if stale is not None:
                self.flash_device.trim_block(block)
        yield from self._install_ram(block, dirty=True)
        policy = self.config.ram_policy
        if policy.kind is PolicyKind.SYNC:
            yield from self._flush_block(self.ram, block)
        elif policy.kind is PolicyKind.ASYNC:
            self._spawn(self._flush_block(self.ram, block), "migr-flush")
        elif policy.kind is PolicyKind.DELAYED:
            self._spawn(
                _after(policy.flush_delay_ns, self._flush_block(self.ram, block)),
                "migr-delayed-flush",
            )

    # --- tier internals -------------------------------------------------------

    def _install_ram(self, block: int, dirty: bool) -> Iterator:
        if not self.config.has_ram:
            # Degenerate: no RAM tier; keep the block in flash instead.
            if self.flash is not None and self.flash.peek(block) is None:
                yield from self._demote_install(block, dirty)
            return
        # Exclusivity under concurrency: while this install's fetch was
        # in flight, another thread may have demoted the same block to
        # flash.  Absorb that copy (keeping its dirtiness) so the block
        # never lives in both tiers.
        if self.flash is not None:
            stale = self.flash.remove(block)
            if stale is not None:
                self.flash_device.trim_block(block)
                dirty = dirty or stale.dirty
        existing = self.ram.peek(block)
        if existing is not None:
            self.ram.get(block)
            if dirty:
                self.ram.mark_dirty(block)
            yield self.timing.ram_write_ns
            return
        while self.ram.is_full():
            victim = self.ram.pop_victim()
            if victim is None:
                break
            # Demotion happens off the critical path — a staging buffer
            # absorbs the evicted block while the flash write proceeds
            # in the background.  (Without this, every RAM fill would
            # pay a flash write, and the architecture would lose the
            # RAM-speed writes that §7.1 identifies as the layered
            # designs' advantage.)
            self._spawn(self._demote(victim.block, victim.dirty), "migr-demote")
        self.ram.put(block, Medium.RAM, dirty=dirty)
        self.directory.note_copy(self.host_id, block)
        yield self.timing.ram_write_ns

    def _demote(self, block: int, dirty: bool) -> Iterator:
        """Move an evicted RAM block down into the flash tier."""
        if self.flash is None or not self._flash_online():
            # No flash, or the flash is recovering: dirty data must
            # still reach the filer; clean data is simply dropped.
            if dirty:
                yield from self._filer_write()
            self._note_maybe_gone(block)
            return
        yield from self._demote_install(block, dirty)

    def _demote_install(self, block: int, dirty: bool) -> Iterator:
        assert self.flash is not None
        if block in self.ram:
            # The block was re-referenced (and re-installed in RAM)
            # while this demotion waited; installing the stale copy in
            # flash would both duplicate it and resurrect old data.
            if dirty and not self.ram.peek(block).dirty:
                # Don't lose dirtiness the newer copy doesn't know about.
                self.ram.mark_dirty(block)
            return
        while self.flash.is_full() and self.flash.peek(block) is None:
            victim = self.flash.pop_victim()
            if victim is None:
                break
            self.flash_device.trim_block(victim.block)
            if victim.dirty:
                yield from self._filer_write()
            self._note_maybe_gone(victim.block)
        if block in self.ram:
            # Re-referenced while this demotion waited on the eviction
            # writeback above: the RAM copy wins (exclusivity).
            if dirty and not self.ram.peek(block).dirty:
                self.ram.mark_dirty(block)
            return
        if self.flash.peek(block) is None:
            self.flash.put(block, Medium.FLASH, dirty=dirty)
        elif dirty:
            self.flash.mark_dirty(block)
        yield from self.flash_device.write_block(block)
        if self.flash.peek(block) is None:
            # Evicted (or wiped by a restart) while the device write was
            # in flight: the host holds nothing, so registering it as a
            # holder would leave a stale directory entry.
            self.flash_device.trim_block(block)
        else:
            self.directory.note_copy(self.host_id, block)

    def _flush_block(self, store: BlockStore, block: int) -> Iterator:
        """Write one dirty block back to the filer."""
        if store is self.flash and not self._flash_online():
            return  # cannot flush from a recovering flash (§3.8)
        entry = store.peek(block)
        if entry is None or not entry.dirty:
            return
        store.mark_clean(block)
        yield from self._filer_write()

    # --- syncers ----------------------------------------------------------------

    def start_syncers(self) -> None:
        if self.config.ram_policy.has_syncer and self.config.has_ram:
            self._spawn(
                self._syncer_loop(self.config.ram_policy, self.ram), "migr-ram-syncer"
            )
        if self.config.flash_policy.has_syncer and self.flash is not None:
            self._spawn(
                self._syncer_loop(self.config.flash_policy, self.flash),
                "migr-flash-syncer",
            )

    def _syncer_loop(self, policy, store: BlockStore) -> Iterator:
        trickle = policy.kind is PolicyKind.TRICKLE
        period_ns = policy.period_ns
        while self.keep_running():
            yield period_ns
            dirty = store.dirty_blocks()
            if not dirty:
                continue
            spacing = period_ns // len(dirty) if trickle else 0
            for index, block in enumerate(dirty):
                self._spawn(
                    _after(index * spacing, self._flush_block(store, block)),
                    "migr-syncer-flush",
                )
