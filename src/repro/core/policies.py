"""Writeback policies (§3.5, §3.6).

The paper tests seven policies at each cache tier:

* ``s``   — write-through: "data is immediately written to the server,
  blocking the requester until completion";
* ``a``   — asynchronous write-through: "data is immediately written to
  the server without blocking the requester";
* ``p1`` / ``p5`` / ``p15`` / ``p30`` — periodic: "dirty data remains in
  the cache until a syncer thread flushes the data back to the server",
  with syncer periods of 1, 5, 15 and 30 seconds;
* ``n``   — none: "dirty data remains in the cache until evicted for
  capacity reasons".

The same seven apply to the RAM tier and the flash tier, yielding the
49 combinations of Figure 2.

Two further policies the paper names but does not evaluate ("We did
not try other more elaborate policies (such as trickle-flushing,
writing back asynchronously after a delay, etc.)", §3.6) are provided
as extensions so the claim that they would not have mattered can be
checked:

* ``t<seconds>`` — trickle: a syncer spreads each period's flushes
  evenly across the period instead of issuing them as one burst;
* ``d<seconds>`` — delayed asynchronous write-through: each block is
  flushed ``<seconds>`` after it was dirtied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro._units import SECOND
from repro.errors import ConfigError


class PolicyKind(enum.Enum):
    """The writeback mechanisms (four from the paper + two extensions)."""

    SYNC = "sync"
    ASYNC = "async"
    PERIODIC = "periodic"
    NONE = "none"
    TRICKLE = "trickle"
    DELAYED = "delayed"


@dataclass(frozen=True)
class WritebackPolicy:
    """One tier's writeback policy: a kind plus (for periodic) a period."""

    kind: PolicyKind
    period_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind in (PolicyKind.PERIODIC, PolicyKind.TRICKLE, PolicyKind.DELAYED):
            if self.period_ns is None or self.period_ns <= 0:
                raise ConfigError(
                    "%s policy needs a positive period" % self.kind.value
                )
        elif self.period_ns is not None:
            raise ConfigError("%s policy takes no period" % self.kind.value)

    # --- constructors -------------------------------------------------

    @classmethod
    def sync(cls) -> "WritebackPolicy":
        return cls(PolicyKind.SYNC)

    @classmethod
    def asynchronous(cls) -> "WritebackPolicy":
        return cls(PolicyKind.ASYNC)

    @classmethod
    def periodic(cls, seconds: float) -> "WritebackPolicy":
        return cls(PolicyKind.PERIODIC, period_ns=int(seconds * SECOND))

    @classmethod
    def none(cls) -> "WritebackPolicy":
        return cls(PolicyKind.NONE)

    @classmethod
    def trickle(cls, seconds: float) -> "WritebackPolicy":
        """Extension: periodic flushing spread evenly across the period."""
        return cls(PolicyKind.TRICKLE, period_ns=int(seconds * SECOND))

    @classmethod
    def delayed(cls, seconds: float) -> "WritebackPolicy":
        """Extension: asynchronous write-through after a fixed delay."""
        return cls(PolicyKind.DELAYED, period_ns=int(seconds * SECOND))

    @classmethod
    def parse(cls, text: str) -> "WritebackPolicy":
        """Parse the paper's notation: ``s``, ``a``, ``p<seconds>``, ``n``.

        >>> WritebackPolicy.parse("p5").period_ns
        5000000000
        """
        text = text.strip().lower()
        if text == "s":
            return cls.sync()
        if text == "a":
            return cls.asynchronous()
        if text == "n":
            return cls.none()
        if text[:1] in ("p", "t", "d") and len(text) > 1:
            try:
                seconds = float(text[1:])
            except ValueError:
                raise ConfigError("bad timed policy %r" % text) from None
            factory = {"p": cls.periodic, "t": cls.trickle, "d": cls.delayed}
            return factory[text[0]](seconds)
        raise ConfigError(
            "unknown writeback policy %r (expected s, a, p<seconds>, "
            "t<seconds>, d<seconds>, or n)" % text
        )

    # --- behavior predicates ------------------------------------------------

    @property
    def blocks_requester(self) -> bool:
        """True when a write must propagate to the next tier before the
        requester's write completes (only ``s``)."""
        return self.kind is PolicyKind.SYNC

    @property
    def writes_through(self) -> bool:
        """True when dirty data is pushed to the next tier immediately
        (``s`` and ``a``)."""
        return self.kind in (PolicyKind.SYNC, PolicyKind.ASYNC)

    @property
    def has_syncer(self) -> bool:
        return self.kind in (PolicyKind.PERIODIC, PolicyKind.TRICKLE)

    @property
    def flush_delay_ns(self) -> Optional[int]:
        """The per-block flush delay (``d`` policies only)."""
        if self.kind is PolicyKind.DELAYED:
            return self.period_ns
        return None

    # --- presentation ---------------------------------------------------------

    @property
    def label(self) -> str:
        """The paper's short label (``s``/``a``/``p1``.../``n``)."""
        if self.kind is PolicyKind.SYNC:
            return "s"
        if self.kind is PolicyKind.ASYNC:
            return "a"
        if self.kind is PolicyKind.NONE:
            return "n"
        assert self.period_ns is not None
        prefix = {
            PolicyKind.PERIODIC: "p",
            PolicyKind.TRICKLE: "t",
            PolicyKind.DELAYED: "d",
        }[self.kind]
        seconds = self.period_ns / SECOND
        if seconds == int(seconds):
            return "%s%d" % (prefix, int(seconds))
        return "%s%g" % (prefix, seconds)

    def __str__(self) -> str:
        return self.label

    @classmethod
    def all_seven(cls) -> List["WritebackPolicy"]:
        """The paper's seven policies, in Figure 2's axis order."""
        return [
            cls.sync(),
            cls.asynchronous(),
            cls.periodic(1),
            cls.periodic(5),
            cls.periodic(15),
            cls.periodic(30),
            cls.none(),
        ]
