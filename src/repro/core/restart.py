"""Restart/recovery modeling (extension; §7.8 stops short of this).

The paper approximates persistence by skipping or keeping the warmup
phase and notes two things it does not simulate: the recovery phase
itself ("We did not attempt to simulate the recovery phase.") and the
§3.8 observation that "a recoverable cache is unavailable during a
reboot; it cannot flush dirty data or participate in cache consistency
protocols until afterwards".

:class:`RestartSpec` models exactly that gap.  At the warmup/
measurement boundary the system "reboots":

* the RAM cache is always lost (volatile);
* with ``volatile_flash=True`` the flash contents are lost too — the
  paper's cold-start case;
* with ``volatile_flash=False`` the flash contents survive, but the
  flash tier is **offline** while recovery scans and validates its
  metadata — ``scan_ns_per_block`` per resident block.  Reads bypass
  the flash to the filer (without filling it) and flash-bound
  writebacks divert to the filer until the scan finishes.

This is an availability-blip approximation: application threads keep
running against the degraded stack rather than being killed and
restarted, which is the right model for the paper's metric (aggregate
application latency over the measurement phase).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import US
from repro.errors import ConfigError


@dataclass(frozen=True)
class RestartSpec:
    """What happens to the caches at the warmup/measurement boundary."""

    #: True = flash contents are lost (non-persistent cache crashed).
    volatile_flash: bool = False
    #: Per-resident-block metadata scan time during recovery; the flash
    #: tier is offline for ``resident_blocks * scan_ns_per_block``.
    scan_ns_per_block: int = 10 * US

    def __post_init__(self) -> None:
        if self.scan_ns_per_block < 0:
            raise ConfigError("scan time must be non-negative")

    @classmethod
    def crash_volatile(cls) -> "RestartSpec":
        """A crash with a non-persistent flash cache (everything lost)."""
        return cls(volatile_flash=True)

    @classmethod
    def recover_persistent(cls, scan_ns_per_block: int = 10 * US) -> "RestartSpec":
        """A reboot with a persistent flash cache that must be scanned."""
        return cls(volatile_flash=False, scan_ns_per_block=scan_ns_per_block)

    @classmethod
    def instant_recovery(cls) -> "RestartSpec":
        """An idealized persistent cache with free recovery (upper bound)."""
        return cls(volatile_flash=False, scan_ns_per_block=0)
