"""Extension experiment: the recovery phase the paper skipped (§7.8).

"(We did not attempt to simulate the recovery phase.)" — this
experiment does.  All runs replay the warmup, then crash/reboot at the
measurement boundary:

* ``volatile``   — non-persistent flash: contents lost (≈ Figure 10's
  "not warmed" curve, measured with an explicit crash);
* ``instant``    — persistent flash with free recovery (Figure 10's
  idealized "warmed" persistent cache);
* ``scan=X``     — persistent flash that is offline while recovery
  validates each resident block's metadata at X µs/block (§3.8's
  "unavailable during a reboot").

The interesting question: at what scan cost does a recoverable cache
stop being worth recovering?  (For reference, rereading a block from
the filer costs ~141 µs — so recovery only loses if scanning a block
costs more than refetching it on demand, or if the offline window
starves the workload.)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._units import US
from repro.core.restart import RestartSpec
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep_points

FULL_SCAN_US = (0, 1, 10, 50, 200, 1000)
FAST_SCAN_US = (0, 10, 200)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    scan_us_sweep: Optional[Sequence[int]] = None,
    ws_gb: float = 60.0,
) -> ExperimentResult:
    sweep = scan_us_sweep or (FAST_SCAN_US if fast else FULL_SCAN_US)
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    config = baseline_config(scale=scale)
    result = ExperimentResult(
        experiment="recovery",
        title="Restart recovery cost (%g GB working set, 64 GB flash)" % ws_gb,
        columns=("restart", "read_us", "write_us", "filer_reads"),
        notes=(
            "Paper's §7.8 measured only the endpoints (warm vs. lost); "
            "the scan sweep shows where recovery stops paying off."
        ),
    )

    points = [
        SweepPoint(config=config, trace=trace, restart=RestartSpec.crash_volatile())
    ]
    points.extend(
        SweepPoint(
            config=config,
            trace=trace,
            restart=RestartSpec.recover_persistent(scan_ns_per_block=scan_us * US),
        )
        for scan_us in sweep
    )
    outcome = run_sweep_points(points, workers=workers)
    labels = ["volatile crash"] + ["persistent scan=%dus" % scan_us for scan_us in sweep]
    for label, res in zip(labels, outcome.results):
        result.add_row(
            restart=label,
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
            filer_reads=res.filer_reads,
        )
    return result
