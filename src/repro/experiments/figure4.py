"""Figure 4 — read latency vs. working-set size for a range of flash sizes.

§7.2: 8 GB RAM with no flash / 32 GB / 64 GB / 128 GB flash, working
sets from 5 GB to 640 GB.  "Even when the working set far exceeds the
flash size, the flash improves performance significantly"; write
latencies are uninteresting (all RAM speed).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure3 import FAST_WS_SWEEP, FULL_WS_SWEEP
from repro.sweep import SweepPoint, run_sweep_points

FLASH_SIZES_GB = (0.0, 32.0, 64.0, 128.0)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="figure4",
        title="Read latency vs. working-set size across flash sizes",
        columns=("ws_gb", "noflash_us", "flash32_us", "flash64_us", "flash128_us"),
        notes=(
            "Paper: dramatic improvement while the working set fits in "
            "flash; ordering noflash > 32 > 64 > 128 everywhere; RAM hit "
            "rate ~3.4% in all configurations."
        ),
    )
    configs = {
        "noflash_us": baseline_config(flash_gb=0.0, scale=scale),
        "flash32_us": baseline_config(flash_gb=32.0, scale=scale),
        "flash64_us": baseline_config(flash_gb=64.0, scale=scale),
        "flash128_us": baseline_config(flash_gb=128.0, scale=scale),
    }
    points = [
        SweepPoint(config=config, trace=baseline_trace(ws_gb=ws_gb, scale=scale))
        for ws_gb in sweep
        for config in configs.values()
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for ws_gb in sweep:
        row = {"ws_gb": ws_gb}
        for key in configs:
            row[key] = next(results).read_latency_us
        result.add_row(**row)
    return result
