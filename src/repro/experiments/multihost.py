"""Extension experiment: scaling the number of hosts.

§3.8 notes that "the size of flash caches may affect the scalability of
consistency protocols; detailed modeling of this effect is beyond the
scope of our work."  Without modeling a protocol, the *load* a protocol
must carry is measurable: this experiment sweeps the host count over a
shared working set and reports per-host invalidation pressure, filer
traffic, and application latency — the paper's two-host worst case
(Figures 11/12) extended along the axis it left open.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep_points

FULL_HOSTS = (1, 2, 3, 4, 6, 8)
FAST_HOSTS = (1, 2, 4)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    host_sweep: Optional[Sequence[int]] = None,
    ws_gb: float = 60.0,
) -> ExperimentResult:
    sweep = host_sweep or (FAST_HOSTS if fast else FULL_HOSTS)
    result = ExperimentResult(
        experiment="multihost",
        title="Host-count scaling on a shared %g GB working set" % ws_gb,
        columns=(
            "hosts",
            "inval_pct",
            "copies_invalidated",
            "read_us",
            "filer_reads",
            "filer_writes",
        ),
        notes=(
            "With more hosts sharing one working set, each write finds "
            "more remote copies: invalidation work grows with the host "
            "count, and refetches push read latency and filer load up — "
            "the §3.8 scalability concern, quantified."
        ),
    )
    config = baseline_config(scale=scale)
    points = [
        SweepPoint(
            config=config,
            trace=baseline_trace(
                ws_gb=ws_gb, n_hosts=n_hosts, shared_working_set=True, scale=scale
            ),
        )
        for n_hosts in sweep
    ]
    outcome = run_sweep_points(points, workers=workers)
    for n_hosts, res in zip(sweep, outcome.results):
        result.add_row(
            hosts=n_hosts,
            inval_pct=100.0 * res.invalidation_fraction,
            copies_invalidated=res.copies_invalidated,
            read_us=res.read_latency_us,
            filer_reads=res.filer_reads,
            filer_writes=res.filer_writes,
        )
    return result
