"""Extension experiment: the motivating scenarios, quantified.

§1 motivates client flash caching with "application servers in
three-tier web applications, compute servers in data centers, render
farms ... and compute nodes in scientific computation clusters", but
the evaluation uses one stochastic workload shape.  This experiment
runs each motivating scenario (see :mod:`repro.workloads`) with and
without a flash cache and reports who actually benefits and by how
much — testing the implicit claim that the conclusion generalizes
across the motivating workloads.
"""

from __future__ import annotations

from typing import Optional

from repro._units import MB
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, baseline_config
from repro.sweep import SweepPoint, run_sweep_points
from repro.workloads import (
    WorkloadSpec,
    data_center_mixed,
    render_farm,
    scientific_compute,
    web_app_server,
)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    volume_mb: Optional[int] = None,
) -> ExperimentResult:
    if volume_mb is None:
        volume_mb = 16 if fast else 48
    spec = WorkloadSpec(volume_bytes=volume_mb * MB, seed=99)
    scenarios = {
        "web_app": web_app_server(spec),
        "render_farm": render_farm(spec),
        "scientific": scientific_compute(spec),
        "mixed_dc": data_center_mixed(spec),
    }
    result = ExperimentResult(
        experiment="scenarios",
        title="Motivating workloads (§1) with and without client flash",
        columns=(
            "scenario",
            "noflash_read_us",
            "flash_read_us",
            "read_speedup",
            "flash_write_us",
            "flash_hit_pct",
        ),
        notes=(
            "Expected: every scenario benefits; skewed random-read "
            "workloads (web) benefit most; prefetch-friendly streaming "
            "(render) least — the filer's read-ahead already covers it."
        ),
    )
    with_flash = baseline_config(scale=scale)
    without = baseline_config(flash_gb=0.0, scale=scale)
    points = [
        SweepPoint(config=config, trace=trace)
        for trace in scenarios.values()
        for config in (with_flash, without)
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for name in scenarios:
        flash_res = next(results)
        plain_res = next(results)
        hit_rate = flash_res.hit_rate("flash") or 0.0
        result.add_row(
            scenario=name,
            noflash_read_us=plain_res.read_latency_us,
            flash_read_us=flash_res.read_latency_us,
            read_speedup=(
                plain_res.read_latency_us / flash_res.read_latency_us
                if flash_res.read_latency_us
                else 0.0
            ),
            flash_write_us=flash_res.write_latency_us,
            flash_hit_pct=100.0 * hit_rate,
        )
    return result
