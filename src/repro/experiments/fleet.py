"""Extension experiment: multi-tenant fleet consistency scenarios.

The multihost experiment scales host *count* over one shared working
set; this one scales the *deployment shape*: tenant groups with skewed
popularity, rolling restarts, and a failover storm onto cold standbys
(see :mod:`repro.tracegen.fleet`).  Each scenario runs twice — at the
paper's instant-invalidation default and with a modeled directory
latency (:class:`~repro.net.directory.DirectoryTiming`, RPC-scale
constants) — so the table shows both the invalidation *load* a
consistency protocol must carry and what that load costs once lookups
and invalidate messages take real time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro._units import US
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    scaled_gb,
)
from repro.net.directory import DirectoryTiming
from repro.sweep import SweepPoint, run_sweep_points
from repro.tracegen.fleet import SCENARIOS, FleetSpec, fleet_trace

#: Modeled directory constants for the non-instant runs: a one-hop
#: metadata lookup plus a per-victim invalidate round trip (switch +
#: software scale, same order as the filer network constants).
DIRECTORY_LOOKUP_NS = 5_000
DIRECTORY_INVALIDATE_NS = 20_000

FULL_FLEET = dict(n_hosts=64, n_tenants=8)
FAST_FLEET = dict(n_hosts=16, n_tenants=4)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_gb: float = 4.0,
) -> ExperimentResult:
    shape = FAST_FLEET if fast else FULL_FLEET
    spec = FleetSpec(
        n_hosts=shape["n_hosts"],
        n_tenants=shape["n_tenants"],
        ws_bytes=scaled_gb(ws_gb, scale),
    )
    result = ExperimentResult(
        experiment="fleet",
        title="Fleet scenarios: %d hosts, %d tenants, %g GB/tenant working sets"
        % (spec.n_hosts, spec.n_tenants, ws_gb),
        columns=(
            "scenario",
            "directory",
            "inval_pct",
            "copies_invalidated",
            "read_us",
            "write_us",
            "inval_stall_ms",
        ),
        notes=(
            "Steady multi-tenant traffic keeps invalidations inside each "
            "tenant group; rolling restarts add re-warm read bursts, and "
            "the failover storm shifts one tenant onto cold standbys "
            "whose writes must invalidate the primaries' stale copies. "
            "With modeled directory latency the same invalidation load "
            "becomes visible write-path stall time."
        ),
    )
    instant = baseline_config(scale=scale)
    modeled = replace(
        instant,
        timing=instant.timing.with_directory(
            DirectoryTiming(
                lookup_ns=DIRECTORY_LOOKUP_NS,
                invalidate_ns=DIRECTORY_INVALIDATE_NS,
            )
        ),
    )
    labels = []
    points = []
    for scenario in SCENARIOS:
        trace = fleet_trace(spec, scenario)
        for name, config in (("instant", instant), ("modeled", modeled)):
            labels.append((scenario, name))
            points.append(
                SweepPoint(config=config, trace=trace, n_hosts=spec.n_hosts)
            )
    outcome = run_sweep_points(points, workers=workers)
    for (scenario, name), res in zip(labels, outcome.results):
        result.add_row(
            scenario=scenario,
            directory=name,
            inval_pct=100.0 * res.invalidation_fraction,
            copies_invalidated=res.copies_invalidated,
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
            inval_stall_ms=res.invalidation_latency_ns / (1000 * US),
        )
    return result
