"""Figure 1 — SSD access latency as a function of cumulative I/Os.

The paper replayed the simulator's flash I/O logs against two consumer
SSDs and plotted per-10,000-I/O average read (top) and write (bottom)
latencies over time for a "60 GB working set workload on a 58 GB
device".  Section 6.2's findings: stable write latency throughout,
read latency that degrades as the device fills, and cache-workload
reads much faster than purely random ones.

We regenerate the plot's series from :class:`BehavioralSSD`, driving it
with a cache-shaped I/O log (re-referencing a working set that slightly
exceeds the device, ~70/30 read/write — what the flash sees below a
RAM cache).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro._units import US
from repro.engine.rng import RngStreams
from repro.experiments.common import ExperimentResult
from repro.flash.ssd_model import BehavioralSSD, SSDModelConfig


def cache_workload(
    n_ios: int,
    device_blocks: int,
    working_blocks: int,
    write_fraction: float = 0.3,
    seed: int = 9,
) -> Iterator[Tuple[str, int]]:
    """A flash-I/O log shaped like the simulator's: re-references within
    a working set slightly larger than the device."""
    rng = RngStreams(seed).stream("fig1-workload")
    for _ in range(n_ios):
        block = rng.randrange(working_blocks) % device_blocks
        op = "w" if rng.random() < write_fraction else "r"
        yield op, block


def run(
    *, scale: int = 1024, fast: bool = False, workers: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 1's two series (plus the random-I/O contrast).

    This experiment drives the behavioral SSD model directly (one
    stateful device, no independent simulation points), so ``workers``
    is accepted for harness uniformity but has nothing to fan out.
    """
    del workers
    # Scale the 58 GB device down; keep the 60/58 working-set ratio.
    device_blocks = max(2048, (58 * 1024 * 256) // scale)
    working_blocks = int(device_blocks * 60 / 58)
    # Size the run relative to the device so the fill level (the driver
    # of read degradation) sweeps most of its range during the run, as
    # it does over the paper's 80M I/Os on a 58 GB device.
    n_ios = min(400_000 if not fast else 120_000, 8 * device_blocks)
    n_ios = max(n_ios, 20_000)
    group = max(500, n_ios // 40)

    ssd = BehavioralSSD(SSDModelConfig(capacity_blocks=device_blocks))
    reads: List[int] = []
    writes: List[int] = []
    for op, block in cache_workload(n_ios, device_blocks, working_blocks):
        latency = ssd.access(op, block)
        if op == "r":
            reads.append(latency)
        else:
            writes.append(latency)

    random_ssd = BehavioralSSD(
        SSDModelConfig(capacity_blocks=device_blocks), random_pattern=True
    )
    random_reads = [
        random_ssd.access("r", block)
        for _op, block in cache_workload(n_ios // 4, device_blocks, device_blocks, 0.0)
    ]

    result = ExperimentResult(
        experiment="figure1",
        title="SSD access latency vs. cumulative I/Os (per-group averages)",
        columns=("cumulative_mios", "read_us", "write_us"),
        notes=(
            "Paper: write latency flat start-to-finish; read latency higher "
            "and drifting up as the device fills; random-pattern reads much "
            "slower than cache-workload replay."
        ),
    )
    read_groups = BehavioralSSD.grouped_averages(reads, group)
    write_groups = BehavioralSSD.grouped_averages(writes, group)
    for index in range(min(len(read_groups), len(write_groups))):
        result.add_row(
            cumulative_mios=round((index + 1) * group / 1e6, 3),
            read_us=read_groups[index] / US,
            write_us=write_groups[index] / US,
        )
    mean_replay_read = sum(reads) / len(reads) / US
    mean_random_read = sum(random_reads) / len(random_reads) / US
    result.notes += " Measured: replay reads %.1f us vs random reads %.1f us." % (
        mean_replay_read,
        mean_random_read,
    )
    return result
