"""Figures 6 and 7 — how small can the RAM cache be?

§7.5: with a fixed 64 GB flash, sweep the RAM cache from zero to the
baseline 8 GB, under the 1-second periodic (``p1``) and asynchronous
write-through (``a``) RAM policies.  Findings:

* no RAM at all works poorly, but a tiny RAM cache already performs
  like a large one — with the ``a`` policy a 256 KB write buffer
  suffices ("a small (256 KB) cache achieves performance comparable to
  much larger ones");
* with the ``p1`` policy the smallest caches fill with dirty blocks
  between syncer runs and write latency spikes;
* Figure 7 repeats this with a RAM-sized (5 GB) working set, where
  dropping RAM costs ~25–30 % — noticeable but far less than the ~5x
  penalty of having no flash.

The RAM axis is expressed in *paper-scale* bytes (the figure's x-axis:
0, 64 KB ... 8 GB); each point is scaled down by the geometry divisor
with a one-block floor, so the sweep works at any scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._units import BLOCK_SIZE, GB, KB, MB, format_bytes
from repro.core.policies import WritebackPolicy
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
    scaled_policy,
)
from repro.sweep import run_sweep

#: RAM sweep at paper scale (the figure's x axis: 0, 64 KB ... 8 GB).
FULL_RAM_SWEEP = (
    0,
    64 * KB,
    256 * KB,
    1 * MB,
    16 * MB,
    64 * MB,
    256 * MB,
    1 * GB,
    4 * GB,
    8 * GB,
)
FAST_RAM_SWEEP = (0, 256 * KB, 16 * MB, 1 * GB, 8 * GB)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_gb: float = 60.0,
    ram_sweep_paper_bytes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    sweep = ram_sweep_paper_bytes or (FAST_RAM_SWEEP if fast else FULL_RAM_SWEEP)
    # Small working sets produce few measured blocks at coarse scale;
    # lengthen the trace so slow-filer-read sampling noise stays small
    # relative to the RAM-vs-flash latency differences under study.
    volume_multiple = 32.0 if ws_gb <= 10 else 4.0
    trace = baseline_trace(ws_gb=ws_gb, scale=scale, volume_multiple=volume_multiple)
    result = ExperimentResult(
        experiment="figure6" if ws_gb >= 10 else "figure7",
        title="Latency vs. RAM cache size (%g GB working set, 64 GB flash)"
        % ws_gb,
        columns=(
            "ram_paper_equiv",
            "ram_blocks",
            "read_p1_us",
            "read_a_us",
            "write_p1_us",
            "write_a_us",
        ),
        notes=(
            "Paper: zero RAM performs poorly; a tiny RAM plus the 'a' "
            "policy performs near the 8 GB baseline; 'p1' needs more RAM "
            "to absorb dirty blocks between syncer runs."
        ),
    )
    policies = (
        (WritebackPolicy.periodic(1), "p1"),
        (WritebackPolicy.asynchronous(), "a"),
    )
    ram_sizes = [
        0 if paper_bytes == 0 else max(BLOCK_SIZE, paper_bytes // scale)
        for paper_bytes in sweep
    ]
    configs = []
    for ram_bytes in ram_sizes:
        for policy, _label in policies:
            config = baseline_config(scale=scale)
            config = config.with_sizes(ram_bytes, config.flash_bytes)
            configs.append(
                config.with_policies(ram_writeback=scaled_policy(policy, scale))
            )
    results = iter(run_sweep(trace, configs, workers=workers))
    for paper_bytes, ram_bytes in zip(sweep, ram_sizes):
        row = {
            "ram_paper_equiv": format_bytes(paper_bytes),
            "ram_blocks": ram_bytes // BLOCK_SIZE,
        }
        for _policy, label in policies:
            res = next(results)
            row["read_%s_us" % label] = res.read_latency_us
            row["write_%s_us" % label] = res.write_latency_us
        result.add_row(**row)
    return result
