"""Extension experiment: how much does smarter placement buy? (§3.2)

The paper's open question: "The basic question is whether the simple
approach is good enough.  We would also like to estimate how much
better (if at all) an alternate placement scheme performs."

This experiment compares all four placements across working-set sizes:

* **naive** — RAM duplicated inside flash (effective capacity = flash);
* **lookaside** — same placement, write path differs;
* **unified** — one LRU chain, blocks placed in whichever buffer frees
  up (effective capacity = RAM + flash, but hot blocks mostly in flash);
* **exclusive** (extension) — RAM-first with demotion/promotion
  migration: effective capacity = RAM + flash *and* hot blocks in RAM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.architectures import Architecture
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure3 import FAST_WS_SWEEP, FULL_WS_SWEEP
from repro.sweep import SweepPoint, run_sweep_points


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="placement",
        title="Placement ablation: read/write latency per architecture",
        columns=(
            "ws_gb",
            "naive_read_us",
            "unified_read_us",
            "exclusive_read_us",
            "naive_write_us",
            "unified_write_us",
            "exclusive_write_us",
            "exclusive_flash_writes",
            "naive_flash_writes",
        ),
        notes=(
            "Expected: exclusive matches or beats unified on reads (same "
            "effective capacity, hot blocks in RAM) and keeps naive's "
            "RAM-speed writes, at the price of extra migration traffic "
            "(flash writes)."
        ),
    )
    archs = (Architecture.NAIVE, Architecture.UNIFIED, Architecture.EXCLUSIVE)
    points = [
        SweepPoint(
            config=baseline_config(scale=scale).with_architecture(arch),
            trace=baseline_trace(ws_gb=ws_gb, scale=scale),
        )
        for ws_gb in sweep
        for arch in archs
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for ws_gb in sweep:
        row = {"ws_gb": ws_gb}
        for arch in archs:
            res = next(results)
            row["%s_read_us" % arch.value] = res.read_latency_us
            row["%s_write_us" % arch.value] = res.write_latency_us
            if arch in (Architecture.NAIVE, Architecture.EXCLUSIVE):
                row["%s_flash_writes" % arch.value] = res.flash_blocks_written
        result.add_row(**row)
    return result
