"""Figure 7 — the small-RAM sweep on a RAM-sized (5 GB) workload.

A thin wrapper over :mod:`repro.experiments.figure6` with the paper's
5 GB working set: here the full 8 GB RAM would hold the whole workload,
so shrinking RAM costs ~25–30 % (flash speed instead of RAM speed) —
"noticeable but far less than the factor of five or so seen without
the flash cache".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments import figure6
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ram_sweep_paper_bytes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    result = figure6.run(
        scale=scale,
        fast=fast,
        workers=workers,
        ws_gb=5.0,
        ram_sweep_paper_bytes=ram_sweep_paper_bytes,
    )
    result.experiment = "figure7"
    result.notes = (
        "Paper: with a 5 GB working set, tiny-RAM configurations carry a "
        "25-30%% read penalty versus the 8 GB RAM baseline (which holds "
        "most of the workload at RAM speed), but still beat no-flash by ~5x."
    )
    return result
