"""Figure 5 — sensitivity to the filer's prefetch (fast-read) rate.

§7.3: a large client cache may hurt the filer's ability to prefetch, so
the paper bounds the effect by sweeping the prefetch rate between a
pessimal 80 % and an optimistic 95 %, with and without a 64 GB flash.
The "pocket" between the better no-flash curve and the worse with-flash
curve marks where a prefetch-rate drop would erase the flash's benefit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure3 import FAST_WS_SWEEP, FULL_WS_SWEEP
from repro.sweep import SweepPoint, run_sweep_points

PREFETCH_RATES = (0.80, 0.95)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="figure5",
        title="Read latency vs. working-set size, prefetch rate 80% vs 95%",
        columns=(
            "ws_gb",
            "noflash_p80_us",
            "noflash_p95_us",
            "flash64_p80_us",
            "flash64_p95_us",
        ),
        notes=(
            "Paper: prefetch rate dominates; flash at 80% prefetch can be "
            "worse than no flash at 95% except where the WS fits in flash "
            "but not RAM."
        ),
    )
    curves = []
    for rate in PREFETCH_RATES:
        for flash_gb, label in ((0.0, "noflash"), (64.0, "flash64")):
            config = baseline_config(flash_gb=flash_gb, scale=scale)
            config = config.with_timing(config.timing.with_prefetch_rate(rate))
            curves.append(("%s_p%d_us" % (label, round(rate * 100)), config))
    points = [
        SweepPoint(config=config, trace=baseline_trace(ws_gb=ws_gb, scale=scale))
        for ws_gb in sweep
        for _key, config in curves
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for ws_gb in sweep:
        row = {"ws_gb": ws_gb}
        for key, _config in curves:
            row[key] = next(results).read_latency_us
        result.add_row(**row)
    return result
