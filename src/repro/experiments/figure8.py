"""Figure 8 — latency vs. write percentage (0–90 %).

§7.6: baseline caches (8 GB RAM, 64 GB flash), 60 GB and 80 GB working
sets, write fraction swept from 0 % to 90 % (the paper says results
above 90 % "should be taken with a grain of salt").  Findings: read
latency stable; write latency flat until very high write rates, where
the 1-second RAM syncer falls behind and synchronous RAM evictions
expose the flash write latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep_points

FULL_WRITE_SWEEP = (0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90)
FAST_WRITE_SWEEP = (0.0, 0.30, 0.60, 0.90)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    write_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = write_sweep or (FAST_WRITE_SWEEP if fast else FULL_WRITE_SWEEP)
    result = ExperimentResult(
        experiment="figure8",
        title="Latency vs. write percentage (60 and 80 GB working sets)",
        columns=(
            "write_pct",
            "read60_us",
            "read80_us",
            "write60_us",
            "write80_us",
        ),
        notes=(
            "Paper: read latency stable across write ratios; write latency "
            "flat (RAM speed) until ~90% writes."
        ),
    )
    config = baseline_config(scale=scale)
    ws_labels = ((60.0, "60"), (80.0, "80"))
    points = [
        SweepPoint(
            config=config,
            trace=baseline_trace(ws_gb=ws_gb, write_fraction=write_fraction, scale=scale),
        )
        for write_fraction in sweep
        for ws_gb, _label in ws_labels
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for write_fraction in sweep:
        row = {"write_pct": round(write_fraction * 100)}
        for _ws_gb, label in ws_labels:
            res = next(results)
            # An all-write trace has no read samples (and vice versa).
            row["read%s_us" % label] = res.read_latency_us
            row["write%s_us" % label] = res.write_latency_us
        result.add_row(**row)
    return result
