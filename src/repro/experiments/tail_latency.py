"""Extension experiment: tail latency, which the paper's means conceal.

The paper evaluates configurations by *mean* application latency.  But
the filer's bimodal read service (92 µs fast / 7952 µs slow) makes the
read distribution heavy-tailed, and caches act on the tail very
differently than on the mean: a flash cache cuts the mean as soon as it
absorbs any hits, but p99 only moves once the cache absorbs enough of
the *miss* stream that slow filer reads fall below the 1 % rank.

This experiment reports mean / p50 / p99 read latency across flash
sizes for the baseline 60 GB working set.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import run_sweep

FLASH_SIZES_GB = (0.0, 16.0, 32.0, 64.0, 128.0)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    flash_sizes_gb: Optional[Sequence[float]] = None,
    ws_gb: float = 60.0,
) -> ExperimentResult:
    sizes = flash_sizes_gb or FLASH_SIZES_GB
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    result = ExperimentResult(
        experiment="tail_latency",
        title="Read latency distribution vs. flash size (%g GB WS)" % ws_gb,
        columns=("flash_gb", "mean_us", "p50_us", "p99_us", "flash_hit_pct"),
        notes=(
            "Expected: the mean improves steadily with flash size; p50 "
            "drops to flash/RAM speed once the cache absorbs most reads; "
            "p99 stays pinned at the slow-filer-read level until the miss "
            "rate falls below ~1%, i.e. tail latency is the last thing a "
            "cache fixes."
        ),
    )
    configs = [baseline_config(flash_gb=flash_gb, scale=scale) for flash_gb in sizes]
    for flash_gb, res in zip(sizes, run_sweep(trace, configs, workers=workers)):
        hit_rate = res.hit_rate("flash")
        result.add_row(
            flash_gb=flash_gb,
            mean_us=res.read_latency_us,
            p50_us=res.read_latency.percentile(0.50) / 1000.0,
            p99_us=res.read_latency.percentile(0.99) / 1000.0,
            flash_hit_pct=100.0 * hit_rate if hit_rate is not None else 0.0,
        )
    return result
