"""Extension experiment: the elaborate writeback policies the paper skipped.

§3.6: "We did not try other more elaborate policies (such as
trickle-flushing, writing back asynchronously after a delay, etc.) for
either flash or RAM, because we found that nearly all the policy
combinations perform identically."

This experiment implements both named policies (``t1`` trickle, ``d1``
delayed async) and runs them alongside the paper's seven on the
baseline configuration, so the paper's extrapolation can be verified:
every policy that avoids synchronous filer writes should land in the
same flat performance band.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policies import WritebackPolicy
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
    scaled_policy,
)
from repro.sweep import run_sweep

ALL_POLICIES = ("s", "a", "p1", "p5", "t1", "t5", "d1", "d5", "n")
FAST_POLICIES = ("s", "a", "p1", "t1", "d1", "n")


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    policies: Optional[Sequence[str]] = None,
    ws_gb: float = 80.0,
) -> ExperimentResult:
    """Sweep the RAM policy over the extended set (flash policy fixed
    at the paper's chosen asynchronous write-through)."""
    labels = policies or (FAST_POLICIES if fast else ALL_POLICIES)
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    result = ExperimentResult(
        experiment="extended_policies",
        title="Extended RAM writeback policies (%g GB working set)" % ws_gb,
        columns=("ram_policy", "read_us", "write_us", "dirty_evictions"),
        notes=(
            "Paper's extrapolation (§3.6): trickle (t) and delayed (d) "
            "policies should match the flat a/p band; only 's' (and 'n' "
            "under pressure) stand out."
        ),
    )
    configs = []
    for label in labels:
        policy = scaled_policy(WritebackPolicy.parse(label), scale)
        config = baseline_config(scale=scale)
        configs.append(config.with_policies(ram_writeback=policy))
    for label, res in zip(labels, run_sweep(trace, configs, workers=workers)):
        ram_stats = res.tier_stats.get("ram", {})
        result.add_row(
            ram_policy=label,
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
            dirty_evictions=int(ram_stats.get("dirty_evictions", 0)),
        )
    return result
