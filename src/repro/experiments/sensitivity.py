"""Extension experiment: the §4 robustness claim, reproduced.

"(We checked the results of changing the working set percentage and
the number of threads; these did not affect the conclusions about our
key questions.)" — the paper states this without data.  This experiment
varies both knobs and measures the *conclusion-level* quantity: the
flash cache's read-latency win over a no-flash client (and the
RAM-speed-writes property), which should hold across the whole grid.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    scaled_gb,
    shared_fs_model,
)
from repro.fsmodel.impressions import ImpressionsConfig
from repro.sweep import SweepPoint, run_sweep_points
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace

WS_FRACTIONS = (0.6, 0.8, 0.9)
THREAD_COUNTS = (2, 8, 16)
FAST_WS_FRACTIONS = (0.6, 0.9)
FAST_THREAD_COUNTS = (2, 16)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_fractions: Optional[Sequence[float]] = None,
    thread_counts: Optional[Sequence[int]] = None,
    ws_gb: float = 60.0,
) -> ExperimentResult:
    fractions = ws_fractions or (FAST_WS_FRACTIONS if fast else WS_FRACTIONS)
    threads = thread_counts or (FAST_THREAD_COUNTS if fast else THREAD_COUNTS)
    model = shared_fs_model(scale)
    result = ExperimentResult(
        experiment="sensitivity",
        title="Sensitivity to WS fraction and thread count (%g GB WS)" % ws_gb,
        columns=(
            "ws_fraction",
            "threads",
            "flash_read_us",
            "noflash_read_us",
            "flash_win",
            "flash_write_us",
        ),
        notes=(
            "Paper (§4, stated without data): changing the working-set "
            "percentage and the thread count does not affect the key "
            "conclusions.  Expected: the flash win stays >1 and writes "
            "stay at RAM speed over the whole grid."
        ),
    )
    with_flash = baseline_config(scale=scale)
    without = baseline_config(flash_gb=0.0, scale=scale)
    cells = [(fraction, n_threads) for fraction in fractions for n_threads in threads]
    sweep_points = []
    for fraction, n_threads in cells:
        trace = generate_trace(
            TraceGenConfig(
                fs=ImpressionsConfig(total_bytes=model.total_bytes),
                working_set_bytes=scaled_gb(ws_gb, scale),
                threads_per_host=n_threads,
                ws_fraction=fraction,
                seed=42,
            ),
            model=model,
        )
        sweep_points.append(SweepPoint(config=with_flash, trace=trace))
        sweep_points.append(SweepPoint(config=without, trace=trace))
    results = iter(run_sweep_points(sweep_points, workers=workers).results)
    for fraction, n_threads in cells:
        flash_res = next(results)
        plain_res = next(results)
        result.add_row(
            ws_fraction=fraction,
            threads=n_threads,
            flash_read_us=flash_res.read_latency_us,
            noflash_read_us=plain_res.read_latency_us,
            flash_win=(
                plain_res.read_latency_us / flash_res.read_latency_us
                if flash_res.read_latency_us
                else 0.0
            ),
            flash_write_us=flash_res.write_latency_us,
        )
    return result
