"""Figure 2 — read/write latency across 49 writeback-policy combinations
for the three architectures (80 GB working set; 8 GB RAM, 64 GB flash).

Headline results to reproduce (§7.1):

* every policy combination performs the same *except* those exposing
  synchronous filer writes — RAM policy ``s`` chained through flash
  policy ``s``/``n``, and the eviction convoys of ``n``;
* the unified architecture has the lowest read latency (effective size
  RAM+flash); naive/lookaside have the lowest write latency (RAM-speed
  writes, while unified exposes ~8/9 of the flash write latency).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.architectures import Architecture
from repro.core.policies import WritebackPolicy
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
    scaled_policy,
)
from repro.sweep import run_sweep


def policy_grid(fast: bool) -> List[WritebackPolicy]:
    """The policy axis: all seven, or the four structurally distinct
    ones in fast mode (sync, async, one periodic, none)."""
    if fast:
        return [
            WritebackPolicy.sync(),
            WritebackPolicy.asynchronous(),
            WritebackPolicy.periodic(1),
            WritebackPolicy.none(),
        ]
    return WritebackPolicy.all_seven()


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_gb: float = 80.0,
) -> ExperimentResult:
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    policies = policy_grid(fast)
    result = ExperimentResult(
        experiment="figure2",
        title="Latency vs. RAM/flash writeback policy, %g GB working set" % ws_gb,
        columns=("arch", "ram_policy", "flash_policy", "read_us", "write_us"),
        notes=(
            "Paper: flat surfaces except synchronous-to-filer corners; "
            "unified lowest reads, naive/lookaside lowest writes."
        ),
    )
    # The paper's three architectures (EXCLUSIVE is this repo's
    # extension and is covered by the placement experiment).
    grid = [
        (arch, ram_policy, flash_policy)
        for arch in (Architecture.NAIVE, Architecture.LOOKASIDE, Architecture.UNIFIED)
        for ram_policy in policies
        for flash_policy in policies
    ]
    configs = [
        baseline_config(scale=scale)
        .with_architecture(arch)
        .with_policies(
            ram_writeback=scaled_policy(ram_policy, scale),
            flash_writeback=scaled_policy(flash_policy, scale),
        )
        for arch, ram_policy, flash_policy in grid
    ]
    for (arch, ram_policy, flash_policy), res in zip(
        grid, run_sweep(trace, configs, workers=workers)
    ):
        result.add_row(
            arch=str(arch),
            ram_policy=ram_policy.label,
            flash_policy=flash_policy.label,
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
        )
    return result
