"""Table 1 — Timing Model Parameters.

Not a measurement: the table *is* the simulator's default timing model,
so this experiment simply renders it and lets the test suite pin every
value to the paper's numbers.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import TimingModel
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult


def run(
    *, scale: int = DEFAULT_SCALE, fast: bool = False, workers: Optional[int] = None
) -> ExperimentResult:
    """Render Table 1 (all options accepted for harness uniformity)."""
    del scale, fast, workers
    timing = TimingModel.paper_default()
    result = ExperimentResult(
        experiment="table1",
        title="Timing Model Parameters",
        columns=("parameter", "value"),
        notes="Matches the paper's Table 1 exactly (values in us unless noted).",
    )
    for line in timing.as_table().splitlines():
        name, value = line.rsplit("  ", 1)
        result.add_row(parameter=name.strip(), value=value.strip())
    return result
