"""Table 1 — Timing Model Parameters.

Not a measurement: the table *is* the simulator's default timing model,
so this experiment simply renders it and lets the test suite pin every
value to the paper's numbers.
"""

from __future__ import annotations

from repro.core.config import TimingModel
from repro.experiments.common import ExperimentResult


def run(scale: int = 0, fast: bool = False) -> ExperimentResult:
    """Render Table 1 (scale/fast accepted for harness uniformity)."""
    timing = TimingModel.paper_default()
    result = ExperimentResult(
        experiment="table1",
        title="Timing Model Parameters",
        columns=("parameter", "value"),
        notes="Matches the paper's Table 1 exactly (values in us unless noted).",
    )
    for line in timing.as_table().splitlines():
        name, value = line.rsplit("  ", 1)
        result.add_row(parameter=name.strip(), value=value.strip())
    return result
