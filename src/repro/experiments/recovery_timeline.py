"""Extension experiment: read latency *over time* after a restart.

The aggregate means of :mod:`repro.experiments.recovery` hide the
dynamics; this experiment buckets read latency by time since the reboot
and shows the recovery trajectory: the cold-start curve decays slowly
as the cache refills from scratch, the recovering-persistent curve is
pinned at filer latency until the scan completes and then drops to the
warm level almost instantly.
"""

from __future__ import annotations

from typing import Optional

from repro._units import MS, US
from repro.core.restart import RestartSpec
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep_points


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_gb: float = 60.0,
    scan_us_per_block: int = 20,
    bucket_ms: Optional[float] = None,
) -> ExperimentResult:
    # Longer trace so the post-restart trajectory has room to play out.
    trace = baseline_trace(ws_gb=ws_gb, scale=scale, volume_multiple=8.0)
    config = baseline_config(scale=scale)
    if bucket_ms is None:
        bucket_ms = 40.0 if fast else 20.0
    bucket_ns = int(bucket_ms * MS)

    points = [
        SweepPoint(
            config=config,
            trace=trace,
            restart=RestartSpec.crash_volatile(),
            timeline_bucket_ns=bucket_ns,
        ),
        SweepPoint(
            config=config,
            trace=trace,
            restart=RestartSpec.recover_persistent(scan_us_per_block * US),
            timeline_bucket_ns=bucket_ns,
        ),
        SweepPoint(config=config, trace=trace, timeline_bucket_ns=bucket_ns),
    ]
    outcome = run_sweep_points(points, workers=workers)
    runs = dict(zip(("cold", "recovering", "warm"), outcome.results))

    result = ExperimentResult(
        experiment="recovery_timeline",
        title="Read latency vs. time since restart (scan %d us/block)"
        % scan_us_per_block,
        columns=("t_ms", "cold_us", "recovering_us", "warm_us"),
        notes=(
            "Expected: warm flat; cold decays gradually as the cache "
            "refills; recovering sits at filer latency during the scan "
            "window, then drops to the warm level."
        ),
    )
    series = {
        name: dict(
            (bucket_start, mean)
            for bucket_start, mean, _count in run.read_timeline.series()
        )
        for name, run in runs.items()
    }
    buckets = sorted(set().union(*[s.keys() for s in series.values()]))
    for bucket_start in buckets:
        result.add_row(
            t_ms=bucket_start / MS,
            cold_us=(series["cold"].get(bucket_start, 0.0)) / 1000.0,
            recovering_us=(series["recovering"].get(bucket_start, 0.0)) / 1000.0,
            warm_us=(series["warm"].get(bucket_start, 0.0)) / 1000.0,
        )
    return result
