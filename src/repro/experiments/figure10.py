"""Figure 10 — the effect of flash cache persistence.

§7.8: persistence is modeled by doubling the flash write latency (a
data write plus a metadata write per block); its benefit is measured by
comparing a warmed run against a run whose warmup phase is skipped —
"equivalent to having a non-persistent cache and crashing at the
beginning of the simulator run".  Three curves over working-set size:
no flash (warmed), 64 GB flash not warmed, 64 GB flash warmed.

Findings: the doubled write latency is invisible to the application,
while losing the warm cache is expensive for every working set that
fits (or mostly fits) in flash.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.core.simulator import run_simulation
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure3 import FAST_WS_SWEEP, FULL_WS_SWEEP


def run(
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="figure10",
        title="Effect of persistence: warm vs. cold flash cache",
        columns=("ws_gb", "noflash_warm_us", "flash_cold_us", "flash_warm_us"),
        notes=(
            "Paper: warm persistent flash (with doubled write latency) "
            "matches the non-persistent warm cache; the cold-start curve "
            "sits well above it; no-flash worst overall.  Also: the "
            "persistence write penalty itself is invisible."
        ),
    )
    noflash = baseline_config(flash_gb=0.0, scale=scale)
    flash_persistent = replace(baseline_config(scale=scale), persistent_flash=True)
    for ws_gb in sweep:
        trace = baseline_trace(ws_gb=ws_gb, scale=scale)
        result.add_row(
            ws_gb=ws_gb,
            noflash_warm_us=run_simulation(trace, noflash).read_latency_us,
            flash_cold_us=run_simulation(
                trace, flash_persistent, cold_start=True
            ).read_latency_us,
            flash_warm_us=run_simulation(trace, flash_persistent).read_latency_us,
        )
    return result


def persistence_cost(scale: int = DEFAULT_SCALE, ws_gb: float = 60.0):
    """The §7.8 cost check: warmed runs with and without the doubled
    flash write latency; returns (plain, persistent) results."""
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    plain = run_simulation(trace, baseline_config(scale=scale))
    persistent = run_simulation(
        trace, replace(baseline_config(scale=scale), persistent_flash=True)
    )
    return plain, persistent
