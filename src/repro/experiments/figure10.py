"""Figure 10 — the effect of flash cache persistence.

§7.8: persistence is modeled by doubling the flash write latency (a
data write plus a metadata write per block); its benefit is measured by
comparing a warmed run against a run whose warmup phase is skipped —
"equivalent to having a non-persistent cache and crashing at the
beginning of the simulator run".  Three curves over working-set size:
no flash (warmed), 64 GB flash not warmed, 64 GB flash warmed.

Findings: the doubled write latency is invisible to the application,
while losing the warm cache is expensive for every working set that
fits (or mostly fits) in flash.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure3 import FAST_WS_SWEEP, FULL_WS_SWEEP
from repro.sweep import SweepPoint, run_sweep, run_sweep_points


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="figure10",
        title="Effect of persistence: warm vs. cold flash cache",
        columns=("ws_gb", "noflash_warm_us", "flash_cold_us", "flash_warm_us"),
        notes=(
            "Paper: warm persistent flash (with doubled write latency) "
            "matches the non-persistent warm cache; the cold-start curve "
            "sits well above it; no-flash worst overall.  Also: the "
            "persistence write penalty itself is invisible."
        ),
    )
    noflash = baseline_config(flash_gb=0.0, scale=scale)
    flash_persistent = baseline_config(scale=scale).with_overrides(
        persistent_flash=True
    )
    points = []
    for ws_gb in sweep:
        trace = baseline_trace(ws_gb=ws_gb, scale=scale)
        points.append(SweepPoint(config=noflash, trace=trace))
        points.append(SweepPoint(config=flash_persistent, trace=trace, cold_start=True))
        points.append(SweepPoint(config=flash_persistent, trace=trace))
    results = iter(run_sweep_points(points, workers=workers).results)
    for ws_gb in sweep:
        result.add_row(
            ws_gb=ws_gb,
            noflash_warm_us=next(results).read_latency_us,
            flash_cold_us=next(results).read_latency_us,
            flash_warm_us=next(results).read_latency_us,
        )
    return result


def persistence_cost(
    *, scale: int = DEFAULT_SCALE, ws_gb: float = 60.0, workers: Optional[int] = None
):
    """The §7.8 cost check: warmed runs with and without the doubled
    flash write latency; returns (plain, persistent) results."""
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    base = baseline_config(scale=scale)
    plain, persistent = run_sweep(
        trace, [base, base.with_overrides(persistent_flash=True)], workers=workers
    )
    return plain, persistent
