"""§7.4's omitted graphs — flash cache size at a fixed workload.

"We next examined the converse case: given a fixed workload, what
happens as we increase the flash cache size.  As expected, the read
latency decreases as a greater portion of the working set falls in the
cache until the flash cache is large enough to capture the entire
working set, at which point the read latency is that of flash.  As
there is nothing unexpected in these results, we have omitted the
corresponding graphs."

The graphs are cheap to regenerate, so here they are: read latency and
flash hit rate vs. flash size for both baseline working sets, with the
plateau position checked against the paper's description.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep_points

FULL_FLASH_SWEEP = (8.0, 16.0, 32.0, 48.0, 64.0, 96.0, 128.0, 192.0)
FAST_FLASH_SWEEP = (8.0, 32.0, 64.0, 128.0)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    flash_sweep_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = flash_sweep_gb or (FAST_FLASH_SWEEP if fast else FULL_FLASH_SWEEP)
    result = ExperimentResult(
        experiment="section74",
        title="Read latency vs. flash size at fixed working sets "
        "(the graphs §7.4 omitted)",
        columns=(
            "flash_gb",
            "read60_us",
            "hit60_pct",
            "read80_us",
            "hit80_pct",
        ),
        notes=(
            "Paper's description: latency decreases with flash size until "
            "the cache captures the working set, then plateaus at flash "
            "latency; the 60 GB curve should plateau by 64 GB, the 80 GB "
            "curve by 96-128 GB."
        ),
    )
    traces = {
        "60": baseline_trace(ws_gb=60.0, scale=scale),
        "80": baseline_trace(ws_gb=80.0, scale=scale),
    }
    points = [
        SweepPoint(
            config=baseline_config(flash_gb=flash_gb, scale=scale), trace=trace
        )
        for flash_gb in sweep
        for trace in traces.values()
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for flash_gb in sweep:
        row = {"flash_gb": flash_gb}
        for label in traces:
            res = next(results)
            hit_rate = res.hit_rate("flash") or 0.0
            row["read%s_us" % label] = res.read_latency_us
            row["hit%s_pct" % label] = 100.0 * hit_rate
        result.add_row(**row)
    return result
