"""Extension experiment: the consistency traffic the paper leaves out.

§3.8: "we only count invalidations; we do not model the overhead of
cache consistency traffic."  With `model_invalidation_traffic`, every
cross-host invalidation additionally occupies the victim's filer→host
wire with one notification packet — a lower bound on what any real
protocol costs (no acknowledgements, no directory lookups).

The experiment measures how much that minimal traffic alone adds to
application read latency as sharing intensity grows, answering whether
the paper's count-only simplification hid anything material.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep_points

FULL_GRID = ((2, 0.30), (2, 0.60), (4, 0.30), (4, 0.60), (8, 0.30))
FAST_GRID = ((2, 0.30), (4, 0.60))


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    grid: Optional[Sequence] = None,
    ws_gb: float = 60.0,
) -> ExperimentResult:
    points = grid or (FAST_GRID if fast else FULL_GRID)
    result = ExperimentResult(
        experiment="consistency_traffic",
        title="Cost of modeling invalidation traffic (shared %g GB WS)" % ws_gb,
        columns=(
            "hosts",
            "write_pct",
            "read_counted_us",
            "read_modeled_us",
            "overhead_pct",
            "inval_pct",
        ),
        notes=(
            "Paper counts invalidations but charges no traffic (§3.8); "
            "'modeled' charges one notification packet per dropped copy "
            "on the victim's wire.  Expected: small single-digit-% read "
            "overhead, growing with hosts and write ratio — the paper's "
            "simplification is defensible but not free."
        ),
    )
    counted = baseline_config(scale=scale)
    modeled = counted.with_overrides(model_invalidation_traffic=True)
    sweep_points = []
    for n_hosts, write_fraction in points:
        trace = baseline_trace(
            ws_gb=ws_gb,
            n_hosts=n_hosts,
            write_fraction=write_fraction,
            shared_working_set=True,
            scale=scale,
        )
        sweep_points.append(SweepPoint(config=counted, trace=trace))
        sweep_points.append(SweepPoint(config=modeled, trace=trace))
    results = iter(run_sweep_points(sweep_points, workers=workers).results)
    for n_hosts, write_fraction in points:
        base = next(results)
        with_traffic = next(results)
        overhead = (
            100.0 * (with_traffic.read_latency_us / base.read_latency_us - 1.0)
            if base.read_latency_us
            else 0.0
        )
        result.add_row(
            hosts=n_hosts,
            write_pct=round(100 * write_fraction),
            read_counted_us=base.read_latency_us,
            read_modeled_us=with_traffic.read_latency_us,
            overhead_pct=overhead,
            inval_pct=100.0 * with_traffic.invalidation_fraction,
        )
    return result
