"""Figure 12 — cache consistency: invalidations vs. working-set size.

§7.9's second family: two hosts sharing one working set at the baseline
30 % writes, sweeping the working-set size; invalidation percentage and
read latency, with and without a 64 GB flash.

Findings: "for workloads that fit in flash, the percentage of writes
requiring invalidation is high, even relative to workloads that fit in
RAM with no flash.  The invalidation rate drops off for out-of-cache
workloads, but neither as quickly nor as significantly as with the
smaller RAM cache."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure3 import FAST_WS_SWEEP, FULL_WS_SWEEP
from repro.sweep import SweepPoint, run_sweep_points


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="figure12",
        title="Invalidations and read latency vs. working-set size "
        "(2 hosts, shared WS, 30%% writes)",
        columns=(
            "ws_gb",
            "inval_noflash_pct",
            "inval_flash_pct",
            "read_noflash_us",
            "read_flash_us",
        ),
        notes=(
            "Paper: invalidation rate high while the WS fits in flash and "
            "decaying slowly beyond it; the no-flash rate decays much "
            "faster with WS size."
        ),
    )
    configs = {
        "noflash": baseline_config(flash_gb=0.0, scale=scale),
        "flash": baseline_config(flash_gb=64.0, scale=scale),
    }
    points = [
        SweepPoint(
            config=config,
            trace=baseline_trace(
                ws_gb=ws_gb, n_hosts=2, shared_working_set=True, scale=scale
            ),
        )
        for ws_gb in sweep
        for config in configs.values()
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for ws_gb in sweep:
        row = {"ws_gb": ws_gb}
        for cfg_label in configs:
            res = next(results)
            row["inval_%s_pct" % cfg_label] = 100.0 * res.invalidation_fraction
            row["read_%s_us" % cfg_label] = res.read_latency_us
        result.add_row(**row)
    return result
