"""Ablation experiments for the design choices the paper fixes.

The paper deliberately holds several knobs constant; these ablations
quantify how much the headline conclusions depend on them:

* **Eviction policy** — the paper uses LRU everywhere ("we use LRU",
  §1) and puts replacement policy outside its design space.
* **Flash internal parallelism** — the simulator treats the flash as an
  average-latency block device; real SSDs have limited channel
  parallelism.
* **The free FTL** — §3 assumes the FTL is free; §8 calls a
  caching-specialized FTL future work.  The FTL-backed device model
  charges garbage-collection relocations and erases to the cache's
  writes.

Each ablation is runnable on its own; :func:`run` stacks all three into
one table for the experiment registry.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import SweepPoint, run_sweep, run_sweep_points


def eviction_policy(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    policies: Sequence[str] = ("lru", "fifo", "clock", "slru"),
) -> ExperimentResult:
    """LRU vs. FIFO vs. CLOCK vs. SLRU on both baseline working sets."""
    result = ExperimentResult(
        experiment="ablation_eviction",
        title="Eviction policy ablation (baseline caches)",
        columns=("policy", "read60_us", "read80_us", "flash_hit60", "flash_hit80"),
        notes=(
            "The paper fixes LRU; this checks its conclusions don't hinge "
            "on that: CLOCK tracks LRU closely, FIFO gives up some hits."
        ),
    )
    working_sets = ((60.0, "60"), (80.0, "80"))
    points = [
        SweepPoint(
            config=baseline_config(scale=scale).with_overrides(eviction_policy=policy),
            trace=baseline_trace(ws_gb=ws_gb, scale=scale),
        )
        for policy in policies
        for ws_gb, _label in working_sets
    ]
    results = iter(run_sweep_points(points, workers=workers).results)
    for policy in policies:
        row = {"policy": policy}
        for _ws_gb, label in working_sets:
            res = next(results)
            row["read%s_us" % label] = res.read_latency_us
            row["flash_hit%s" % label] = res.hit_rate("flash")
        result.add_row(**row)
    return result


def flash_parallelism(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    levels: Sequence[int] = (0, 8, 2, 1),
) -> ExperimentResult:
    """How much does bounded device parallelism change the picture?"""
    result = ExperimentResult(
        experiment="ablation_parallelism",
        title="Flash internal-parallelism ablation (60 GB working set)",
        columns=("parallelism", "read_us", "write_us"),
        notes=(
            "0 = the paper's latency-server model.  With eight application "
            "threads, a single-channel device queues concurrent flash hits."
        ),
    )
    trace = baseline_trace(ws_gb=60.0, scale=scale)
    configs = [
        baseline_config(scale=scale).with_overrides(flash_parallelism=level)
        for level in levels
    ]
    for level, res in zip(levels, run_sweep(trace, configs, workers=workers)):
        result.add_row(
            parallelism="unlimited" if level == 0 else str(level),
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
        )
    return result


def ftl_cost(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    overprovisions: Sequence[Optional[float]] = (None, 0.07, 0.20),
) -> ExperimentResult:
    """The cost of not getting the FTL for free (§8 future work).

    ``None`` means the paper's free-FTL model; numbers are the
    overprovisioned fraction of the FTL-backed device.
    """
    result = ExperimentResult(
        experiment="ablation_ftl",
        title="FTL cost ablation (60 GB working set, 30% writes)",
        columns=("ftl", "read_us", "write_us", "write_amplification"),
        notes=(
            "Cache evictions TRIM their pages, which keeps GC cheap — the "
            "behavior a caching-specialized FTL formalizes.  More "
            "overprovisioning further lowers write amplification."
        ),
    )
    trace = baseline_trace(ws_gb=60.0, scale=scale)
    labels = []
    configs = []
    for overprovision in overprovisions:
        if overprovision is None:
            configs.append(baseline_config(scale=scale))
            labels.append("free (paper)")
        else:
            configs.append(
                baseline_config(scale=scale).with_overrides(
                    ftl_model=True, ftl_overprovision=overprovision
                )
            )
            labels.append("modeled op=%.0f%%" % (100 * overprovision))
    for label, res in zip(labels, run_sweep(trace, configs, workers=workers)):
        result.add_row(
            ftl=label,
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
            write_amplification=(
                res.flash_write_amplification
                if res.flash_write_amplification is not None
                else 1.0
            ),
        )
    return result


def run(
    *, scale: int = DEFAULT_SCALE, fast: bool = False, workers: Optional[int] = None
) -> ExperimentResult:
    """All three ablations stacked into one table.

    Sub-tables keep their own column names; cells a sub-table does not
    define render empty.
    """
    parts = (
        eviction_policy(scale=scale, fast=fast, workers=workers),
        flash_parallelism(scale=scale, fast=fast, workers=workers),
        ftl_cost(scale=scale, fast=fast, workers=workers),
    )
    columns = ["ablation", "setting"]
    for part in parts:
        for col in part.columns[1:]:
            if col not in columns:
                columns.append(col)
    result = ExperimentResult(
        experiment="ablations",
        title="Design-choice ablations (eviction / parallelism / FTL)",
        columns=tuple(columns),
        notes="; ".join(part.notes for part in parts if part.notes),
    )
    for part in parts:
        key = part.columns[0]
        for row in part.rows:
            merged = {"ablation": part.experiment, "setting": row[key]}
            merged.update(
                (col, row[col]) for col in part.columns[1:] if col in row
            )
            result.add_row(**merged)
    return result
