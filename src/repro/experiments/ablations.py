"""Ablation experiments for the design choices the paper fixes.

The paper deliberately holds several knobs constant; these ablations
quantify how much the headline conclusions depend on them:

* **Eviction policy** — the paper uses LRU everywhere ("we use LRU",
  §1) and puts replacement policy outside its design space.
* **Flash internal parallelism** — the simulator treats the flash as an
  average-latency block device; real SSDs have limited channel
  parallelism.
* **The free FTL** — §3 assumes the FTL is free; §8 calls a
  caching-specialized FTL future work.  The FTL-backed device model
  charges garbage-collection relocations and erases to the cache's
  writes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.core.simulator import run_simulation
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)


def eviction_policy(
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    policies: Sequence[str] = ("lru", "fifo", "clock", "slru"),
) -> ExperimentResult:
    """LRU vs. FIFO vs. CLOCK vs. SLRU on both baseline working sets."""
    result = ExperimentResult(
        experiment="ablation_eviction",
        title="Eviction policy ablation (baseline caches)",
        columns=("policy", "read60_us", "read80_us", "flash_hit60", "flash_hit80"),
        notes=(
            "The paper fixes LRU; this checks its conclusions don't hinge "
            "on that: CLOCK tracks LRU closely, FIFO gives up some hits."
        ),
    )
    for policy in policies:
        row = {"policy": policy}
        for ws_gb, label in ((60.0, "60"), (80.0, "80")):
            trace = baseline_trace(ws_gb=ws_gb, scale=scale)
            config = replace(baseline_config(scale=scale), eviction_policy=policy)
            res = run_simulation(trace, config)
            row["read%s_us" % label] = res.read_latency_us
            row["flash_hit%s" % label] = res.hit_rate("flash")
        result.add_row(**row)
    return result


def flash_parallelism(
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    levels: Sequence[int] = (0, 8, 2, 1),
) -> ExperimentResult:
    """How much does bounded device parallelism change the picture?"""
    result = ExperimentResult(
        experiment="ablation_parallelism",
        title="Flash internal-parallelism ablation (60 GB working set)",
        columns=("parallelism", "read_us", "write_us"),
        notes=(
            "0 = the paper's latency-server model.  With eight application "
            "threads, a single-channel device queues concurrent flash hits."
        ),
    )
    trace = baseline_trace(ws_gb=60.0, scale=scale)
    for level in levels:
        config = replace(baseline_config(scale=scale), flash_parallelism=level)
        res = run_simulation(trace, config)
        result.add_row(
            parallelism="unlimited" if level == 0 else str(level),
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
        )
    return result


def ftl_cost(
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    overprovisions: Sequence[Optional[float]] = (None, 0.07, 0.20),
) -> ExperimentResult:
    """The cost of not getting the FTL for free (§8 future work).

    ``None`` means the paper's free-FTL model; numbers are the
    overprovisioned fraction of the FTL-backed device.
    """
    result = ExperimentResult(
        experiment="ablation_ftl",
        title="FTL cost ablation (60 GB working set, 30% writes)",
        columns=("ftl", "read_us", "write_us", "write_amplification"),
        notes=(
            "Cache evictions TRIM their pages, which keeps GC cheap — the "
            "behavior a caching-specialized FTL formalizes.  More "
            "overprovisioning further lowers write amplification."
        ),
    )
    trace = baseline_trace(ws_gb=60.0, scale=scale)
    for overprovision in overprovisions:
        if overprovision is None:
            config = baseline_config(scale=scale)
            label = "free (paper)"
        else:
            config = replace(
                baseline_config(scale=scale),
                ftl_model=True,
                ftl_overprovision=overprovision,
            )
            label = "modeled op=%.0f%%" % (100 * overprovision)
        res = run_simulation(trace, config)
        result.add_row(
            ftl=label,
            read_us=res.read_latency_us,
            write_us=res.write_latency_us,
            write_amplification=(
                res.flash_write_amplification
                if res.flash_write_amplification is not None
                else 1.0
            ),
        )
    return result
