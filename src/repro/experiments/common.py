"""Shared infrastructure for the per-figure experiments.

**Scaling.**  The paper's geometry (8 GB RAM, 32–128 GB flash, 5–640 GB
working sets, a 1.4 TB file-server model, ~2.5 TB of trace volume) is
far beyond what a pure-Python simulator can replay in benchmark time.
Every experiment therefore runs at geometry divided by ``scale``
(default 4096: GB → 256 KB), with *latency constants untouched*.  All
of the paper's results are driven by capacity ratios (working set vs.
flash vs. RAM) and by latency constants, so shrinking every capacity by
the same factor preserves crossovers, plateaus, and orderings; only
sampling noise grows.  Set the ``REPRO_SCALE_DIVISOR`` environment
variable to a smaller divisor for higher-fidelity (slower) runs.

**Trace reuse.**  All experiments share one scaled file-server model
(the paper uses a single Impressions model for every trace) and traces
are cached per parameter set, so sweeps don't regenerate them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence

from repro._units import GB, MB, TB
from repro.core.config import SimConfig
from repro.core.policies import WritebackPolicy
from repro.errors import ConfigError
from repro.fsmodel.files import FileSystemModel
from repro.fsmodel.impressions import ImpressionsConfig, generate_filesystem
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.traces.records import Trace

#: Default geometry divisor (GB -> 256 KB).  Figures use ratios, so the
#: divisor only trades runtime against sampling noise.
DEFAULT_SCALE = int(os.environ.get("REPRO_SCALE_DIVISOR", "4096"))

#: The paper's file-server model is 1.4 TB.
_FS_MODEL_TB = 1.4


def scaled_gb(gb_value: float, scale: int = DEFAULT_SCALE) -> int:
    """Convert a paper-scale GB figure to scaled bytes (min one block)."""
    nbytes = int(gb_value * GB) // scale
    return max(4096, nbytes) if gb_value > 0 else 0


def scaled_policy(policy: WritebackPolicy, scale: int = DEFAULT_SCALE) -> WritebackPolicy:
    """Scale a periodic policy's period with the geometry.

    A scaled trace moves ``scale``-times less data, so it finishes in
    ``scale``-times less simulated time; dividing syncer periods by the
    same factor keeps the *syncs per unit of trace progress* — which is
    what distinguishes ``p1`` from ``p30`` from ``n`` — identical to the
    paper's runs.  Non-periodic policies pass through unchanged.
    """
    if policy.period_ns is None:
        return policy
    return WritebackPolicy(
        policy.kind, period_ns=max(1_000, policy.period_ns // scale)
    )


@lru_cache(maxsize=4)
def shared_fs_model(scale: int = DEFAULT_SCALE) -> FileSystemModel:
    """The single scaled file-server model every experiment samples."""
    total = max(int(_FS_MODEL_TB * TB) // scale, 16 * MB)
    return generate_filesystem(
        ImpressionsConfig(
            total_bytes=total,
            # Cap individual files so even heavily scaled models keep a
            # reasonable file population to sample working sets from.
            max_file_bytes=max(total // 64, 1 * MB),
            seed=1,
        )
    )


@lru_cache(maxsize=256)
def baseline_trace(
    ws_gb: float = 60.0,
    write_fraction: float = 0.30,
    n_hosts: int = 1,
    shared_working_set: bool = True,
    seed: int = 42,
    scale: int = DEFAULT_SCALE,
    volume_multiple: float = 4.0,
) -> Trace:
    """A paper-§4 trace at scaled geometry, cached across experiments.

    ``volume_multiple`` is the paper's 4x-working-set volume; small
    working sets at coarse scales yield few measured blocks, so some
    experiments raise it to keep slow-filer-read sampling noise down
    (a pure sample-count change: the measured phase is steady state).
    """
    model = shared_fs_model(scale)
    ws_bytes = scaled_gb(ws_gb, scale)
    if ws_bytes > model.total_bytes:
        raise ConfigError(
            "scaled working set (%d bytes) exceeds the file-server model; "
            "lower the working set or the scale divisor" % ws_bytes
        )
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=model.total_bytes),  # informational
        working_set_bytes=ws_bytes,
        n_hosts=n_hosts,
        threads_per_host=8,
        write_fraction=write_fraction,
        shared_working_set=shared_working_set,
        volume_multiple=volume_multiple,
        seed=seed,
    )
    return generate_trace(config, model=model)


def baseline_config(
    ram_gb: float = 8.0,
    flash_gb: float = 64.0,
    scale: int = DEFAULT_SCALE,
    **overrides,
) -> SimConfig:
    """The paper's baseline simulator configuration at scaled geometry.

    Both the sizes *and* the default one-second periodic RAM syncer are
    scaled (see :func:`scaled_policy`); explicit ``ram_policy``/
    ``flash_policy`` overrides are scaled too, so experiment code can
    pass the paper's nominal policies.
    """
    if "ram_policy" in overrides:
        overrides["ram_policy"] = scaled_policy(overrides["ram_policy"], scale)
    else:
        overrides["ram_policy"] = scaled_policy(WritebackPolicy.periodic(1), scale)
    if "flash_policy" in overrides:
        overrides["flash_policy"] = scaled_policy(overrides["flash_policy"], scale)
    return SimConfig(
        ram_bytes=scaled_gb(ram_gb, scale),
        flash_bytes=scaled_gb(flash_gb, scale) if flash_gb > 0 else 0,
        **overrides,
    )


@dataclass
class ExperimentResult:
    """The output of one experiment: labeled rows of a table/figure.

    ``rows`` is a list of dicts with identical keys; ``columns`` fixes
    the display order.  ``notes`` records what the paper's figure shows
    so EXPERIMENTS.md can compare shape.
    """

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        """Extract one column across all rows."""
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        """Render an aligned text table of the rows."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return "%.2f" % value
            return str(value)

        header = list(self.columns)
        body = [[fmt(row.get(col, "")) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for line in body:
            lines.append("  ".join(line[i].rjust(widths[i]) for i in range(len(header))))
        title = "%s — %s" % (self.experiment, self.title)
        return "\n".join([title, "=" * len(title)] + lines)
