"""Figure 11 — cache consistency: invalidations vs. write percentage.

§7.9's worst case: two hosts sharing one working set.  For write
percentages 0–90 %, measure (a) the percentage of application block
writes requiring invalidation of another host's copy and (b) the
application read latency, with a 64 GB flash per host and with no
flash, for both baseline working sets.

Findings: with flash, the invalidation percentage is high (the big
caches retain shared blocks, so writes keep finding remote copies);
read latency rises with the invalidation rate because invalidated
blocks must be refetched from the filer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.experiments.figure8 import FAST_WRITE_SWEEP, FULL_WRITE_SWEEP
from repro.sweep import SweepPoint, run_sweep_points


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    write_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    # 0% writes cannot require invalidations; start the sweep at 10%.
    sweep = [
        w for w in (write_sweep or (FAST_WRITE_SWEEP if fast else FULL_WRITE_SWEEP))
        if w > 0
    ]
    result = ExperimentResult(
        experiment="figure11",
        title="Invalidations and read latency vs. write %% (2 hosts, shared WS)",
        columns=(
            "write_pct",
            "inval_noflash80_pct",
            "inval_noflash60_pct",
            "inval_flash80_pct",
            "inval_flash60_pct",
            "read_noflash80_us",
            "read_noflash60_us",
            "read_flash80_us",
            "read_flash60_us",
        ),
        notes=(
            "Paper: invalidation percentage much higher with the 64 GB "
            "flash than with RAM only; read latency grows with the "
            "invalidation rate."
        ),
    )
    configs = {
        "noflash": baseline_config(flash_gb=0.0, scale=scale),
        "flash": baseline_config(flash_gb=64.0, scale=scale),
    }
    cells = []
    points = []
    for write_fraction in sweep:
        for ws_gb, ws_label in ((80.0, "80"), (60.0, "60")):
            trace = baseline_trace(
                ws_gb=ws_gb,
                write_fraction=write_fraction,
                n_hosts=2,
                shared_working_set=True,
                scale=scale,
            )
            for cfg_label, config in configs.items():
                cells.append((write_fraction, "%s%s" % (cfg_label, ws_label)))
                points.append(SweepPoint(config=config, trace=trace))
    rows = {
        write_fraction: {"write_pct": round(write_fraction * 100)}
        for write_fraction in sweep
    }
    for (write_fraction, suffix), res in zip(
        cells, run_sweep_points(points, workers=workers).results
    ):
        rows[write_fraction]["inval_%s_pct" % suffix] = (
            100.0 * res.invalidation_fraction
        )
        rows[write_fraction]["read_%s_us" % suffix] = res.read_latency_us
    for write_fraction in sweep:
        result.add_row(**rows[write_fraction])
    return result
