"""Figure 3 — effective cache size: structure vs. medium latency.

The paper compares, across working-set sizes:

* ``8G RAM, 64G flash, Naive`` — the real baseline;
* ``8G RAM, 64G RAM, Naive`` — the same structure pretending the flash
  is as fast as RAM (isolates the *structural* effect);
* ``8G RAM, 56G RAM, Unified`` — a unified cache with the same 64 GB
  *total*, also at RAM speed.

Finding: the RAM-only unified 8+56 curve is identical to the RAM-only
naive 8+64 curve (same effective capacity!), and the gap to the real
flash curve is purely the flash medium's latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.architectures import Architecture
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.flash.timing import FlashTiming
from repro.sweep import SweepPoint, run_sweep_points

#: Working-set sweep (GB at paper scale), §7.2's 5–640 GB range.
FULL_WS_SWEEP = (5.0, 20.0, 40.0, 60.0, 80.0, 120.0, 200.0, 320.0, 640.0)
FAST_WS_SWEEP = (5.0, 40.0, 60.0, 80.0, 320.0)


def ram_speed_flash() -> FlashTiming:
    """A "flash" with RAM's 400 ns access time (the pretend cases)."""
    return FlashTiming(read_ns=400, write_ns=400)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_sweep: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    sweep = ws_sweep or (FAST_WS_SWEEP if fast else FULL_WS_SWEEP)
    result = ExperimentResult(
        experiment="figure3",
        title="Read latency vs. working-set size: effective cache sizes",
        columns=("ws_gb", "naive_flash_us", "naive_ramspeed_us", "unified_56_ramspeed_us"),
        notes=(
            "Paper: the two RAM-speed curves coincide (equal effective "
            "capacity 72 GB... naive 8+64 vs unified 8+56 = 64 total); the "
            "real-flash curve sits above them by the flash latency."
        ),
    )
    naive_real = baseline_config(scale=scale)
    naive_ramspeed = naive_real.with_timing(
        naive_real.timing.with_flash(ram_speed_flash())
    )
    unified_ramspeed = baseline_config(
        ram_gb=8.0, flash_gb=56.0, scale=scale, architecture=Architecture.UNIFIED
    )
    unified_ramspeed = unified_ramspeed.with_timing(
        unified_ramspeed.timing.with_flash(ram_speed_flash())
    )
    curves = (naive_real, naive_ramspeed, unified_ramspeed)
    points = [
        SweepPoint(config=config, trace=baseline_trace(ws_gb=ws_gb, scale=scale))
        for ws_gb in sweep
        for config in curves
    ]
    outcome = run_sweep_points(points, workers=workers)
    for index, ws_gb in enumerate(sweep):
        per_curve = outcome.results[index * len(curves) : (index + 1) * len(curves)]
        result.add_row(
            ws_gb=ws_gb,
            naive_flash_us=per_curve[0].read_latency_us,
            naive_ramspeed_us=per_curve[1].read_latency_us,
            unified_56_ramspeed_us=per_curve[2].read_latency_us,
        )
    return result
