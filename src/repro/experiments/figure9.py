"""Figure 9 — sensitivity to flash device timing.

§7.7: sweep the flash read latency (write latency scaled
proportionally) for all three architectures and both baseline working
sets.  "The leftmost point represents the potential performance of
phase-change memory."  Findings: application latency scales linearly
with flash latency wherever the flash latency is exposed; architecture
matters only when the working set falls out of flash (unified's larger
effective size shows).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._units import US
from repro.core.architectures import Architecture
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.flash.timing import FlashTiming
from repro.sweep import SweepPoint, run_sweep_points

FULL_READ_US_SWEEP = (1, 11, 22, 44, 66, 88, 100)
FAST_READ_US_SWEEP = (1, 44, 88)


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    read_us_sweep: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    sweep = read_us_sweep or (FAST_READ_US_SWEEP if fast else FULL_READ_US_SWEEP)
    result = ExperimentResult(
        experiment="figure9",
        title="Read latency vs. flash read time (write time proportional)",
        columns=(
            "flash_read_us",
            "lookaside80_us",
            "naive80_us",
            "unified80_us",
            "lookaside60_us",
            "naive60_us",
            "unified60_us",
        ),
        notes=(
            "Paper: latency scales linearly with flash speed; 60 GB curves "
            "below 80 GB; unified best when the WS falls out of flash."
        ),
    )
    traces = {
        "60": baseline_trace(ws_gb=60.0, scale=scale),
        "80": baseline_trace(ws_gb=80.0, scale=scale),
    }
    archs = (Architecture.NAIVE, Architecture.LOOKASIDE, Architecture.UNIFIED)
    cells = []
    points = []
    for read_us in sweep:
        timing = FlashTiming.scaled_read(read_us * US)
        for ws_label, trace in traces.items():
            for arch in archs:
                config = baseline_config(scale=scale).with_architecture(arch)
                config = config.with_timing(config.timing.with_flash(timing))
                cells.append((read_us, "%s%s_us" % (arch.value, ws_label)))
                points.append(SweepPoint(config=config, trace=trace))
    rows = {read_us: {"flash_read_us": read_us} for read_us in sweep}
    for (read_us, key), res in zip(
        cells, run_sweep_points(points, workers=workers).results
    ):
        rows[read_us][key] = res.read_latency_us
    for read_us in sweep:
        result.add_row(**rows[read_us])
    return result
