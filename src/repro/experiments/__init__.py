"""Experiment harness: one module per table/figure of the paper.

Every ``figureN`` module exposes ``run(scale=..., fast=...) -> ExperimentResult``
that regenerates the corresponding figure's series (at a scaled-down
geometry — see :mod:`repro.experiments.common`), and the benchmarks in
``benchmarks/`` wrap those runs for ``pytest --benchmark-only``.

The CLI ``repro-experiments`` runs any experiment by name and prints
its table.
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
    scaled_gb,
)

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentResult",
    "baseline_config",
    "baseline_trace",
    "scaled_gb",
]
