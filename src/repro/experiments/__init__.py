"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes the shared keyword-only entry point
``run(*, scale=DEFAULT_SCALE, fast=False, workers=None, ...) ->
ExperimentResult`` that regenerates the corresponding figure's series
(at a scaled-down geometry — see :mod:`repro.experiments.common`), and
the benchmarks in ``benchmarks/`` wrap those runs for
``pytest --benchmark-only``.  ``workers`` fans the experiment's sweep
points across CPU cores via :mod:`repro.sweep`.

Experiments are addressed through a typed registry rather than ad-hoc
``importlib`` lookups::

    from repro import experiments
    spec = experiments.get("figure4")          # ConfigError if unknown
    result = spec.run(fast=True, workers=4)
    experiments.available()                    # every name, in order
    experiments.available(kind="extension")    # just the extensions

The CLI ``repro-experiments`` runs any experiment by name and prints
its table.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Optional, Tuple

from repro.errors import ConfigError
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
    scaled_gb,
)

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentResult",
    "ExperimentSpec",
    "available",
    "baseline_config",
    "baseline_trace",
    "get",
    "scaled_gb",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: its name, family, and entry point."""

    name: str
    #: "paper" for Table 1 / Figures 1-12, "extension" for this repo's
    #: beyond-the-paper studies
    kind: str

    def load(self) -> ModuleType:
        """Import and return the experiment's module."""
        return importlib.import_module("repro.experiments.%s" % self.name)

    @property
    def run(self) -> Callable[..., ExperimentResult]:
        """The module's ``run(*, scale, fast, workers, ...)`` callable."""
        return self.load().run


#: The paper's tables/figures, in presentation order.
_PAPER_NAMES: Tuple[str, ...] = (
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
)

#: Extensions beyond the paper (see DESIGN.md §7).
_EXTENSION_NAMES: Tuple[str, ...] = (
    "placement",
    "recovery",
    "recovery_timeline",
    "multihost",
    "extended_policies",
    "scenarios",
    "tail_latency",
    "sensitivity",
    "section74",
    "consistency_traffic",
    "ablations",
    "endurance",
    "fleet",
)

_REGISTRY = {
    name: ExperimentSpec(name=name, kind=kind)
    for names, kind in ((_PAPER_NAMES, "paper"), (_EXTENSION_NAMES, "extension"))
    for name in names
}


def available(kind: Optional[str] = None) -> Tuple[str, ...]:
    """Registered experiment names, optionally one family only
    (``kind="paper"`` or ``kind="extension"``)."""
    if kind is not None and kind not in ("paper", "extension"):
        raise ConfigError("unknown experiment kind %r (paper or extension)" % kind)
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if kind is None or spec.kind == kind
    )


def get(name: str) -> ExperimentSpec:
    """Look up one experiment by name.

    Raises :class:`~repro.errors.ConfigError` naming every valid
    experiment when ``name`` is unknown — the error the CLI shows
    verbatim.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            "unknown experiment %r (choose from: %s)"
            % (name, ", ".join(available()))
        )
    return spec
