"""Extension experiment: the endurance/latency Pareto frontier.

The paper treats flash as free to write ("we assume our flash device
comes equipped with a flash translation layer") and admits every block;
its §8 names wear management as future work.  This experiment runs the
admission x cleaning policy matrix from :mod:`repro.policies` on the
paper's baseline with the FTL model enabled, and reports each
combination's latency (mean and p99 read) against its endurance cost
(bytes physically programmed, measured write amplification, projected
device lifetime at the rated erase budget).

The interesting output is the *Pareto frontier*: the paper-default
``always``/``periodic`` point buys its latency with the highest program
rate; probationary admission gives up a little hit rate for a large
program-byte reduction.  Rows on the frontier (no other row is faster
*and* writes less) are flagged in the ``pareto`` column.

The write-budget admission rate is calibrated from a measurement run:
the baseline's observed program rate, halved — so the experiment is
meaningful at any ``--scale`` without hand-tuned byte rates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._units import BLOCK_SIZE, SECOND
from repro.core.policies import WritebackPolicy
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    baseline_config,
    baseline_trace,
)
from repro.sweep import policy_grid, run_sweep

US = 1_000.0

#: Admission axis of the full matrix ("budget" is appended after
#: calibration — its rate depends on the measured baseline).
ADMISSION_AXIS = ("always", "probationary:2")


def _cleaning_axis(scale: int, fast: bool):
    """The cleaning axis, with time thresholds scaled like the writeback
    periods and the ACP watermarks low enough to engage the drain at
    scaled dirty-backlog levels (the backlog is a handful of percent of
    the scaled flash, not the tens of percent a production cache sees).
    """
    from repro.policies.cleaning import AggressiveClean, AgedClean

    axis = ["periodic"]
    if not fast:
        # Idle threshold well under the delayed-writeback flush age, so
        # aged cleaning flushes blocks the d-policy would still sit on.
        axis.append(AgedClean(idle_ns=5 * SECOND).scaled(scale))
    axis.append(AggressiveClean(high_fraction=0.01, low_fraction=0.005))
    return axis


def _calibrated_budget(baseline_results) -> str:
    """A ``budget:rate:burst`` spec at half the baseline's *host* write
    rate into the flash.  The token bucket gates host traffic, so the
    calibration must not count GC relocations (which inflate
    ``flash_program_bytes`` by the write-amplification factor); the
    burst is 125 ms of refill, so the bucket actually binds over runs
    that last well under a simulated second."""
    measured_s = max(baseline_results.measured_ns / SECOND, 1e-9)
    host_bytes = baseline_results.flash_blocks_written * BLOCK_SIZE
    rate = max(float(BLOCK_SIZE), host_bytes / measured_s / 2.0)
    burst = max(float(BLOCK_SIZE), rate / 8.0)
    return "budget:%d:%d" % (int(rate), int(burst))


def _pareto_frontier(rows) -> None:
    """Flag rows no other row beats on both read latency and program
    bytes (ties stay on the frontier)."""
    for row in rows:
        dominated = any(
            other["read_us"] < row["read_us"]
            and other["program_mb"] < row["program_mb"]
            for other in rows
        )
        row["pareto"] = "" if dominated else "*"


def run(
    *,
    scale: int = DEFAULT_SCALE,
    fast: bool = False,
    workers: Optional[int] = None,
    ws_gb: float = 80.0,
    admission: Optional[Sequence[str]] = None,
    cleaning: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Sweep the flash admission x cleaning matrix with the FTL model."""
    trace = baseline_trace(ws_gb=ws_gb, scale=scale)
    # Dirty data must linger for the cleaning policies to differ, so
    # the flash runs a scaled delayed writeback instead of the paper's
    # immediate asynchronous write-through.
    base = baseline_config(
        scale=scale,
        flash_policy=WritebackPolicy.delayed(30),
        ftl_model=True,
    )
    calibration = run_sweep(trace, [base], workers=workers)[0]
    admission_axis = list(admission or ADMISSION_AXIS)
    if admission is None:
        admission_axis.append(_calibrated_budget(calibration))
    cleaning_axis = list(cleaning or _cleaning_axis(scale, fast))
    grid = policy_grid(
        base, flash_admission=admission_axis, flash_cleaning=cleaning_axis
    )
    result = ExperimentResult(
        experiment="endurance",
        title="Flash endurance vs. latency: admission x cleaning matrix "
        "(%g GB working set, FTL model)" % ws_gb,
        columns=(
            "admission",
            "cleaning",
            "read_us",
            "p99_read_us",
            "program_mb",
            "write_amp",
            "lifetime_days",
            "pareto",
        ),
        notes=(
            "Paper default is always/periodic (first row).  '*' marks the "
            "latency/program-bytes Pareto frontier; probationary admission "
            "should cut program bytes at equal cache size, trading some "
            "flash hit rate."
        ),
    )
    results = run_sweep(
        trace, [config for _, _, config in grid], workers=workers
    )
    rows = []
    for (admission_label, cleaning_label, _config), res in zip(grid, results):
        lifetime = res.device_lifetime_days
        rows.append(
            {
                "admission": admission_label,
                "cleaning": cleaning_label,
                "read_us": res.read_latency_us,
                "p99_read_us": res.read_latency.percentile(0.99) / US,
                "program_mb": res.flash_program_bytes / (1024.0 * 1024.0),
                "write_amp": res.flash_write_amp or 0.0,
                "lifetime_days": (
                    float("inf") if lifetime is None else lifetime
                ),
            }
        )
    _pareto_frontier(rows)
    for row in rows:
        result.add_row(**row)
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CI entry point: run the matrix and assert the endurance
    direction — selective admission programs no more bytes than the
    paper's admit-everything baseline."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    result = run(scale=args.scale, fast=args.fast, workers=args.workers)
    print(result.format_table())
    by_admission = {}
    for row in result.rows:
        by_admission.setdefault(row["admission"].split(":")[0], []).append(
            row["program_mb"]
        )
    always = min(by_admission["always"])
    probationary = max(by_admission["probationary"])
    if probationary > always:
        print(
            "FAIL: probationary admission programmed %.2f MB > always %.2f MB"
            % (probationary, always)
        )
        return 1
    print(
        "OK: probationary %.2f MB <= always %.2f MB programmed"
        % (probationary, always)
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    import sys

    sys.exit(main())
