"""repro — reproduction of "Flash Caching on the Storage Client" (USENIX ATC 2013).

This package implements, from scratch, the complete system described by
Holland, Angelino, Wald, and Seltzer: a trace-driven simulator for flash
caching on the client side of a networked storage environment, together
with every substrate the paper depends on (a discrete-event simulation
kernel, LRU cache stores, flash/network/filer device models, an
Impressions-style file-system model, and a synthetic trace generator),
plus an experiment harness that regenerates every table and figure in the
paper's evaluation.

Quickstart::

    from repro import SimConfig, run_simulation
    from repro.tracegen import TraceGenConfig, generate_trace

    trace = generate_trace(TraceGenConfig.small_example())
    results = run_simulation(trace, SimConfig.baseline_scaled())
    print(results.summary())

The public API is re-exported here; see the subpackages for the full
surface:

* :mod:`repro.engine`      — discrete-event simulation kernel
* :mod:`repro.cache`       — LRU block caches
* :mod:`repro.flash`       — flash device and SSD behavioral models
* :mod:`repro.net`         — network segment model
* :mod:`repro.filer`       — file-server model
* :mod:`repro.fsmodel`     — Impressions-like file-system generator
* :mod:`repro.traces`      — trace records and serialization
* :mod:`repro.tracegen`    — synthetic trace generator
* :mod:`repro.core`        — the client cache stack and simulation driver
* :mod:`repro.sweep`       — parallel batch execution of simulation points
* :mod:`repro.obs`         — structured tracing and latency breakdowns
* :mod:`repro.experiments` — per-figure/table reproduction harness
"""

from repro._units import (
    NS,
    US,
    MS,
    SECOND,
    KB,
    MB,
    GB,
    TB,
    BLOCK_SIZE,
    blocks_for_bytes,
    format_bytes,
    format_time,
)
from repro.core import (
    Architecture,
    RestartSpec,
    SimConfig,
    TimingModel,
    SimulationResults,
    run_simulation,
)
from repro.net import DirectoryTiming
from repro.obs import Observation
from repro.tracegen import TraceGenConfig, generate_trace, generate_trace_chunked
from repro.traces import (
    ChunkedCompiledTrace,
    CompiledTrace,
    Trace,
    TraceOp,
    TraceRecord,
    compile_trace,
)

__version__ = "1.5.0"


def __getattr__(name: str):
    if name == "WritebackPolicy":
        # Deprecation shim: the blessed import location is the unified
        # policy registry package.
        import warnings

        warnings.warn(
            "importing WritebackPolicy from the repro top level is "
            "deprecated; use repro.policies.WritebackPolicy",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.policies import WritebackPolicy

        return WritebackPolicy
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

from repro.sweep import (  # noqa: E402  (needs __version__ for cache keys)
    PointReport,
    SweepOutcome,
    SweepPoint,
    run_sweep,
    run_sweep_points,
)

__all__ = [
    "NS",
    "US",
    "MS",
    "SECOND",
    "KB",
    "MB",
    "GB",
    "TB",
    "BLOCK_SIZE",
    "blocks_for_bytes",
    "format_bytes",
    "format_time",
    "Architecture",
    "DirectoryTiming",
    "RestartSpec",
    "SimConfig",
    "TimingModel",
    "WritebackPolicy",
    "SimulationResults",
    "run_simulation",
    "Observation",
    "PointReport",
    "SweepOutcome",
    "SweepPoint",
    "run_sweep",
    "run_sweep_points",
    "TraceGenConfig",
    "generate_trace",
    "generate_trace_chunked",
    "Trace",
    "TraceOp",
    "TraceRecord",
    "CompiledTrace",
    "compile_trace",
    "ChunkedCompiledTrace",
    "__version__",
]
