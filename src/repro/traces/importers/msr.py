"""MSR Cambridge / SNIA IOTTA CSV importer.

Format (one I/O per line, no header in the original release)::

    timestamp,hostname,disknumber,type,offset,size,responsetime

* ``timestamp`` — Windows filetime (ignored; the simulator reschedules)
* ``hostname`` — e.g. ``usr``, ``src1``; becomes the host id
* ``disknumber`` — integer volume; each (host, disk) becomes a file
* ``type`` — ``Read`` or ``Write`` (case-insensitive)
* ``offset``/``size`` — bytes

Lines with a header, wrong field counts, or unparsable numbers are
counted and skipped, not fatal.

Two entry points share one streaming line parser:
:func:`import_msr_csv` materializes a :class:`Trace`;
:func:`import_msr_csv_chunked` streams into a bounded-memory chunked
spool (for the multi-day full-length captures) — record-for-record
identical output.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from repro.traces.importers.base import (
    ExtentMapperBase,
    ImportStats,
    StreamingTraceBuilder,
    TraceBuilder,
)
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.records import Trace

PathLike = Union[str, Path]


def _parse_msr_lines(handle, builder: ExtentMapperBase, single_host: bool) -> None:
    """Stream lines from ``handle`` into ``builder`` — one line at a
    time, so memory is the builder's, not the file's."""
    stats = builder.stats
    for line in handle:
        stats.lines_total += 1
        line = line.strip()
        if not line or line.startswith("#"):
            stats.skip("blank or comment")
            continue
        fields = line.split(",")
        if len(fields) < 6:
            stats.skip("too few fields")
            continue
        _ts, hostname, disk, op, offset, size = fields[:6]
        op = op.strip().lower()
        if op not in ("read", "write"):
            stats.skip("unknown op %r" % op)
            continue
        try:
            offset_bytes = int(offset)
            size_bytes = int(size)
        except ValueError:
            stats.skip("non-numeric offset/size")
            continue
        host = 0 if single_host else builder.host_id(hostname.strip())
        thread = builder.thread_id(host, disk.strip())
        device = "%s.%s" % (hostname.strip(), disk.strip())
        builder.add_bytes_extent(
            op == "write", host, thread, device, offset_bytes, size_bytes
        )


def _metadata(path: PathLike) -> dict:
    return {"source": "msr-csv", "path": str(path)}


def import_msr_csv(
    path: PathLike,
    warmup_fraction: float = 0.0,
    single_host: bool = False,
) -> Tuple[Trace, "ImportStats"]:
    """Import an MSR-Cambridge-style CSV trace.

    ``single_host=True`` folds every hostname onto host 0 (useful when
    replaying a multi-volume trace through one simulated client).
    Returns ``(trace, import_stats)``.
    """
    builder = TraceBuilder(warmup_fraction)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        _parse_msr_lines(handle, builder, single_host)
    trace = builder.build(_metadata(path))
    return trace, builder.stats


def import_msr_csv_chunked(
    path: PathLike,
    warmup_fraction: float = 0.0,
    single_host: bool = False,
    *,
    spool_dir: Union[None, str, Path] = None,
    chunk_records: Optional[int] = None,
) -> Tuple[ChunkedCompiledTrace, "ImportStats"]:
    """Bounded-memory twin of :func:`import_msr_csv`: same parser, but
    records stream into a chunked spool (never ``TraceRecord``
    objects).  Returns ``(chunked_trace, import_stats)``."""
    builder = StreamingTraceBuilder(
        warmup_fraction, spool_dir=spool_dir, chunk_records=chunk_records
    )
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            _parse_msr_lines(handle, builder, single_host)
        trace = builder.build(_metadata(path))
    except BaseException:
        builder.abort()
        raise
    return trace, builder.stats
