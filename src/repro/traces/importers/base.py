"""Shared machinery for trace importers.

Third-party traces address raw byte (or sector) extents on named
devices; the simulator addresses 4 KB blocks within dense file ids.
The builders here perform that mapping incrementally:

* each distinct device name (or ASU number) becomes one "file";
* byte extents are converted to block extents (start rounded down,
  end rounded up);
* each file's size grows to cover the largest extent seen, then the
  whole geometry is frozen when :meth:`build` is called;
* requesters (process names, CPU ids...) map to dense thread ids.

Two builders share those conventions (via :class:`ExtentMapperBase`):

* :class:`TraceBuilder` accumulates ``TraceRecord`` objects and builds
  a materialized :class:`~repro.traces.records.Trace` — O(records)
  memory;
* :class:`StreamingTraceBuilder` appends straight into a
  :class:`~repro.traces.chunked.ChunkedTraceWriter` spool and builds a
  :class:`~repro.traces.chunked.ChunkedCompiledTrace` — O(chunk)
  memory, for traces too large to hold (week-long MSR/SPC captures).
  The file geometry is deferred-frozen: it grows while lines stream in
  and is resolved once at :meth:`StreamingTraceBuilder.build`, exactly
  mirroring ``TraceBuilder``'s growth rule so both builders produce
  identical geometries from identical input.

Importers accumulate :class:`ImportStats` so callers can see how many
lines were skipped and why — real trace files are messy, and silently
dropping records is how reproductions go wrong.  ``build()`` enforces
the accounting invariant ``records_imported + lines_skipped ==
lines_total``: an importer that forgets a ``stats.skip()`` call now
fails loudly at build time instead of under-reporting dropped lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro._units import BLOCK_SIZE
from repro.errors import TraceFormatError
from repro.traces.chunked import ChunkedCompiledTrace, ChunkedTraceWriter
from repro.traces.records import Trace, TraceOp, TraceRecord


@dataclass
class ImportStats:
    """What happened while importing a foreign trace."""

    lines_total: int = 0
    records_imported: int = 0
    lines_skipped: int = 0
    skip_reasons: Dict[str, int] = field(default_factory=dict)

    def skip(self, reason: str) -> None:
        self.lines_skipped += 1
        self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1

    def check_consistent(self) -> None:
        """Enforce ``records_imported + lines_skipped == lines_total``.

        Every line an importer reads must end up either imported or
        skipped-with-a-reason; drift means records were dropped
        silently — the exact failure mode the stats exist to prevent.
        Only meaningful when the importer counts lines (direct
        ``TraceBuilder`` users that never touch ``lines_total`` are
        exempt).
        """
        if (
            self.lines_total
            and self.records_imported + self.lines_skipped != self.lines_total
        ):
            raise TraceFormatError(
                "import accounting drift: %d imported + %d skipped != %d "
                "lines read — some lines were neither imported nor "
                "counted as skipped"
                % (self.records_imported, self.lines_skipped, self.lines_total)
            )

    def summary(self) -> str:
        lines = [
            "imported %d records from %d lines (%d skipped)"
            % (self.records_imported, self.lines_total, self.lines_skipped)
        ]
        for reason, count in sorted(self.skip_reasons.items()):
            lines.append("  skipped %6d: %s" % (count, reason))
        return "\n".join(lines)


class ExtentMapperBase:
    """The id mapping and byte→block conversion both builders share.

    Subclasses provide ``_emit(is_write, host, thread, file_id,
    start_block, nblocks)`` to say where converted records go, and (for
    the materialized builder) track file growth themselves.
    """

    def __init__(self, warmup_fraction: float = 0.0) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise TraceFormatError("warmup fraction must be in [0, 1)")
        self._warmup_fraction = warmup_fraction
        self._file_ids: Dict[str, int] = {}
        self._thread_ids: Dict[Tuple[int, str], int] = {}
        self._threads_per_host: Dict[int, int] = {}
        self._host_ids: Dict[str, int] = {}
        self.stats = ImportStats()

    # --- id mapping ----------------------------------------------------

    def host_id(self, name: str) -> int:
        host = self._host_ids.get(name)
        if host is None:
            host = len(self._host_ids)
            self._host_ids[name] = host
        return host

    def thread_id(self, host: int, name: str) -> int:
        key = (host, name)
        thread = self._thread_ids.get(key)
        if thread is None:
            thread = self._threads_per_host.get(host, 0)
            self._threads_per_host[host] = thread + 1
            self._thread_ids[key] = thread
        return thread

    def file_id(self, device: str) -> int:
        fid = self._file_ids.get(device)
        if fid is None:
            fid = len(self._file_ids)
            self._file_ids[device] = fid
            self._register_file(fid)
        return fid

    def _register_file(self, file_id: int) -> None:
        """Hook: a new file id was allocated."""

    # --- record accumulation ----------------------------------------------

    def add_bytes_extent(
        self,
        is_write: bool,
        host: int,
        thread: int,
        device: str,
        offset_bytes: int,
        length_bytes: int,
    ) -> bool:
        """Add one operation given a byte extent; False if unusable."""
        if offset_bytes < 0 or length_bytes <= 0:
            self.stats.skip("non-positive extent")
            return False
        start_block = offset_bytes // BLOCK_SIZE
        end_block = -(-(offset_bytes + length_bytes) // BLOCK_SIZE)
        file_id = self.file_id(device)
        self._emit(is_write, host, thread, file_id, start_block, end_block - start_block)
        self.stats.records_imported += 1
        return True

    def _emit(
        self,
        is_write: bool,
        host: int,
        thread: int,
        file_id: int,
        start_block: int,
        nblocks: int,
    ) -> None:
        raise NotImplementedError


class TraceBuilder(ExtentMapperBase):
    """Incrementally builds a materialized Trace from foreign
    byte/sector extents (O(records) memory; see
    :class:`StreamingTraceBuilder` for the bounded-memory twin)."""

    def __init__(self, warmup_fraction: float = 0.0) -> None:
        super().__init__(warmup_fraction)
        self._file_blocks: List[int] = []
        self._pending: List[Tuple[bool, int, int, int, int, int]] = []

    def _register_file(self, file_id: int) -> None:
        self._file_blocks.append(1)

    def _emit(
        self,
        is_write: bool,
        host: int,
        thread: int,
        file_id: int,
        start_block: int,
        nblocks: int,
    ) -> None:
        end_block = start_block + nblocks
        if end_block > self._file_blocks[file_id]:
            self._file_blocks[file_id] = end_block
        self._pending.append((is_write, host, thread, file_id, start_block, nblocks))

    # --- output ----------------------------------------------------------------

    def build(self, metadata: Optional[Dict[str, str]] = None) -> Trace:
        """Freeze the geometry and return the Trace.

        Raises :class:`~repro.errors.TraceFormatError` if the import
        accounting drifted (see :meth:`ImportStats.check_consistent`).
        """
        self.stats.check_consistent()
        records = [
            TraceRecord(
                TraceOp.WRITE if is_write else TraceOp.READ,
                host,
                thread,
                file_id,
                start,
                nblocks,
            )
            for is_write, host, thread, file_id, start, nblocks in self._pending
        ]
        warmup = int(len(records) * self._warmup_fraction)
        return Trace(
            records,
            self._file_blocks,
            warmup_records=warmup,
            metadata=dict(metadata or {}),
        )


class StreamingTraceBuilder(ExtentMapperBase):
    """Bounded-memory twin of :class:`TraceBuilder`.

    Converted records go straight into an on-disk chunk spool (via
    :class:`~repro.traces.chunked.ChunkedTraceWriter` in deferred-
    geometry mode) — no ``TraceRecord`` objects, no pending list.  The
    geometry freezes at :meth:`build`, which resolves file bases and
    returns a replay-ready
    :class:`~repro.traces.chunked.ChunkedCompiledTrace`.

    Given identical input, the result is record-for-record identical to
    ``compile_trace(TraceBuilder(...).build(...))`` — same id mapping,
    same extent rounding, same geometry growth, same warmup count —
    which the importer property tests assert via trace fingerprints.
    """

    def __init__(
        self,
        warmup_fraction: float = 0.0,
        *,
        spool_dir: Union[None, str, Path] = None,
        chunk_records: Optional[int] = None,
    ) -> None:
        super().__init__(warmup_fraction)
        self._writer = ChunkedTraceWriter(
            None, spool_dir=spool_dir, chunk_records=chunk_records
        )

    def _emit(
        self,
        is_write: bool,
        host: int,
        thread: int,
        file_id: int,
        start_block: int,
        nblocks: int,
    ) -> None:
        # The writer's deferred-geometry mode applies the same "grow to
        # the largest end block, never below 1" rule as TraceBuilder.
        self._writer.append(is_write, host, thread, file_id, start_block, nblocks)

    def abort(self) -> None:
        """Discard the spool (error paths)."""
        self._writer.abort()

    def build(
        self, metadata: Optional[Dict[str, str]] = None
    ) -> ChunkedCompiledTrace:
        """Freeze the geometry and return the chunked trace.

        Raises :class:`~repro.errors.TraceFormatError` if the import
        accounting drifted (see :meth:`ImportStats.check_consistent`).
        """
        self.stats.check_consistent()
        warmup = int(len(self._writer) * self._warmup_fraction)
        return self._writer.freeze(warmup, dict(metadata or {}))
