"""Shared machinery for trace importers.

Third-party traces address raw byte (or sector) extents on named
devices; the simulator addresses 4 KB blocks within dense file ids.
:class:`TraceBuilder` performs that mapping incrementally:

* each distinct device name (or ASU number) becomes one "file";
* byte extents are converted to block extents (start rounded down,
  end rounded up);
* each file's size grows to cover the largest extent seen, then the
  whole geometry is frozen when :meth:`build` is called;
* requesters (process names, CPU ids...) map to dense thread ids.

Importers accumulate :class:`ImportStats` so callers can see how many
lines were skipped and why — real trace files are messy, and silently
dropping records is how reproductions go wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._units import BLOCK_SIZE
from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceOp, TraceRecord


@dataclass
class ImportStats:
    """What happened while importing a foreign trace."""

    lines_total: int = 0
    records_imported: int = 0
    lines_skipped: int = 0
    skip_reasons: Dict[str, int] = field(default_factory=dict)

    def skip(self, reason: str) -> None:
        self.lines_skipped += 1
        self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1

    def summary(self) -> str:
        lines = [
            "imported %d records from %d lines (%d skipped)"
            % (self.records_imported, self.lines_total, self.lines_skipped)
        ]
        for reason, count in sorted(self.skip_reasons.items()):
            lines.append("  skipped %6d: %s" % (count, reason))
        return "\n".join(lines)


class TraceBuilder:
    """Incrementally builds a Trace from foreign byte/sector extents."""

    def __init__(self, warmup_fraction: float = 0.0) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise TraceFormatError("warmup fraction must be in [0, 1)")
        self._warmup_fraction = warmup_fraction
        self._file_ids: Dict[str, int] = {}
        self._file_blocks: List[int] = []
        self._thread_ids: Dict[Tuple[int, str], int] = {}
        self._threads_per_host: Dict[int, int] = {}
        self._host_ids: Dict[str, int] = {}
        self._pending: List[Tuple[bool, int, int, int, int]] = []
        self.stats = ImportStats()

    # --- id mapping ----------------------------------------------------

    def host_id(self, name: str) -> int:
        host = self._host_ids.get(name)
        if host is None:
            host = len(self._host_ids)
            self._host_ids[name] = host
        return host

    def thread_id(self, host: int, name: str) -> int:
        key = (host, name)
        thread = self._thread_ids.get(key)
        if thread is None:
            thread = self._threads_per_host.get(host, 0)
            self._threads_per_host[host] = thread + 1
            self._thread_ids[key] = thread
        return thread

    def file_id(self, device: str) -> int:
        fid = self._file_ids.get(device)
        if fid is None:
            fid = len(self._file_ids)
            self._file_ids[device] = fid
            self._file_blocks.append(1)
        return fid

    # --- record accumulation ----------------------------------------------

    def add_bytes_extent(
        self,
        is_write: bool,
        host: int,
        thread: int,
        device: str,
        offset_bytes: int,
        length_bytes: int,
    ) -> bool:
        """Add one operation given a byte extent; False if unusable."""
        if offset_bytes < 0 or length_bytes <= 0:
            self.stats.skip("non-positive extent")
            return False
        start_block = offset_bytes // BLOCK_SIZE
        end_block = -(-(offset_bytes + length_bytes) // BLOCK_SIZE)
        file_id = self.file_id(device)
        self._file_blocks[file_id] = max(self._file_blocks[file_id], end_block)
        self._pending.append(
            (is_write, host, thread, file_id, start_block)
            + (end_block - start_block,)
        )
        self.stats.records_imported += 1
        return True

    # --- output ----------------------------------------------------------------

    def build(self, metadata: Optional[Dict[str, str]] = None) -> Trace:
        """Freeze the geometry and return the Trace."""
        records = [
            TraceRecord(
                TraceOp.WRITE if is_write else TraceOp.READ,
                host,
                thread,
                file_id,
                start,
                nblocks,
            )
            for is_write, host, thread, file_id, start, nblocks in self._pending
        ]
        warmup = int(len(records) * self._warmup_fraction)
        return Trace(
            records,
            self._file_blocks,
            warmup_records=warmup,
            metadata=dict(metadata or {}),
        )
