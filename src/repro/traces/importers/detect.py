"""Format auto-detection for foreign traces.

:func:`load_any` sniffs the first non-blank lines of a file and
dispatches to the right importer (or the native loader for repro's own
formats).  Detection is heuristic but checked against every format's
canonical shape; ambiguous files raise rather than guess.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import TraceFormatError
from repro.traces.format import BINARY_MAGIC, TEXT_MAGIC, load_trace
from repro.traces.importers.base import ImportStats
from repro.traces.importers.blkparse import _LINE as _BLKPARSE_LINE
from repro.traces.importers.blkparse import import_blkparse, import_blkparse_chunked
from repro.traces.importers.msr import import_msr_csv, import_msr_csv_chunked
from repro.traces.importers.spc import import_spc, import_spc_chunked
from repro.traces.records import Trace

PathLike = Union[str, Path]

_MSR_LINE = re.compile(
    r"^[\d]+,[^,]+,\d+,\s*(read|write)\s*,\d+,\d+", re.IGNORECASE
)
_SPC_LINE = re.compile(r"^\s*\d+\s*,\s*\d+\s*,\s*\d+\s*,\s*[rw]\s*(,|$)", re.IGNORECASE)


def detect_format(path: PathLike) -> str:
    """Return one of ``native``, ``msr``, ``blkparse``, ``spc``.

    Raises :class:`TraceFormatError` when no format matches.
    """
    path = Path(path)
    with path.open("rb") as handle:
        head = handle.read(4096)
    if head.startswith(BINARY_MAGIC):
        return "native"
    # Decode strictly: every text format we detect is ASCII-clean, and a
    # lenient errors="replace" decode would let a corrupt or binary file
    # masquerade as text and *mis*detect when enough mangled bytes still
    # resemble trace lines.  Only the tail may legitimately fail — the
    # 4096-byte window can split a multi-byte sequence.
    try:
        text = head.decode("utf-8")
    except UnicodeDecodeError as exc:
        if len(head) == 4096 and exc.start >= len(head) - 3:
            text = head[: exc.start].decode("utf-8")
        else:
            raise TraceFormatError(
                "%s is neither a native binary trace nor UTF-8 text "
                "(invalid byte at offset %d)" % (path, exc.start)
            ) from exc
    lines = [line for line in text.splitlines() if line.strip()][:8]
    if not lines:
        raise TraceFormatError("empty trace file %s" % path)
    if lines[0].strip() == TEXT_MAGIC:
        return "native"
    samples = [line for line in lines if not line.lstrip().startswith(("#", "*"))]
    if samples:
        # Real trace files contain the odd malformed line; pick the
        # format most of the sample matches (majority, not unanimity).
        scores = {
            "blkparse": sum(1 for line in samples if _BLKPARSE_LINE.match(line)),
            "spc": sum(1 for line in samples if _SPC_LINE.match(line)),
            "msr": sum(1 for line in samples if _MSR_LINE.match(line)),
        }
        best = max(scores, key=lambda fmt: scores[fmt])
        if scores[best] * 2 > len(samples):
            return best
    raise TraceFormatError(
        "could not detect the trace format of %s (tried native, blkparse, "
        "spc, msr-csv)" % path
    )


def load_any(
    path: PathLike, warmup_fraction: float = 0.0
) -> Tuple[Trace, Optional[ImportStats]]:
    """Load a trace of any supported format.

    Returns ``(trace, import_stats)``; ``import_stats`` is None for the
    native formats (nothing is skipped when loading those).
    """
    fmt = detect_format(path)
    if fmt == "native":
        return load_trace(path), None
    if fmt == "msr":
        return import_msr_csv(path, warmup_fraction)
    if fmt == "blkparse":
        return import_blkparse(path, warmup_fraction=warmup_fraction)
    if fmt == "spc":
        return import_spc(path, warmup_fraction)
    raise AssertionError("unreachable: %s" % fmt)


def load_any_chunked(path: PathLike, warmup_fraction: float = 0.0, **spool_options):
    """Bounded-memory twin of :func:`load_any`: foreign formats stream
    into a chunked spool via the ``*_chunked`` importers.

    Native-format files still load materialized (they were saved from
    memory-resident traces); ``spool_options`` (``spool_dir``,
    ``chunk_records``) pass through to the streaming importers.
    Returns ``(trace, import_stats)`` where ``trace`` is a
    :class:`~repro.traces.chunked.ChunkedCompiledTrace` for foreign
    formats and a :class:`Trace` for native ones.
    """
    fmt = detect_format(path)
    if fmt == "native":
        return load_trace(path), None
    if fmt == "msr":
        return import_msr_csv_chunked(path, warmup_fraction, **spool_options)
    if fmt == "blkparse":
        return import_blkparse_chunked(
            path, warmup_fraction=warmup_fraction, **spool_options
        )
    if fmt == "spc":
        return import_spc_chunked(path, warmup_fraction, **spool_options)
    raise AssertionError("unreachable: %s" % fmt)
