"""SPC-1-style ASCII trace importer.

The Storage Performance Council trace format (used by several SNIA
repository traces) is one I/O per line::

    ASU,LBA,size,opcode,timestamp

* ``ASU`` — application storage unit (an integer); becomes a file
* ``LBA`` — logical block address in 512-byte sectors
* ``size`` — bytes
* ``opcode`` — ``R``/``r`` or ``W``/``w``
* ``timestamp`` — seconds (ignored; the simulator reschedules)

Everything lands on host 0; ASU doubles as the thread id so requests to
different units can overlap, mirroring how SPC workloads drive units
concurrently.

:func:`import_spc` materializes a :class:`Trace`;
:func:`import_spc_chunked` streams the same parser into a
bounded-memory chunked spool.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from repro.traces.importers.base import (
    ExtentMapperBase,
    ImportStats,
    StreamingTraceBuilder,
    TraceBuilder,
)
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.records import Trace

PathLike = Union[str, Path]

SECTOR = 512


def _parse_spc_lines(handle, builder: ExtentMapperBase) -> None:
    """Stream lines from ``handle`` into ``builder``."""
    stats = builder.stats
    for line in handle:
        stats.lines_total += 1
        line = line.strip()
        if not line or line.startswith(("#", "*")):
            stats.skip("blank or comment")
            continue
        fields = line.split(",")
        if len(fields) < 4:
            stats.skip("too few fields")
            continue
        asu, lba, size, opcode = (field.strip() for field in fields[:4])
        if opcode.lower() == "r":
            is_write = False
        elif opcode.lower() == "w":
            is_write = True
        else:
            stats.skip("unknown opcode %r" % opcode)
            continue
        try:
            asu_number = int(asu)
            offset_bytes = int(lba) * SECTOR
            size_bytes = int(size)
        except ValueError:
            stats.skip("non-numeric field")
            continue
        thread = builder.thread_id(0, "asu%d" % asu_number)
        builder.add_bytes_extent(
            is_write, 0, thread, "asu%d" % asu_number, offset_bytes, size_bytes
        )


def _metadata(path: PathLike) -> dict:
    return {"source": "spc", "path": str(path)}


def import_spc(
    path: PathLike, warmup_fraction: float = 0.0
) -> Tuple[Trace, "ImportStats"]:
    """Import an SPC-1-style ASCII trace; returns (trace, stats)."""
    builder = TraceBuilder(warmup_fraction)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        _parse_spc_lines(handle, builder)
    trace = builder.build(_metadata(path))
    return trace, builder.stats


def import_spc_chunked(
    path: PathLike,
    warmup_fraction: float = 0.0,
    *,
    spool_dir: Union[None, str, Path] = None,
    chunk_records: Optional[int] = None,
) -> Tuple[ChunkedCompiledTrace, "ImportStats"]:
    """Bounded-memory twin of :func:`import_spc`; returns
    ``(chunked_trace, stats)``."""
    builder = StreamingTraceBuilder(
        warmup_fraction, spool_dir=spool_dir, chunk_records=chunk_records
    )
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            _parse_spc_lines(handle, builder)
        trace = builder.build(_metadata(path))
    except BaseException:
        builder.abort()
        raise
    return trace, builder.stats
