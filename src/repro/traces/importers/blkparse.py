"""``blkparse`` default-output importer (Linux blktrace).

blkparse's default text format is::

    maj,min cpu seq timestamp pid action rwbs sector + nsectors [process]

e.g.::

    8,0    1       42     0.000123456  4510  C   R 1953128 + 8 [fio]

We import completion events (``C``) by default — they are what actually
hit the device — and map:

* ``maj,min`` → file (device);
* ``[process]`` → thread within host 0 (blktrace is single-host);
* ``sector`` (512-byte units) ``+ nsectors`` → a byte extent;
* ``rwbs`` containing ``W`` → write, containing ``R`` → read (discard
  and flush records are skipped).

:func:`import_blkparse` materializes a :class:`Trace`;
:func:`import_blkparse_chunked` streams the same parser into a
bounded-memory chunked spool.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.traces.importers.base import (
    ExtentMapperBase,
    ImportStats,
    StreamingTraceBuilder,
    TraceBuilder,
)
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.records import Trace

PathLike = Union[str, Path]

SECTOR = 512

_LINE = re.compile(
    r"^\s*(?P<dev>\d+,\d+)"
    r"\s+(?P<cpu>\d+)"
    r"\s+(?P<seq>\d+)"
    r"\s+(?P<ts>[\d.]+)"
    r"\s+(?P<pid>\d+)"
    r"\s+(?P<action>[A-Z])"
    r"\s+(?P<rwbs>[A-Z]+)"
    r"\s+(?P<sector>\d+)\s*\+\s*(?P<nsectors>\d+)"
    r"(?:\s+\[(?P<process>[^\]]*)\])?"
)


def _parse_blkparse_lines(handle, builder: ExtentMapperBase, action: str) -> None:
    """Stream lines from ``handle`` into ``builder``, keeping only
    ``action`` events."""
    stats = builder.stats
    for line in handle:
        stats.lines_total += 1
        match = _LINE.match(line)
        if not match:
            stats.skip("unparsed line")
            continue
        if match.group("action") != action:
            stats.skip("other action")
            continue
        rwbs = match.group("rwbs")
        if "W" in rwbs:
            is_write = True
        elif "R" in rwbs:
            is_write = False
        else:
            stats.skip("non-data rwbs %r" % rwbs)
            continue
        nsectors = int(match.group("nsectors"))
        if nsectors == 0:
            stats.skip("zero-length I/O")
            continue
        process = match.group("process") or ("pid%s" % match.group("pid"))
        thread = builder.thread_id(0, process)
        builder.add_bytes_extent(
            is_write,
            0,
            thread,
            match.group("dev"),
            int(match.group("sector")) * SECTOR,
            nsectors * SECTOR,
        )


def _metadata(path: PathLike) -> dict:
    return {"source": "blkparse", "path": str(path)}


def import_blkparse(
    path: PathLike,
    action: str = "C",
    warmup_fraction: float = 0.0,
) -> Tuple[Trace, "ImportStats"]:
    """Import a blkparse text file, keeping only ``action`` events
    (default ``C`` = completions; use ``Q`` for queue events)."""
    builder = TraceBuilder(warmup_fraction)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        _parse_blkparse_lines(handle, builder, action)
    trace = builder.build(_metadata(path))
    return trace, builder.stats


def import_blkparse_chunked(
    path: PathLike,
    action: str = "C",
    warmup_fraction: float = 0.0,
    *,
    spool_dir: Union[None, str, Path] = None,
    chunk_records: Optional[int] = None,
) -> Tuple[ChunkedCompiledTrace, "ImportStats"]:
    """Bounded-memory twin of :func:`import_blkparse`; returns
    ``(chunked_trace, stats)``."""
    builder = StreamingTraceBuilder(
        warmup_fraction, spool_dir=spool_dir, chunk_records=chunk_records
    )
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            _parse_blkparse_lines(handle, builder, action)
        trace = builder.build(_metadata(path))
    except BaseException:
        builder.abort()
        raise
    return trace, builder.stats
