"""Importers for third-party block-trace formats.

The paper validated against traces "from the SNIA repository and the
Mercury traces" (§4).  These importers convert the common public
formats into :class:`repro.traces.Trace` objects so real traces can be
replayed through the simulator alongside the synthetic ones:

* :mod:`~repro.traces.importers.msr` — MSR Cambridge / SNIA
  ``IOTTA`` CSV (``timestamp,hostname,disk,type,offset,size,latency``);
* :mod:`~repro.traces.importers.blkparse` — ``blkparse`` default text
  output (Linux blktrace completions);
* :mod:`~repro.traces.importers.spc` — SPC-1-style ASCII
  (``asu,lba,size,opcode,timestamp``).

All importers share the same conventions: byte offsets are rounded down
to 4 KB block boundaries, sizes round up to whole blocks, each distinct
device/ASU becomes a "file" in the trace geometry, and requesters map
to (host, thread) ids.  Use :func:`load_any` to auto-detect.

Every importer exists in two forms sharing one line parser: the plain
form materializes a :class:`~repro.traces.records.Trace` (O(records)
memory), and the ``*_chunked`` form streams into a
:class:`~repro.traces.chunked.ChunkedCompiledTrace` spool (O(chunk)
memory — for week-long full-length captures; see ``docs/SCALING.md``).
Both produce record-for-record identical output.
"""

from repro.traces.importers.base import (
    ImportStats,
    StreamingTraceBuilder,
    TraceBuilder,
)
from repro.traces.importers.msr import import_msr_csv, import_msr_csv_chunked
from repro.traces.importers.blkparse import (
    import_blkparse,
    import_blkparse_chunked,
)
from repro.traces.importers.spc import import_spc, import_spc_chunked
from repro.traces.importers.detect import load_any, load_any_chunked

__all__ = [
    "ImportStats",
    "StreamingTraceBuilder",
    "TraceBuilder",
    "import_msr_csv",
    "import_msr_csv_chunked",
    "import_blkparse",
    "import_blkparse_chunked",
    "import_spc",
    "import_spc_chunked",
    "load_any",
    "load_any_chunked",
]
