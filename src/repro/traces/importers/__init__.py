"""Importers for third-party block-trace formats.

The paper validated against traces "from the SNIA repository and the
Mercury traces" (§4).  These importers convert the common public
formats into :class:`repro.traces.Trace` objects so real traces can be
replayed through the simulator alongside the synthetic ones:

* :mod:`~repro.traces.importers.msr` — MSR Cambridge / SNIA
  ``IOTTA`` CSV (``timestamp,hostname,disk,type,offset,size,latency``);
* :mod:`~repro.traces.importers.blkparse` — ``blkparse`` default text
  output (Linux blktrace completions);
* :mod:`~repro.traces.importers.spc` — SPC-1-style ASCII
  (``asu,lba,size,opcode,timestamp``).

All importers share the same conventions: byte offsets are rounded down
to 4 KB block boundaries, sizes round up to whole blocks, each distinct
device/ASU becomes a "file" in the trace geometry, and requesters map
to (host, thread) ids.  Use :func:`load_any` to auto-detect.
"""

from repro.traces.importers.base import ImportStats
from repro.traces.importers.msr import import_msr_csv
from repro.traces.importers.blkparse import import_blkparse
from repro.traces.importers.spc import import_spc
from repro.traces.importers.detect import load_any

__all__ = [
    "ImportStats",
    "import_msr_csv",
    "import_blkparse",
    "import_spc",
    "load_any",
]
