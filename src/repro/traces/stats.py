"""Trace summary statistics.

Used by the trace-generator validation tests to check the generated
workloads actually have the properties §4 of the paper specifies
(write fraction, working-set concentration, I/O size distribution,
host/thread balance) and by the ``repro-tracegen`` CLI for inspection.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro._units import BLOCK_SIZE, format_bytes
from repro.traces.records import Trace


@dataclass
class TraceStats:
    """Aggregate statistics over one trace."""

    n_records: int = 0
    n_reads: int = 0
    n_writes: int = 0
    total_blocks: int = 0
    unique_blocks: int = 0
    mean_io_blocks: float = 0.0
    max_io_blocks: int = 0
    write_fraction: float = 0.0
    records_per_host: Dict[int, int] = field(default_factory=dict)
    records_per_thread: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: fraction of block accesses landing on the N most popular blocks,
    #: for N = unique_blocks * level; keys are the levels (e.g. 0.2)
    concentration: Dict[float, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.total_blocks * BLOCK_SIZE

    @property
    def footprint_bytes(self) -> int:
        """Unique data touched (the working footprint)."""
        return self.unique_blocks * BLOCK_SIZE

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            "records:        %d (%d reads, %d writes; %.1f%% writes)"
            % (self.n_records, self.n_reads, self.n_writes, 100 * self.write_fraction),
            "volume:         %s across %d block accesses"
            % (format_bytes(self.total_bytes), self.total_blocks),
            "footprint:      %s (%d unique blocks)"
            % (format_bytes(self.footprint_bytes), self.unique_blocks),
            "I/O size:       mean %.2f blocks, max %d"
            % (self.mean_io_blocks, self.max_io_blocks),
            "hosts:          %d" % len(self.records_per_host),
            "threads:        %d" % len(self.records_per_thread),
        ]
        for level in sorted(self.concentration):
            lines.append(
                "top %3.0f%% blocks: %.1f%% of accesses"
                % (100 * level, 100 * self.concentration[level])
            )
        return "\n".join(lines)


def compute_stats(
    trace: Trace, concentration_levels: Tuple[float, ...] = (0.1, 0.2, 0.5)
) -> TraceStats:
    """Scan a trace and compute :class:`TraceStats`."""
    stats = TraceStats()
    stats.n_records = len(trace.records)
    block_counts: Counter = Counter()
    host_counts: Counter = Counter()
    thread_counts: Counter = Counter()
    total_blocks = 0
    for record in trace.records:
        if record.is_write:
            stats.n_writes += 1
        else:
            stats.n_reads += 1
        total_blocks += record.nblocks
        stats.max_io_blocks = max(stats.max_io_blocks, record.nblocks)
        host_counts[record.host] += 1
        thread_counts[(record.host, record.thread)] += 1
        for block in trace.record_blocks(record):
            block_counts[block] += 1
    stats.total_blocks = total_blocks
    stats.unique_blocks = len(block_counts)
    if stats.n_records:
        stats.mean_io_blocks = total_blocks / stats.n_records
        stats.write_fraction = stats.n_writes / stats.n_records
    stats.records_per_host = dict(host_counts)
    stats.records_per_thread = dict(thread_counts)
    if block_counts and total_blocks:
        by_popularity: List[int] = sorted(block_counts.values(), reverse=True)
        for level in concentration_levels:
            top_n = max(1, int(len(by_popularity) * level))
            stats.concentration[level] = sum(by_popularity[:top_n]) / total_blocks
    return stats
