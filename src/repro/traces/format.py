"""Trace serialization: a text format and a compact binary format.

Text format (``.trace``), line oriented::

    %REPRO-TRACE v1
    #warmup 1234
    #meta key value-with-spaces-allowed
    @files 100 250 3            # sizes in blocks, whitespace separated
    R 0 3 17 42 8               # op host thread file offset nblocks
    W 0 1 17 50 1

Binary format (``.btrace``): an 8-byte magic, a JSON header (length
prefixed), then fixed-width little-endian records — fast to parse for
the multi-hundred-thousand-record traces the experiments use, and
constant-size per record regardless of field magnitudes.

:func:`load_trace` auto-detects the format from the file's magic.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import List, Union

from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceOp, TraceRecord

TEXT_MAGIC = "%REPRO-TRACE v1"
BINARY_MAGIC = b"RPTRC\x00v1"
_RECORD_STRUCT = struct.Struct("<BIIIQI")  # op, host, thread, file, offset, nblocks

PathLike = Union[str, Path]


# --- text format ---------------------------------------------------------


def _dump_text(trace: Trace) -> str:
    lines: List[str] = [TEXT_MAGIC]
    lines.append("#warmup %d" % trace.warmup_records)
    for key, value in sorted(trace.metadata.items()):
        if any(ch.isspace() for ch in key) or not key:
            raise TraceFormatError(
                "metadata keys may not be empty or contain whitespace: %r" % key
            )
        # Values are JSON-encoded so arbitrary text (empty strings,
        # leading/trailing whitespace, control characters) round-trips.
        lines.append("#meta %s %s" % (key, json.dumps(str(value))))
    lines.append("@files " + " ".join(str(n) for n in trace.file_blocks))
    for record in trace.records:
        lines.append(
            "%s %d %d %d %d %d"
            % (
                record.op.value,
                record.host,
                record.thread,
                record.file_id,
                record.offset,
                record.nblocks,
            )
        )
    return "\n".join(lines) + "\n"


def _parse_text(text: str) -> Trace:
    lines = text.splitlines()
    if not lines or lines[0].strip() != TEXT_MAGIC:
        raise TraceFormatError("not a repro text trace (bad magic)")
    warmup = 0
    metadata = {}
    file_blocks: List[int] = []
    records: List[TraceRecord] = []
    for line_number, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        try:
            if line.startswith("#warmup"):
                warmup = int(line.split()[1])
            elif line.startswith("#meta"):
                parts = line.split(" ", 2)
                _tag, key = parts[0], parts[1]
                raw = parts[2] if len(parts) > 2 else ""
                if raw.startswith('"'):
                    metadata[key] = json.loads(raw)
                else:
                    metadata[key] = raw  # legacy unencoded value
            elif line.startswith("@files"):
                file_blocks = [int(tok) for tok in line.split()[1:]]
            elif line.startswith("#"):
                continue  # unknown directive: ignore for forward compat
            else:
                op_str, host, thread, file_id, offset, nblocks = line.split()
                records.append(
                    TraceRecord(
                        TraceOp(op_str),
                        int(host),
                        int(thread),
                        int(file_id),
                        int(offset),
                        int(nblocks),
                    )
                )
        except (ValueError, IndexError) as exc:
            raise TraceFormatError(
                "malformed trace line %d: %r (%s)" % (line_number, raw, exc)
            ) from exc
    return Trace(records, file_blocks, warmup_records=warmup, metadata=metadata)


# --- binary format ---------------------------------------------------------


def _dump_binary(trace: Trace) -> bytes:
    header = json.dumps(
        {
            "warmup": trace.warmup_records,
            "metadata": trace.metadata,
            "file_blocks": trace.file_blocks,
            "n_records": len(trace.records),
        }
    ).encode("utf-8")
    chunks = [BINARY_MAGIC, struct.pack("<I", len(header)), header]
    pack = _RECORD_STRUCT.pack
    for record in trace.records:
        chunks.append(
            pack(
                1 if record.is_write else 0,
                record.host,
                record.thread,
                record.file_id,
                record.offset,
                record.nblocks,
            )
        )
    return b"".join(chunks)


def _parse_binary(data: bytes) -> Trace:
    if not data.startswith(BINARY_MAGIC):
        raise TraceFormatError("not a repro binary trace (bad magic)")
    cursor = len(BINARY_MAGIC)
    (header_len,) = struct.unpack_from("<I", data, cursor)
    cursor += 4
    try:
        header = json.loads(data[cursor : cursor + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceFormatError("corrupt binary trace header: %s" % exc) from exc
    cursor += header_len
    n_records = header["n_records"]
    expected = cursor + n_records * _RECORD_STRUCT.size
    if len(data) < expected:
        raise TraceFormatError(
            "truncated binary trace: need %d bytes, have %d" % (expected, len(data))
        )
    records: List[TraceRecord] = []
    unpack = _RECORD_STRUCT.unpack_from
    for i in range(n_records):
        is_write, host, thread, file_id, offset, nblocks = unpack(
            data, cursor + i * _RECORD_STRUCT.size
        )
        records.append(
            TraceRecord(
                TraceOp.WRITE if is_write else TraceOp.READ,
                host,
                thread,
                file_id,
                offset,
                nblocks,
            )
        )
    return Trace(
        records,
        header["file_blocks"],
        warmup_records=header["warmup"],
        metadata=header.get("metadata", {}),
    )


# --- public API -------------------------------------------------------------


def save_trace(trace: Trace, path: PathLike, binary: bool = False) -> None:
    """Write a trace to ``path`` in text (default) or binary format."""
    path = Path(path)
    if binary:
        path.write_bytes(_dump_binary(trace))
    else:
        path.write_text(_dump_text(trace), encoding="utf-8")


def load_trace(path: PathLike) -> Trace:
    """Read a trace, auto-detecting text vs. binary from the magic."""
    data = Path(path).read_bytes()
    if data.startswith(BINARY_MAGIC):
        return _parse_binary(data)
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError("unrecognized trace file %s" % path) from exc
    return _parse_text(text)
