"""Host interference analysis over compiled trace columns.

The parallel replay engine (:mod:`repro.engine.parallel`) shards one
multi-host simulation across worker processes.  That is only
bit-identical to the serial replay when the host groups cannot observe
each other, and the single cross-host coupling a trace itself creates
is the consistency directory: a host that *writes* a block invalidates
every other host's copy, and the invalidation both perturbs the
victims' cache contents and moves the shared counters.  Hosts that
merely read a common block never interact — holder bookkeeping is
write-triggered, and no data payloads are modeled.

So the exact interference rule, per block ``b`` over the *whole* trace
(warmup included — warmup accesses still populate caches and holder
bits):

    let ``T(b)`` be the hosts touching ``b`` and ``W(b)`` those
    writing it; if ``len(T(b)) >= 2`` and ``W(b)`` is non-empty, every
    host in ``T(b)`` must replay in the same group.

Note the rule unions *all* touchers, not just writer/victim pairs: two
readers of ``b`` are coupled through a third writer, whose invalidation
empties both of their caches at the same simulated instant.

:func:`analyze_partition` evaluates the rule in two levels so fleet
traces stay cheap:

1. one columnar pass computes each host's block-range bounding box and
   row/write counts; hosts whose boxes do not overlap cannot share a
   block, which already separates disjoint-tenant fleets;
2. hosts in overlapping box clusters get an exact elementary-segment
   interval sweep with the write refinement above, merged through a
   union-find.

Everything here is pure analysis over ``(op, host, start_block,
nblocks)`` columns; it accepts both :class:`~repro.traces.compiled.
CompiledTrace` and :class:`~repro.traces.chunked.ChunkedCompiledTrace`
(streamed, so spooled traces never materialize).
"""

from __future__ import annotations

import itertools
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple, Union

from repro.errors import SimulationError
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.compiled import CompiledTrace

__all__ = [
    "PartitionAnalysis",
    "analyze_partition",
    "plan_groups",
    "slice_hosts",
    "static_write_blocks",
]

AnyCompiled = Union[CompiledTrace, ChunkedCompiledTrace]


def _file_base(file_blocks: Sequence[int]) -> List[int]:
    """Global start block of each file (the compile_trace flattening)."""
    return list(itertools.accumulate([0] + list(file_blocks[:-1])))


def _iter_ranges(trace: AnyCompiled) -> Iterator[Tuple[int, int, int, int]]:
    """Stream ``(op, host, start_block, nblocks)`` for every row,
    warmup included, for either compiled form."""
    if isinstance(trace, CompiledTrace):
        yield from zip(
            trace.ops.tolist(),
            trace.hosts_col.tolist(),
            trace.start_blocks.tolist(),
            trace.nblocks.tolist(),
        )
        return
    base = _file_base(trace.file_blocks)
    for op, host, _thread, file_id, offset, nb in trace.iter_records():
        yield op, host, base[file_id] + offset, nb


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, items: Iterable[int]) -> None:
        self.parent: Dict[int, int] = {item: item for item in items}

    def find(self, item: int) -> int:
        parent = self.parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic orientation: smaller id wins.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


@dataclass
class PartitionAnalysis:
    """The interference structure of one multi-host trace.

    ``components`` are the maximal host groups that may observe each
    other (sorted host lists, ordered by smallest member); hosts in
    different components provably never interact during replay.
    ``host_rows`` counts trace rows per host (the balancing weight) and
    ``host_writes`` counts write rows (zero ⇒ the host perturbs
    nobody).
    """

    n_hosts: int
    components: List[List[int]]
    host_rows: Dict[int, int] = field(default_factory=dict)
    host_writes: Dict[int, int] = field(default_factory=dict)

    def component_of(self, host: int) -> int:
        for index, component in enumerate(self.components):
            if host in component:
                return index
        raise KeyError(host)

    @property
    def independent(self) -> bool:
        """Whether the trace splits into at least two independent parts."""
        return len(self.components) > 1


def _box_clusters(
    boxes: Dict[int, Tuple[int, int]]
) -> List[List[int]]:
    """Group hosts whose block bounding boxes overlap (interval sweep
    over ``[min_block, max_block)`` boxes).  Hosts in different clusters
    cannot share any block."""
    ordered = sorted(boxes, key=lambda host: (boxes[host][0], host))
    clusters: List[List[int]] = []
    cluster_end = None
    for host in ordered:
        lo, hi = boxes[host]
        if cluster_end is None or lo >= cluster_end:
            clusters.append([host])
            cluster_end = hi
        else:
            clusters[-1].append(host)
            cluster_end = max(cluster_end, hi)
    return clusters


def _sweep_cluster(
    hosts: List[int],
    events: List[Tuple[int, int, int, int]],
    union: _UnionFind,
) -> None:
    """Exact per-block refinement of one box cluster.

    ``events`` are ``(position, delta, host, is_write)`` interval
    endpoints.  Between consecutive positions the covering host set is
    constant; wherever at least two hosts are covered and at least one
    of them writes, all covered hosts are unioned.
    """
    touch: Dict[int, int] = {host: 0 for host in hosts}
    write: Dict[int, int] = {host: 0 for host in hosts}
    n_active = 0
    n_writing = 0
    events.sort()
    index, n_events = 0, len(events)
    while index < n_events:
        position = events[index][0]
        while index < n_events and events[index][0] == position:
            _pos, delta, host, is_write = events[index]
            before = touch[host]
            touch[host] = before + delta
            if before == 0 or before + delta == 0:
                n_active += 1 if delta > 0 else -1
            if is_write:
                w_before = write[host]
                write[host] = w_before + delta
                if w_before == 0 or w_before + delta == 0:
                    n_writing += 1 if delta > 0 else -1
            index += 1
        if n_active >= 2 and n_writing:
            active = [host for host in hosts if touch[host] > 0]
            first = active[0]
            for other in active[1:]:
                union.union(first, other)


def analyze_partition(trace: AnyCompiled, n_hosts: int) -> PartitionAnalysis:
    """Compute the interference components of ``trace`` (see module
    docstring for the rule).  Hosts ``0..n_hosts-1`` that never appear
    in the trace are idle singletons."""
    boxes: Dict[int, Tuple[int, int]] = {}
    host_rows: Dict[int, int] = {}
    host_writes: Dict[int, int] = {}
    for op, host, start, nb in _iter_ranges(trace):
        end = start + nb
        box = boxes.get(host)
        if box is None:
            boxes[host] = (start, end)
        else:
            lo, hi = box
            boxes[host] = (start if start < lo else lo, end if end > hi else hi)
        host_rows[host] = host_rows.get(host, 0) + 1
        if op:
            host_writes[host] = host_writes.get(host, 0) + 1

    union = _UnionFind(range(n_hosts))
    refine: List[List[int]] = [
        cluster
        for cluster in _box_clusters(boxes)
        if len(cluster) >= 2
        # Read-only overlap needs no refinement: with no writer
        # anywhere in the cluster, no block can satisfy the rule.
        and any(host_writes.get(host) for host in cluster)
    ]
    if refine:
        # One more streaming pass collects every cluster's interval
        # endpoints together (chunked spools re-read once, not once per
        # cluster).
        cluster_of: Dict[int, int] = {
            host: index for index, cluster in enumerate(refine) for host in cluster
        }
        events: List[List[Tuple[int, int, int, int]]] = [[] for _ in refine]
        for op, host, start, nb in _iter_ranges(trace):
            index = cluster_of.get(host)
            if index is not None:
                events[index].append((start, 1, host, op))
                events[index].append((start + nb, -1, host, op))
        for index, cluster in enumerate(refine):
            _sweep_cluster(cluster, events[index], union)

    by_root: Dict[int, List[int]] = {}
    for host in range(n_hosts):
        by_root.setdefault(union.find(host), []).append(host)
    components = [sorted(members) for members in by_root.values()]
    components.sort(key=lambda members: members[0])
    return PartitionAnalysis(
        n_hosts=n_hosts,
        components=components,
        host_rows=host_rows,
        host_writes=host_writes,
    )


def plan_groups(
    analysis: PartitionAnalysis, max_groups: int
) -> List[List[int]]:
    """Bin the components into at most ``max_groups`` replay groups,
    balancing by trace-row weight (greedy largest-first — deterministic
    and within 4/3 of optimal makespan).  Components are never split:
    the result is a partition of ``0..n_hosts-1`` into groups that
    cannot observe each other."""
    if max_groups < 1:
        raise SimulationError("need at least one replay group")
    weights = {
        index: sum(analysis.host_rows.get(host, 0) for host in component)
        for index, component in enumerate(analysis.components)
    }
    order = sorted(weights, key=lambda index: (-weights[index], index))
    n_groups = min(max_groups, len(analysis.components))
    bins: List[List[int]] = [[] for _ in range(n_groups)]
    loads = [0] * n_groups
    for index in order:
        lightest = min(range(n_groups), key=lambda b: (loads[b], b))
        bins[lightest].extend(analysis.components[index])
        loads[lightest] += weights[index]
    groups = [sorted(members) for members in bins if members]
    groups.sort(key=lambda members: members[0])
    return groups


def split_hosts_evenly(
    analysis: PartitionAnalysis, max_groups: int
) -> List[List[int]]:
    """Split hosts into balanced groups *ignoring* components — used by
    the conflict-watch tier, which detects coupling dynamically instead
    of proving independence statically.  Groups are balanced by row
    weight with the same greedy discipline as :func:`plan_groups`."""
    if max_groups < 1:
        raise SimulationError("need at least one replay group")
    hosts = list(range(analysis.n_hosts))
    order = sorted(
        hosts, key=lambda host: (-analysis.host_rows.get(host, 0), host)
    )
    n_groups = min(max_groups, len(hosts))
    bins: List[List[int]] = [[] for _ in range(n_groups)]
    loads = [0] * n_groups
    for host in order:
        lightest = min(range(n_groups), key=lambda b: (loads[b], b))
        bins[lightest].append(host)
        loads[lightest] += analysis.host_rows.get(host, 0)
    groups = [sorted(members) for members in bins if members]
    groups.sort(key=lambda members: members[0])
    return groups


def static_write_blocks(trace: AnyCompiled, hosts: Set[int]) -> Set[int]:
    """Every global block id written by ``hosts`` anywhere in the trace
    (warmup included).  The trace fully determines this set — replay
    order cannot change *what* gets written — so it is safe to compute
    statically and watch dynamically (see ``conflict_watch``)."""
    written: Set[int] = set()
    for op, host, start, nb in _iter_ranges(trace):
        if op and host in hosts:
            written.update(range(start, start + nb))
    return written


def slice_hosts(trace: AnyCompiled, hosts: Set[int]) -> CompiledTrace:
    """A new owning :class:`CompiledTrace` holding exactly the rows
    issued by ``hosts``, in trace order.

    Only defined for warmup-free traces: a sliced warmup boundary would
    not be a row index of the slice, and the parallel engine (its only
    caller) already requires ``warmup_records == 0``.  ``file_blocks``
    and ``metadata`` are preserved, so global block ids (and therefore
    cache behavior) are unchanged — idle hosts simply issue nothing.
    """
    if trace.warmup_records != 0:
        raise SimulationError(
            "slice_hosts requires a warmup-free trace "
            "(got warmup_records=%d)" % trace.warmup_records
        )
    ops = array("B")
    hosts_col = array("I")
    threads = array("I")
    file_ids = array("I")
    offsets = array("Q")
    nblocks = array("I")
    starts = array("Q")
    if isinstance(trace, CompiledTrace):
        rows = zip(
            trace.ops.tolist(),
            trace.hosts_col.tolist(),
            trace.threads_col.tolist(),
            trace.file_ids.tolist(),
            trace.offsets.tolist(),
            trace.nblocks.tolist(),
            trace.start_blocks.tolist(),
        )
        for op, host, thread, file_id, offset, nb, start in rows:
            if host in hosts:
                ops.append(op)
                hosts_col.append(host)
                threads.append(thread)
                file_ids.append(file_id)
                offsets.append(offset)
                nblocks.append(nb)
                starts.append(start)
    else:
        base = _file_base(trace.file_blocks)
        for op, host, thread, file_id, offset, nb in trace.iter_records():
            if host in hosts:
                ops.append(op)
                hosts_col.append(host)
                threads.append(thread)
                file_ids.append(file_id)
                offsets.append(offset)
                nblocks.append(nb)
                starts.append(base[file_id] + offset)
    return CompiledTrace(
        ops,
        hosts_col,
        threads,
        file_ids,
        offsets,
        nblocks,
        starts,
        list(trace.file_blocks),
        0,
        dict(trace.metadata),
    )
