"""Chunked compiled traces: the bounded-memory streaming trace form.

:class:`~repro.traces.compiled.CompiledTrace` removed the per-record
object cost but still materializes every column in RAM, so peak memory
is O(trace length) — the wall ROADMAP item 3 names.  Week-long
production block traces (MSR Cambridge, SPC) and "millions of users"
synthetic runs do not fit that model.

:class:`ChunkedCompiledTrace` keeps the *same* record content in an
on-disk **spool directory** and holds only a bounded window of it in
memory at a time:

``manifest.json``
    geometry (``file_blocks``), warmup counts, metadata, the chunk
    index, the per-issuer run table, and the content fingerprint.

``chunks.bin``
    the six *stored* columns of the compiled format (``ops``,
    ``hosts``, ``threads``, ``file_ids``, ``offsets``, ``nblocks`` —
    25 bytes/record, little-endian), concatenated chunk by chunk.
    ``start_blocks`` stays derived, exactly as in the flat wire format.

``rows.bin``
    replay rows ``(op, start_block, nblocks)`` packed as ``<BQI``
    (13 bytes/row), grouped into per-issuer *runs* of at most
    :data:`RUN_ROWS` rows.  :meth:`ChunkedCompiledTrace.issuer_plan`
    hands the replay engine lazy row streams over these runs, so the
    hot loop in ``System._thread_process_compiled`` runs unchanged
    while peak memory stays at one run buffer per issuer.

:class:`ChunkedTraceWriter` is the producer side: ``tracegen`` and the
streaming importers append records one at a time (never building
``TraceRecord`` objects), each full chunk is flushed to the spool, and
:meth:`ChunkedTraceWriter.freeze` resolves the file geometry (deferred
for importers, fixed for tracegen), partitions rows per issuer, and
writes the manifest.

The content fingerprint is **bit-identical** to
:attr:`CompiledTrace.fingerprint` for the same records — the digest is
fed the same header and the same column bytes in the same order, just
read back from the spool in column-ordered passes.  That makes chunked
traces first-class citizens of the sweep result cache and of the
signature-drift gates (``repro.validation.differential``,
``benchmarks/replay_hotpath.py``).

Chunk size defaults to :data:`DEFAULT_CHUNK_RECORDS` records and is
overridable via the ``REPRO_TRACE_CHUNK_RECORDS`` environment variable;
see ``docs/SCALING.md`` ("Streaming traces and bounded-memory replay")
for the memory model.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import json
import os
import shutil
import struct
import sys
import tempfile
from array import array
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, TraceFormatError
from repro.traces.compiled import CompiledTrace, _column_bytes_le
from repro.traces.records import Trace, TraceOp, TraceRecord

__all__ = [
    "ChunkedCompiledTrace",
    "ChunkedTraceWriter",
    "DEFAULT_CHUNK_RECORDS",
    "CHUNK_RECORDS_ENV",
    "RUN_ROWS",
]

#: Records per columnar chunk (the unit of spool I/O and of peak
#: memory).  25 bytes/record stored, so the default is ~1.6 MB chunks.
DEFAULT_CHUNK_RECORDS = 65_536

#: Environment variable overriding :data:`DEFAULT_CHUNK_RECORDS`.
CHUNK_RECORDS_ENV = "REPRO_TRACE_CHUNK_RECORDS"

#: Rows per issuer run in ``rows.bin``: the replay-side memory unit.
#: A stream holds at most one run buffer (13 B/row, ~106 KB) at a time.
RUN_ROWS = 8192

MANIFEST_NAME = "manifest.json"
CHUNKS_NAME = "chunks.bin"
ROWS_NAME = "rows.bin"
_MANIFEST_VERSION = 1

#: The stored columns in spool order: (name, typecode, width).  Must
#: stay aligned with ``repro.traces.compiled._FINGERPRINT_COLUMNS`` —
#: the fingerprint hashes these bytes in exactly this order.
_CHUNK_COLUMNS: Tuple[Tuple[str, str, int], ...] = (
    ("ops", "B", 1),
    ("hosts", "I", 4),
    ("threads", "I", 4),
    ("file_ids", "I", 4),
    ("offsets", "Q", 8),
    ("nblocks", "I", 4),
)

_RECORD_BYTES = sum(width for _name, _tc, width in _CHUNK_COLUMNS)

_ROW = struct.Struct("<BQI")  # (op, start_block, nblocks)
_ROW_BYTES = _ROW.size


def chunk_records_default() -> int:
    """The configured chunk size (env knob with a validated fallback)."""
    env = os.environ.get(CHUNK_RECORDS_ENV, "").strip()
    if not env:
        return DEFAULT_CHUNK_RECORDS
    try:
        value = int(env)
    except ValueError:
        raise ConfigError(
            "%s must be an integer, got %r" % (CHUNK_RECORDS_ENV, env)
        )
    if value < 1:
        raise ConfigError(
            "%s must be >= 1, got %d" % (CHUNK_RECORDS_ENV, value)
        )
    return value


def _array_from_le(typecode: str, data: bytes) -> array:
    """Decode a little-endian column buffer into an array (the inverse
    of ``_column_bytes_le``)."""
    column = array(typecode)
    column.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - BE only
        column.byteswap()
    return column


def _column_offsets(n: int) -> Dict[str, Tuple[int, int]]:
    """Byte (offset, length) of each column within an ``n``-record chunk."""
    offsets: Dict[str, Tuple[int, int]] = {}
    cursor = 0
    for name, _tc, width in _CHUNK_COLUMNS:
        offsets[name] = (cursor, n * width)
        cursor += n * width
    return offsets


# Temp spools created for anonymous writers: removed at interpreter
# exit if the owner never called delete() (crash-safety net, not the
# primary cleanup path).
_TEMP_SPOOLS: set = set()


def _cleanup_temp_spools() -> None:  # pragma: no cover - exit hook
    for path in list(_TEMP_SPOOLS):
        shutil.rmtree(path, ignore_errors=True)


atexit.register(_cleanup_temp_spools)


class ChunkedTraceWriter:
    """Streaming producer of a chunked-trace spool.

    ``file_blocks`` fixes the geometry up front (tracegen: the
    file-system model is known before the first record).  ``None``
    defers it — the geometry grows to cover every extent seen, with
    the same "starts at 1 block, grows to the largest end block" rule
    as ``TraceBuilder`` — and freezes at :meth:`freeze` (importers:
    the geometry is only known after the last line).

    Records are appended one at a time; every ``chunk_records`` of
    them are packed into a columnar chunk and flushed to
    ``chunks.bin``, so writer memory is O(chunk), never O(trace).
    """

    def __init__(
        self,
        file_blocks: Optional[Sequence[int]] = None,
        *,
        spool_dir: Union[None, str, Path] = None,
        chunk_records: Optional[int] = None,
    ) -> None:
        if chunk_records is None:
            chunk_records = chunk_records_default()
        if chunk_records < 1:
            raise TraceFormatError(
                "chunk_records must be >= 1, got %d" % chunk_records
            )
        self._chunk_records = chunk_records
        self._deferred_geometry = file_blocks is None
        self._file_blocks: List[int] = [] if file_blocks is None else list(file_blocks)
        if self._deferred_geometry:
            self._file_base: Optional[List[int]] = None
        else:
            for index, blocks in enumerate(self._file_blocks):
                if blocks < 1:
                    raise TraceFormatError(
                        "file %d has non-positive size %d blocks" % (index, blocks)
                    )
        if spool_dir is None:
            self._spool_dir = Path(tempfile.mkdtemp(prefix="repro-ctrace-"))
            self._owns_temp = True
            _TEMP_SPOOLS.add(str(self._spool_dir))
        else:
            self._spool_dir = Path(spool_dir)
            self._spool_dir.mkdir(parents=True, exist_ok=True)
            if (self._spool_dir / MANIFEST_NAME).exists():
                raise TraceFormatError(
                    "spool directory %s already holds a chunked trace"
                    % self._spool_dir
                )
            self._owns_temp = False
        self._chunks_file = open(self._spool_dir / CHUNKS_NAME, "wb")
        self._chunk_index: List[Tuple[int, int]] = []  # (byte offset, records)
        self._chunk_bytes = 0
        self._n_records = 0
        self._frozen = False
        self._reset_columns()

    def _reset_columns(self) -> None:
        self._ops = array("B")
        self._hosts = array("I")
        self._threads = array("I")
        self._file_ids = array("I")
        self._offsets = array("Q")
        self._nblocks = array("I")

    @property
    def spool_dir(self) -> Path:
        return self._spool_dir

    def __len__(self) -> int:
        return self._n_records

    def append(
        self,
        is_write: bool,
        host: int,
        thread: int,
        file_id: int,
        offset: int,
        nblocks: int,
    ) -> None:
        """Append one record (same field semantics as ``TraceRecord``)."""
        if self._frozen:
            raise TraceFormatError("writer is frozen; no further appends")
        if nblocks < 1:
            raise TraceFormatError(
                "record must cover >= 1 block, got %d" % nblocks
            )
        if min(host, thread, file_id, offset) < 0:
            raise TraceFormatError("record fields must be non-negative")
        if self._deferred_geometry:
            file_blocks = self._file_blocks
            while len(file_blocks) <= file_id:
                file_blocks.append(1)
            end = offset + nblocks
            if end > file_blocks[file_id]:
                file_blocks[file_id] = end
        else:
            if file_id >= len(self._file_blocks):
                raise TraceFormatError(
                    "record references file %d but the geometry has %d files"
                    % (file_id, len(self._file_blocks))
                )
            if offset + nblocks > self._file_blocks[file_id]:
                raise TraceFormatError(
                    "record overruns file %d (%d blocks): offset=%d n=%d"
                    % (file_id, self._file_blocks[file_id], offset, nblocks)
                )
        try:
            self._ops.append(1 if is_write else 0)
            self._hosts.append(host)
            self._threads.append(thread)
            self._file_ids.append(file_id)
            self._offsets.append(offset)
            self._nblocks.append(nblocks)
        except OverflowError as exc:
            raise TraceFormatError(
                "record field too large for the compiled representation: %s" % exc
            ) from exc
        self._n_records += 1
        if len(self._ops) >= self._chunk_records:
            self._flush_chunk()

    def append_record(self, record: TraceRecord) -> None:
        """Convenience append from an existing record object."""
        self.append(
            record.op is TraceOp.WRITE,
            record.host,
            record.thread,
            record.file_id,
            record.offset,
            record.nblocks,
        )

    def _flush_chunk(self) -> None:
        n = len(self._ops)
        if n == 0:
            return
        for column in (
            self._ops,
            self._hosts,
            self._threads,
            self._file_ids,
            self._offsets,
            self._nblocks,
        ):
            self._chunks_file.write(_column_bytes_le(column))
        self._chunk_index.append((self._chunk_bytes, n))
        self._chunk_bytes += n * _RECORD_BYTES
        self._reset_columns()

    def abort(self) -> None:
        """Discard the spool (error paths; freeze() is the happy path)."""
        if not self._chunks_file.closed:
            self._chunks_file.close()
        if self._owns_temp:
            _TEMP_SPOOLS.discard(str(self._spool_dir))
            shutil.rmtree(self._spool_dir, ignore_errors=True)

    def freeze(
        self,
        warmup_records: int = 0,
        metadata: Optional[Dict[str, str]] = None,
    ) -> "ChunkedCompiledTrace":
        """Resolve the geometry, partition rows per issuer, write the
        manifest, and open the finished trace.

        This is the single full pass over the spooled chunks: it
        computes the derived ``start_blocks`` (file base + offset) for
        every record and lays them out as per-issuer runs in
        ``rows.bin``, so replay never touches the columnar chunks.
        """
        if self._frozen:
            raise TraceFormatError("writer already frozen")
        self._flush_chunk()
        self._chunks_file.close()
        self._frozen = True
        if not 0 <= warmup_records <= self._n_records:
            raise TraceFormatError(
                "warmup_records %d out of range for %d records"
                % (warmup_records, self._n_records)
            )
        file_base = list(
            itertools.accumulate([0] + self._file_blocks[:-1])
        ) if self._file_blocks else []

        issuer_of: Dict[Tuple[int, int], int] = {}
        issuers: List[List] = []  # [host, thread, warmup_rows, n_rows, runs]
        buffers: List[bytearray] = []
        buffered: List[int] = []
        run_bytes = RUN_ROWS * _ROW_BYTES
        pack = _ROW.pack
        warmup_blocks = 0
        global_index = 0

        with open(self._spool_dir / ROWS_NAME, "wb") as rows_file:
            rows_offset = 0

            def flush_run(index: int) -> None:
                nonlocal rows_offset
                buf = buffers[index]
                if not buf:
                    return
                rows_file.write(buf)
                issuers[index][4].append([rows_offset, buffered[index]])
                rows_offset += len(buf)
                buffers[index] = bytearray()
                buffered[index] = 0

            for chunk_offset, n in self._chunk_index:
                (
                    ops,
                    hosts,
                    threads,
                    file_ids,
                    offsets,
                    nblocks,
                ) = self._read_chunk_columns(chunk_offset, n)
                for op, host, thread, fid, offset, nb in zip(
                    ops, hosts, threads, file_ids, offsets, nblocks
                ):
                    key = (host, thread)
                    index = issuer_of.get(key)
                    if index is None:
                        index = len(issuers)
                        issuer_of[key] = index
                        issuers.append([host, thread, 0, 0, []])
                        buffers.append(bytearray())
                        buffered.append(0)
                    buffers[index] += pack(op, file_base[fid] + offset, nb)
                    buffered[index] += 1
                    issuers[index][3] += 1
                    if global_index < warmup_records:
                        issuers[index][2] += 1
                        warmup_blocks += nb
                    if buffered[index] >= RUN_ROWS:
                        flush_run(index)
                    global_index += 1
            for index in range(len(issuers)):
                flush_run(index)

        issuers.sort(key=lambda entry: (entry[0], entry[1]))
        fingerprint = _spool_fingerprint(
            self._spool_dir / CHUNKS_NAME,
            self._chunk_index,
            self._n_records,
            warmup_records,
            self._file_blocks,
            dict(metadata or {}),
        )
        manifest = {
            "version": _MANIFEST_VERSION,
            "n_records": self._n_records,
            "warmup_records": warmup_records,
            "warmup_blocks": warmup_blocks,
            "file_blocks": self._file_blocks,
            "metadata": dict(metadata or {}),
            "chunk_records": self._chunk_records,
            "chunks": [list(entry) for entry in self._chunk_index],
            "issuers": issuers,
            "fingerprint": fingerprint,
        }
        manifest_path = self._spool_dir / MANIFEST_NAME
        tmp_path = self._spool_dir / (MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(tmp_path, manifest_path)
        trace = ChunkedCompiledTrace.open(self._spool_dir)
        trace._owns_temp = self._owns_temp
        return trace

    def _read_chunk_columns(self, chunk_offset: int, n: int):
        offsets = _column_offsets(n)
        with open(self._spool_dir / CHUNKS_NAME, "rb") as handle:
            handle.seek(chunk_offset)
            data = handle.read(n * _RECORD_BYTES)
        if len(data) != n * _RECORD_BYTES:
            raise TraceFormatError("truncated chunk spool")
        return tuple(
            _array_from_le(tc, data[offsets[name][0] : offsets[name][0] + offsets[name][1]]).tolist()
            for name, tc, _width in _CHUNK_COLUMNS
        )


def _spool_fingerprint(
    chunks_path: Path,
    chunk_index: Sequence[Tuple[int, int]],
    n_records: int,
    warmup_records: int,
    file_blocks: Sequence[int],
    metadata: Dict[str, str],
    skip_records: int = 0,
) -> str:
    """The content fingerprint of a chunk spool — **bit-identical** to
    :attr:`CompiledTrace.fingerprint` over the same records.

    The digest sees the same preamble and the same column bytes in the
    same order as the in-memory form; the only difference is that each
    column is gathered chunk by chunk from disk (one seek pass per
    column) instead of from one flat buffer.  ``skip_records`` drops a
    record prefix, matching the fingerprint of the materialized
    ``without_warmup()`` form.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-ctrace-v1")
    digest.update(repr(sorted(metadata.items())).encode("utf-8"))
    digest.update(struct.pack("<QQ", n_records - skip_records, warmup_records))
    if file_blocks:
        digest.update(struct.pack("<%dQ" % len(file_blocks), *file_blocks))
    with open(chunks_path, "rb") as handle:
        for name, _tc, width in _CHUNK_COLUMNS:
            chunk_start = 0
            for chunk_offset, n in chunk_index:
                drop = min(max(skip_records - chunk_start, 0), n)
                chunk_start += n
                if drop == n:
                    continue
                column_offset, _length = _column_offsets(n)[name]
                handle.seek(chunk_offset + column_offset + drop * width)
                payload = handle.read((n - drop) * width)
                if len(payload) != (n - drop) * width:
                    raise TraceFormatError("truncated chunk spool")
                digest.update(payload)
    return digest.hexdigest()


class _RowStream:
    """A re-iterable, lazily-read stream of replay rows.

    Each iteration reads the issuer's runs from ``rows.bin`` one run
    buffer at a time (≤ ``RUN_ROWS`` × 13 bytes held at once) and
    yields ``(op, start_block, nblocks)`` int tuples — exactly the row
    shape ``System._thread_process_compiled`` consumes.  Re-iterable
    because sweep workers replay one cached trace for many points.
    """

    __slots__ = ("_trace", "_runs", "_skip_rows", "_n_rows")

    def __init__(self, trace, runs, skip_rows, n_rows):
        self._trace = trace
        self._runs = runs
        self._skip_rows = skip_rows
        self._n_rows = n_rows

    def __len__(self) -> int:
        return self._n_rows

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        remaining = self._n_rows
        if remaining <= 0:
            return
        to_skip = self._skip_rows
        read_rows = self._trace._read_rows
        for run_offset, run_rows in self._runs:
            if remaining <= 0:
                return
            if to_skip >= run_rows:
                to_skip -= run_rows
                continue
            take = min(run_rows - to_skip, remaining)
            buffer = read_rows(run_offset + to_skip * _ROW_BYTES, take * _ROW_BYTES)
            to_skip = 0
            remaining -= take
            yield from _ROW.iter_unpack(buffer)


class ChunkedCompiledTrace:
    """A compiled trace living in a spool directory, replayed with
    peak memory bounded by chunk/run size instead of trace length.

    Mirrors the :class:`CompiledTrace` surface the simulation driver
    uses (``__len__``, ``hosts()``, ``warmup_blocks()``,
    ``without_warmup()``, ``issuer_plan()``, ``fingerprint``,
    ``total_file_blocks``, ``to_trace()``), so
    :func:`repro.run_simulation` and :mod:`repro.sweep` accept it
    anywhere they accept a compiled trace.  Pickles as its spool path —
    sweep workers on the same machine reopen the spool instead of
    shipping records.
    """

    __slots__ = (
        "spool_dir",
        "file_blocks",
        "metadata",
        "_n_records",
        "_warmup_records",
        "_warmup_blocks",
        "_chunk_index",
        "_issuers",
        "_chunk_records",
        "_stored_fingerprint",
        "_skip",
        "_fingerprint",
        "_plan",
        "_rows_handle",
        "_owns_temp",
    )

    def __init__(self, spool_dir: Path, manifest: Dict, skip: int = 0) -> None:
        self.spool_dir = Path(spool_dir)
        if manifest.get("version") != _MANIFEST_VERSION:
            raise TraceFormatError(
                "unsupported chunked trace manifest version %r in %s"
                % (manifest.get("version"), spool_dir)
            )
        self.file_blocks: List[int] = list(manifest["file_blocks"])
        self.metadata: Dict[str, str] = dict(manifest["metadata"])
        self._n_records: int = manifest["n_records"]
        self._warmup_records: int = manifest["warmup_records"]
        self._warmup_blocks: int = manifest["warmup_blocks"]
        self._chunk_index: List[Tuple[int, int]] = [
            (entry[0], entry[1]) for entry in manifest["chunks"]
        ]
        self._issuers: List[Tuple[int, int, int, int, List[Tuple[int, int]]]] = [
            (
                entry[0],
                entry[1],
                entry[2],
                entry[3],
                [(run[0], run[1]) for run in entry[4]],
            )
            for entry in manifest["issuers"]
        ]
        self._chunk_records: int = manifest.get(
            "chunk_records", DEFAULT_CHUNK_RECORDS
        )
        self._stored_fingerprint: str = manifest["fingerprint"]
        if not 0 <= skip <= self._n_records:
            raise TraceFormatError(
                "skip %d out of range for %d records" % (skip, self._n_records)
            )
        self._skip = skip
        self._fingerprint: Optional[str] = None
        self._plan: Optional[list] = None
        self._rows_handle = None
        self._owns_temp = False

    @classmethod
    def open(
        cls, spool_dir: Union[str, Path], skip: int = 0
    ) -> "ChunkedCompiledTrace":
        """Open an existing spool directory."""
        spool_dir = Path(spool_dir)
        manifest_path = spool_dir / MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise TraceFormatError(
                "%s is not a chunked trace spool (no %s)"
                % (spool_dir, MANIFEST_NAME)
            )
        except ValueError as exc:
            raise TraceFormatError(
                "corrupt chunked trace manifest %s: %s" % (manifest_path, exc)
            ) from exc
        return cls(spool_dir, manifest, skip=skip)

    @classmethod
    def from_trace(
        cls,
        trace: Union[Trace, CompiledTrace],
        *,
        spool_dir: Union[None, str, Path] = None,
        chunk_records: Optional[int] = None,
    ) -> "ChunkedCompiledTrace":
        """Spool an in-memory trace (object or compiled form) into the
        chunked representation.  Content-preserving: the result's
        fingerprint equals ``compile_trace(trace).fingerprint``."""
        writer = ChunkedTraceWriter(
            trace.file_blocks, spool_dir=spool_dir, chunk_records=chunk_records
        )
        try:
            if isinstance(trace, CompiledTrace):
                append = writer.append
                for op, host, thread, fid, offset, nb in zip(
                    trace.ops,
                    trace.hosts_col,
                    trace.threads_col,
                    trace.file_ids,
                    trace.offsets,
                    trace.nblocks,
                ):
                    append(bool(op), host, thread, fid, offset, nb)
            else:
                append_record = writer.append_record
                for record in trace.records:
                    append_record(record)
            return writer.freeze(trace.warmup_records, dict(trace.metadata))
        except BaseException:
            writer.abort()
            raise

    # --- Trace-compatible surface --------------------------------------

    def __len__(self) -> int:
        return self._n_records - self._skip

    @property
    def warmup_records(self) -> int:
        return 0 if self._skip else self._warmup_records

    @property
    def total_file_blocks(self) -> int:
        return sum(self.file_blocks)

    def hosts(self) -> List[int]:
        """Sorted list of host ids appearing in the (remaining) trace."""
        if self._skip:
            return sorted(
                {
                    host
                    for host, _thread, w_rows, n_rows, _runs in self._issuers
                    if n_rows - w_rows > 0
                }
            )
        return sorted({host for host, *_rest in self._issuers})

    def warmup_blocks(self) -> int:
        """Total block volume of the warmup prefix."""
        return 0 if self._skip else self._warmup_blocks

    def without_warmup(self) -> "ChunkedCompiledTrace":
        """The trace with warmup records removed (cold start, §7.8).

        Chunked traces strip warmup by *offsetting into the spool*
        (each issuer stream starts after its warmup rows) — no data is
        copied or rewritten, matching the zero-copy slicing of the
        in-memory compiled form.
        """
        if self.warmup_records == 0:
            return self
        stripped = ChunkedCompiledTrace.open(
            self.spool_dir, skip=self._warmup_records
        )
        return stripped

    # --- replay plan ----------------------------------------------------

    def issuer_plan(self):
        """Per-(host, thread) lazy row streams with the warmup split.

        Same contract as :meth:`CompiledTrace.issuer_plan` — sorted by
        ``(host, thread)``, rows in trace order, warmup prefix split —
        but the row containers are :class:`_RowStream` objects that
        read run buffers from ``rows.bin`` on demand instead of
        materialized tuple lists.  The replay hot loop only ever
        iterates the containers, so it runs unchanged; memory stays at
        one run buffer per concurrently-replaying issuer.
        """
        if self._plan is not None:
            return self._plan
        plan = []
        if self._skip:
            for host, thread, w_rows, n_rows, runs in self._issuers:
                measured = n_rows - w_rows
                if measured <= 0:
                    # An issuer confined to the stripped warmup prefix
                    # does not exist in the cold-start trace — the
                    # materialized path drops it the same way, keeping
                    # spawn order and thread accounting identical.
                    continue
                plan.append(
                    (
                        host,
                        thread,
                        _RowStream(self, runs, 0, 0),
                        _RowStream(self, runs, w_rows, measured),
                    )
                )
        else:
            for host, thread, w_rows, n_rows, runs in self._issuers:
                plan.append(
                    (
                        host,
                        thread,
                        _RowStream(self, runs, 0, w_rows),
                        _RowStream(self, runs, w_rows, n_rows - w_rows),
                    )
                )
        self._plan = plan
        return plan

    def _read_rows(self, offset: int, nbytes: int) -> bytes:
        handle = self._rows_handle
        if handle is None or handle.closed:
            handle = open(self.spool_dir / ROWS_NAME, "rb")
            self._rows_handle = handle
        handle.seek(offset)
        buffer = handle.read(nbytes)
        if len(buffer) != nbytes:
            raise TraceFormatError("truncated row spool in %s" % self.spool_dir)
        return buffer

    # --- streaming record access ----------------------------------------

    def iter_records(self) -> Iterator[Tuple[int, int, int, int, int, int]]:
        """Stream ``(op, host, thread, file_id, offset, nblocks)``
        tuples in trace order, decoding one chunk at a time."""
        skip = self._skip
        chunk_start = 0
        for chunk_offset, n in self._chunk_index:
            drop = min(max(skip - chunk_start, 0), n)
            chunk_start += n
            if drop == n:
                continue
            columns = self._read_chunk(chunk_offset, n)
            yield from itertools.islice(zip(*columns), drop, None)

    def _read_chunk(self, chunk_offset: int, n: int):
        offsets = _column_offsets(n)
        with open(self.spool_dir / CHUNKS_NAME, "rb") as handle:
            handle.seek(chunk_offset)
            data = handle.read(n * _RECORD_BYTES)
        if len(data) != n * _RECORD_BYTES:
            raise TraceFormatError("truncated chunk spool in %s" % self.spool_dir)
        return tuple(
            _array_from_le(
                tc, data[offsets[name][0] : offsets[name][0] + offsets[name][1]]
            ).tolist()
            for name, tc, _width in _CHUNK_COLUMNS
        )

    def to_trace(self) -> Trace:
        """Materialize back into the object representation.

        This is O(trace) memory by definition — it exists for the
        observability replay path and for small-trace tests, not for
        the streaming pipeline."""
        records = [
            TraceRecord(
                TraceOp.WRITE if op else TraceOp.READ,
                host,
                thread,
                file_id,
                offset,
                nb,
            )
            for op, host, thread, file_id, offset, nb in self.iter_records()
        ]
        return Trace(
            records,
            self.file_blocks,
            warmup_records=self.warmup_records,
            metadata=dict(self.metadata),
        )

    # --- fingerprint ----------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Stable content hash, bit-identical to the fingerprint of the
        equivalent :class:`CompiledTrace` (see
        :func:`_spool_fingerprint`).  The freeze-time value is stored
        in the manifest; only warmup-stripped views recompute."""
        if self._skip == 0:
            return self._stored_fingerprint
        cached = self._fingerprint
        if cached is not None:
            return cached
        self._fingerprint = _spool_fingerprint(
            self.spool_dir / CHUNKS_NAME,
            self._chunk_index,
            self._n_records,
            0,
            self.file_blocks,
            self.metadata,
            skip_records=self._skip,
        )
        return self._fingerprint

    # --- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Close the spool file handle (reopened lazily on next use)."""
        handle = self._rows_handle
        self._rows_handle = None
        if handle is not None and not handle.closed:
            handle.close()

    def delete(self) -> None:
        """Close and remove the spool directory from disk."""
        self.close()
        _TEMP_SPOOLS.discard(str(self.spool_dir))
        shutil.rmtree(self.spool_dir, ignore_errors=True)

    def __reduce__(self):
        # Pickle as the spool path: workers reopen the spool (same
        # machine, shared filesystem) instead of shipping record data.
        return (_reopen, (str(self.spool_dir), self._skip))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (ChunkedCompiledTrace, CompiledTrace)):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ChunkedCompiledTrace %d records, %d files, %d chunks, warmup=%d at %s>" % (
            len(self),
            len(self.file_blocks),
            len(self._chunk_index),
            self.warmup_records,
            self.spool_dir,
        )


def _reopen(spool_dir: str, skip: int) -> ChunkedCompiledTrace:
    """Unpickle helper (module-level so pickle can address it)."""
    return ChunkedCompiledTrace.open(spool_dir, skip=skip)
