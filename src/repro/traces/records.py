"""Trace records and the in-memory trace container."""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro._units import BLOCK_SIZE
from repro.errors import TraceFormatError


class TraceOp(enum.Enum):
    """Operation type of a trace record."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:
        return self.value


class TraceRecord:
    """One block-range I/O operation.

    Attributes:
        op:      READ or WRITE.
        host:    issuing host id (0-based).
        thread:  issuing thread id within the host (0-based).
        file_id: file identifier within the trace's file-system model.
        offset:  starting block within the file.
        nblocks: number of consecutive 4 KB blocks covered.
    """

    __slots__ = ("op", "host", "thread", "file_id", "offset", "nblocks")

    def __init__(
        self,
        op: TraceOp,
        host: int,
        thread: int,
        file_id: int,
        offset: int,
        nblocks: int,
    ) -> None:
        if nblocks < 1:
            raise TraceFormatError("record must cover >= 1 block, got %d" % nblocks)
        if min(host, thread, file_id, offset) < 0:
            raise TraceFormatError("record fields must be non-negative")
        self.op = op
        self.host = host
        self.thread = thread
        self.file_id = file_id
        self.offset = offset
        self.nblocks = nblocks

    @property
    def is_write(self) -> bool:
        return self.op is TraceOp.WRITE

    @property
    def nbytes(self) -> int:
        return self.nblocks * BLOCK_SIZE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.op is other.op
            and self.host == other.host
            and self.thread == other.thread
            and self.file_id == other.file_id
            and self.offset == other.offset
            and self.nblocks == other.nblocks
        )

    def __repr__(self) -> str:
        return "TraceRecord(%s, h%d t%d, file=%d, off=%d, n=%d)" % (
            self.op,
            self.host,
            self.thread,
            self.file_id,
            self.offset,
            self.nblocks,
        )


class Trace:
    """An ordered list of records plus the file geometry they address.

    ``file_blocks[f]`` is the size of file ``f`` in 4 KB blocks; the
    trace uses it to flatten ``(file, offset)`` pairs into *global*
    block numbers, which is the namespace the caches operate in.

    ``warmup_records`` is the count of leading records forming the
    warmup phase ("half of it being devoted to a warmup period for
    which statistics are not collected").
    """

    def __init__(
        self,
        records: Sequence[TraceRecord],
        file_blocks: Sequence[int],
        warmup_records: int = 0,
        metadata: Optional[Dict[str, str]] = None,
    ) -> None:
        if not 0 <= warmup_records <= len(records):
            raise TraceFormatError(
                "warmup_records %d out of range for %d records"
                % (warmup_records, len(records))
            )
        self.records: List[TraceRecord] = list(records)
        self.file_blocks: List[int] = list(file_blocks)
        self.warmup_records = warmup_records
        self.metadata: Dict[str, str] = dict(metadata or {})
        # cumulative base block number per file
        self._file_base: List[int] = list(
            itertools.accumulate([0] + self.file_blocks[:-1])
        ) if self.file_blocks else []
        self._validate()

    def _validate(self) -> None:
        n_files = len(self.file_blocks)
        for index, record in enumerate(self.records):
            if record.file_id >= n_files:
                raise TraceFormatError(
                    "record %d references file %d but trace has %d files"
                    % (index, record.file_id, n_files)
                )
            if record.offset + record.nblocks > self.file_blocks[record.file_id]:
                raise TraceFormatError(
                    "record %d overruns file %d (%d blocks): offset=%d n=%d"
                    % (
                        index,
                        record.file_id,
                        self.file_blocks[record.file_id],
                        record.offset,
                        record.nblocks,
                    )
                )

    # --- addressing ----------------------------------------------------

    def global_block(self, file_id: int, offset: int) -> int:
        """Flatten a (file, block-offset) pair to a global block number."""
        return self._file_base[file_id] + offset

    def record_blocks(self, record: TraceRecord) -> range:
        """The global block numbers a record covers."""
        start = self.global_block(record.file_id, record.offset)
        return range(start, start + record.nblocks)

    @property
    def total_file_blocks(self) -> int:
        """Size of the whole file-server model, in blocks."""
        return sum(self.file_blocks)

    # --- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def hosts(self) -> List[int]:
        """Sorted list of host ids appearing in the trace."""
        return sorted({record.host for record in self.records})

    def threads_of(self, host: int) -> List[int]:
        """Sorted list of thread ids used by one host."""
        return sorted({r.thread for r in self.records if r.host == host})

    def issuers(self) -> List[Tuple[int, int]]:
        """Sorted distinct ``(host, thread)`` pairs — the concurrent
        issuer streams the replay engine will spawn (one simulation
        process each, at most one I/O in flight per stream)."""
        return sorted({(r.host, r.thread) for r in self.records})

    def split_by_issuer(self) -> Dict[Tuple[int, int], List[Tuple[int, TraceRecord]]]:
        """Group records by (host, thread), keeping each record's global
        index so the replay engine can tell warmup records apart."""
        groups: Dict[Tuple[int, int], List[Tuple[int, TraceRecord]]] = {}
        for index, record in enumerate(self.records):
            groups.setdefault((record.host, record.thread), []).append((index, record))
        return groups

    def without_warmup(self) -> "Trace":
        """The trace with the warmup records *removed* — this is the
        paper's cold-start / crash-at-start scenario (§7.8).

        Returns ``self`` when there is no warmup prefix: the result is
        treated as read-only by every caller, and copying a
        multi-million-record list to strip zero records doubles peak
        memory for nothing.
        """
        if self.warmup_records == 0:
            return self
        return Trace(
            self.records[self.warmup_records :],
            self.file_blocks,
            warmup_records=0,
            metadata=dict(self.metadata),
        )

    def __getstate__(self) -> Dict[str, object]:
        # Drop the memoized compiled form: pickling it alongside the
        # record list would double every spool/cache payload, and it is
        # cheap to rebuild on the other side.
        state = dict(self.__dict__)
        state.pop("_compiled_trace", None)
        return state

    @property
    def total_bytes(self) -> int:
        """Total data volume the trace moves."""
        return sum(record.nbytes for record in self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Trace %d records, %d files, warmup=%d>" % (
            len(self.records),
            len(self.file_blocks),
            self.warmup_records,
        )
