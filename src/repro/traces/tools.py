"""Trace manipulation tools.

Utilities for composing experiment inputs out of existing traces —
most usefully for driving the multi-host consistency experiments with
*imported* traces (each import becomes one host) and for cutting big
traces down to experiment size:

* :func:`merge_traces` — interleave several traces onto distinct hosts
  over a combined file geometry;
* :func:`slice_records` — keep a contiguous record range;
* :func:`subsample` — keep every k-th record (cheap thinning);
* :func:`remap_host` — move all of a trace's records to one host id.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceRecord


def merge_traces(traces: Sequence[Trace], interleave: bool = True) -> Trace:
    """Merge traces onto distinct hosts over a combined geometry.

    Trace ``i``'s records all land on host ``i`` (their original host
    ids are folded); file ids are offset so each input keeps a private
    region of the combined file list.  ``interleave=True`` (default)
    round-robins records proportionally to each input's length so the
    merged replay overlaps the workloads, as concurrent hosts would;
    ``False`` concatenates.

    The merged warmup is the sum of the inputs' warmup record counts
    (interleaving preserves each record's phase only approximately; the
    proportional round-robin keeps warmup records in the leading
    portion).
    """
    if not traces:
        raise TraceFormatError("merge_traces needs at least one trace")
    file_blocks: List[int] = []
    rebased: List[List[TraceRecord]] = []
    for host_id, trace in enumerate(traces):
        offset = len(file_blocks)
        file_blocks.extend(trace.file_blocks)
        rebased.append(
            [
                TraceRecord(
                    record.op,
                    host_id,
                    record.thread,
                    record.file_id + offset,
                    record.offset,
                    record.nblocks,
                )
                for record in trace.records
            ]
        )

    records: List[TraceRecord] = []
    if interleave:
        total = sum(len(group) for group in rebased)
        cursors = [0] * len(rebased)
        # Proportional round-robin: at each step pick the input whose
        # progress lags its share the most.
        for _ in range(total):
            best = None
            best_lag = None
            for index, group in enumerate(rebased):
                if cursors[index] >= len(group):
                    continue
                lag = cursors[index] / len(group)
                if best_lag is None or lag < best_lag:
                    best, best_lag = index, lag
            assert best is not None
            records.append(rebased[best][cursors[best]])
            cursors[best] += 1
    else:
        for group in rebased:
            records.extend(group)

    warmup = sum(trace.warmup_records for trace in traces)
    return Trace(
        records,
        file_blocks,
        warmup_records=min(warmup, len(records)),
        metadata={"merged_from": str(len(traces))},
    )


def slice_records(trace: Trace, start: int, stop: int) -> Trace:
    """Keep records[start:stop]; warmup shrinks to the overlap.

    Returns ``trace`` itself when the slice keeps every record — the
    no-op case importer pipelines hit when a trace already fits the
    experiment budget, where a full-list copy would only burn memory.
    """
    if start < 0 or stop < start:
        raise TraceFormatError("bad slice [%d:%d]" % (start, stop))
    if start == 0 and stop >= len(trace.records):
        return trace
    records = trace.records[start:stop]
    warmup = max(0, min(trace.warmup_records - start, len(records)))
    return Trace(records, trace.file_blocks, warmup, dict(trace.metadata))


def subsample(trace: Trace, keep_every: int) -> Trace:
    """Keep every ``keep_every``-th record (cheap thinning for huge
    imports; working-set structure is preserved statistically).

    ``keep_every=1`` keeps everything and returns ``trace`` itself —
    the common "no thinning needed" configuration must not copy a
    multi-million-record list.
    """
    if keep_every < 1:
        raise TraceFormatError("keep_every must be >= 1")
    if keep_every == 1:
        return trace
    records = trace.records[::keep_every]
    warmup = len(trace.records[: trace.warmup_records : keep_every])
    return Trace(records, trace.file_blocks, warmup, dict(trace.metadata))


def remap_host(trace: Trace, host: int) -> Trace:
    """Move every record to one host id (fold a multi-host trace).

    Returns ``trace`` itself when every record already lives on
    ``host`` (single-host imports remapped to host 0, the common case).
    """
    if host < 0:
        raise TraceFormatError("host id must be non-negative")
    if all(r.host == host for r in trace.records):
        return trace
    records = [
        TraceRecord(r.op, host, r.thread, r.file_id, r.offset, r.nblocks)
        for r in trace.records
    ]
    return Trace(records, trace.file_blocks, trace.warmup_records, dict(trace.metadata))
