"""Trace manipulation tools.

Utilities for composing experiment inputs out of existing traces —
most usefully for driving the multi-host consistency experiments with
*imported* traces (each import becomes one host) and for cutting big
traces down to experiment size:

* :func:`merge_traces` — interleave several traces onto distinct hosts
  over a combined file geometry;
* :func:`slice_records` — keep a contiguous record range;
* :func:`subsample` — keep every k-th record (cheap thinning);
* :func:`remap_host` — move all of a trace's records to one host id.

Folding semantics: replay concurrency is defined by distinct
``(host, thread)`` issuer streams (see :meth:`Trace.issuers`), so any
operation that folds several hosts onto one — :func:`merge_traces`
folding each input onto its slot host, :func:`remap_host` folding a
whole trace onto one host — must also remap thread ids.  Otherwise
``(host 0, thread 0)`` and ``(host 1, thread 0)`` would collapse into a
single stream and previously concurrent requests would silently
serialize, changing replay timing.  Both functions therefore assign
each original ``(host, thread)`` pair a unique thread id on the target
host, preserving the issuer-stream count exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceRecord


def _fold_thread_map(trace: Trace) -> Dict[Tuple[int, int], int]:
    """Unique per-target-host thread ids for a host fold.

    Each distinct ``(host, thread)`` issuer pair maps to its index in
    the sorted pair list, so folding N hosts onto one host keeps N×T
    distinct issuer streams instead of collapsing same-numbered threads
    from different hosts into one.
    """
    return {pair: index for index, pair in enumerate(trace.issuers())}


def merge_traces(traces: Sequence[Trace], interleave: bool = True) -> Trace:
    """Merge traces onto distinct hosts over a combined geometry.

    Trace ``i``'s records all land on host ``i``; file ids are offset
    so each input keeps a private region of the combined file list.
    When an input itself spans several hosts, its ``(host, thread)``
    issuer pairs are remapped to unique thread ids on the slot host, so
    the merged trace preserves every input's issuer-stream count (see
    the module docstring; previously same-numbered threads from
    different hosts were silently collapsed into one stream).
    ``interleave=True`` (default) round-robins records proportionally
    to each input's length so the merged replay overlaps the workloads,
    as concurrent hosts would; ``False`` concatenates.

    The merged warmup is the sum of the inputs' warmup record counts
    (interleaving preserves each record's phase only approximately; the
    proportional round-robin keeps warmup records in the leading
    portion).
    """
    if not traces:
        raise TraceFormatError("merge_traces needs at least one trace")
    file_blocks: List[int] = []
    rebased: List[List[TraceRecord]] = []
    for host_id, trace in enumerate(traces):
        offset = len(file_blocks)
        file_blocks.extend(trace.file_blocks)
        multi_host = len({record.host for record in trace.records}) > 1
        thread_map = _fold_thread_map(trace) if multi_host else None
        rebased.append(
            [
                TraceRecord(
                    record.op,
                    host_id,
                    record.thread
                    if thread_map is None
                    else thread_map[(record.host, record.thread)],
                    record.file_id + offset,
                    record.offset,
                    record.nblocks,
                )
                for record in trace.records
            ]
        )

    records: List[TraceRecord] = []
    if interleave:
        total = sum(len(group) for group in rebased)
        cursors = [0] * len(rebased)
        # Proportional round-robin: at each step pick the input whose
        # progress lags its share the most.
        for _ in range(total):
            best = None
            best_lag = None
            for index, group in enumerate(rebased):
                if cursors[index] >= len(group):
                    continue
                lag = cursors[index] / len(group)
                if best_lag is None or lag < best_lag:
                    best, best_lag = index, lag
            assert best is not None
            records.append(rebased[best][cursors[best]])
            cursors[best] += 1
    else:
        for group in rebased:
            records.extend(group)

    warmup = sum(trace.warmup_records for trace in traces)
    return Trace(
        records,
        file_blocks,
        warmup_records=min(warmup, len(records)),
        metadata={"merged_from": str(len(traces))},
    )


def slice_records(trace: Trace, start: int, stop: int) -> Trace:
    """Keep records[start:stop]; warmup shrinks to the overlap.

    Returns ``trace`` itself when the slice keeps every record — the
    no-op case importer pipelines hit when a trace already fits the
    experiment budget, where a full-list copy would only burn memory.
    """
    if start < 0 or stop < start:
        raise TraceFormatError("bad slice [%d:%d]" % (start, stop))
    if start == 0 and stop >= len(trace.records):
        return trace
    records = trace.records[start:stop]
    warmup = max(0, min(trace.warmup_records - start, len(records)))
    return Trace(records, trace.file_blocks, warmup, dict(trace.metadata))


def subsample(trace: Trace, keep_every: int) -> Trace:
    """Keep every ``keep_every``-th record (cheap thinning for huge
    imports; working-set structure is preserved statistically).

    ``keep_every=1`` keeps everything and returns ``trace`` itself —
    the common "no thinning needed" configuration must not copy a
    multi-million-record list.

    The surviving warmup count is computed arithmetically: records
    ``0, k, 2k, ...`` survive, so ``ceil(warmup / k)`` of them fall
    below the original warmup boundary.  (Previously this sliced the
    whole warmup prefix into a temporary list just to count it —
    an O(warmup) copy on the multi-million-record imports this
    function exists to thin.)
    """
    if keep_every < 1:
        raise TraceFormatError("keep_every must be >= 1")
    if keep_every == 1:
        return trace
    records = trace.records[::keep_every]
    warmup = -(-trace.warmup_records // keep_every)
    return Trace(records, trace.file_blocks, warmup, dict(trace.metadata))


def remap_host(trace: Trace, host: int) -> Trace:
    """Move every record to one host id (fold a multi-host trace).

    When the source spans several hosts, each ``(host, thread)`` issuer
    pair gets a unique thread id on the target host, preserving the
    issuer-stream count — and therefore replay concurrency — exactly
    (see the module docstring).  Single-host sources keep their thread
    ids unchanged.

    Returns ``trace`` itself when every record already lives on
    ``host`` (single-host imports remapped to host 0, the common case).
    """
    if host < 0:
        raise TraceFormatError("host id must be non-negative")
    if all(r.host == host for r in trace.records):
        return trace
    multi_host = len({r.host for r in trace.records}) > 1
    thread_map = _fold_thread_map(trace) if multi_host else None
    records = [
        TraceRecord(
            r.op,
            host,
            r.thread if thread_map is None else thread_map[(r.host, r.thread)],
            r.file_id,
            r.offset,
            r.nblocks,
        )
        for r in trace.records
    ]
    return Trace(records, trace.file_blocks, trace.warmup_records, dict(trace.metadata))
