"""Block-level I/O traces.

The paper's traces contain "read and write operations.  Each operation
identifies a file and a range of blocks within that file.  Each
operation also carries a thread ID and host ID."

This package provides the in-memory representation
(:class:`TraceRecord`, :class:`Trace`), the packed columnar form used
by the replay fast path and zero-copy sweep fan-out
(:class:`CompiledTrace`, :func:`compile_trace` in
:mod:`repro.traces.compiled`), the disk-backed bounded-memory form for
traces too large to materialize (:class:`ChunkedCompiledTrace`,
:class:`ChunkedTraceWriter` in :mod:`repro.traces.chunked`), text and
binary file formats with round-trip fidelity
(:mod:`repro.traces.format`), and summary statistics used by
validation tests (:mod:`repro.traces.stats`).
"""

from repro.traces.records import Trace, TraceOp, TraceRecord
from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.chunked import ChunkedCompiledTrace, ChunkedTraceWriter
from repro.traces.format import load_trace, save_trace
from repro.traces.stats import TraceStats, compute_stats

__all__ = [
    "Trace",
    "TraceOp",
    "TraceRecord",
    "CompiledTrace",
    "compile_trace",
    "ChunkedCompiledTrace",
    "ChunkedTraceWriter",
    "load_trace",
    "save_trace",
    "TraceStats",
    "compute_stats",
]
