"""Compiled traces: a packed columnar representation of a :class:`Trace`.

A :class:`~repro.traces.records.Trace` is a list of Python record
objects — flexible to build, expensive to replay and to ship.  On the
multi-million-record traces the paper-scale sweeps need (related
storage-cache studies run 10⁶–10⁷ request traces), three costs of the
object form dominate the sweep engine rather than the simulation:

* **attribute-at-a-time replay** — every record costs attribute loads,
  an ``is_write`` property call, and a method chain to flatten its
  global block range;
* **object-at-a-time hashing** — content fingerprinting packs records
  one by one in pure Python;
* **object-graph pickling** — every sweep worker unpickles the full
  record list before replaying the first block.

:class:`CompiledTrace` packs the records into flat columnar buffers
(stdlib :class:`array.array` — no numpy dependency), one column per
field, plus a precomputed *global start block* column so replay never
recomputes the file-base flattening.  The payoff:

* :attr:`fingerprint` hashes the raw column buffers (a handful of
  ``hashlib`` calls over C buffers instead of one ``struct.pack`` per
  record);
* :meth:`to_bytes` / :meth:`from_buffer` give a flat single-blob wire
  format that attaches **zero-copy** from ``multiprocessing``
  shared memory (the columns become typed :class:`memoryview` casts
  into the shared segment — see :mod:`repro.sweep`);
* :meth:`issuer_plan` hands the replay engine per-thread row lists with
  the warmup boundary pre-split, so the hot loop touches nothing but
  local ints (see ``System._thread_process_compiled``).

Compilation is content-preserving and replay over a compiled trace is
bit-identical to replay over the object form — enforced by
``tests/test_traces_compiled.py`` and the signature-drift gate in
``benchmarks/sweep_speedup.py``.

Use :func:`compile_trace` to compile (memoized per ``Trace`` object);
:func:`repro.run_simulation` compiles large traces automatically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import struct
import sys
from array import array
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceOp, TraceRecord

__all__ = ["CompiledTrace", "compile_trace", "COMPILED_MAGIC"]

#: Magic prefix of the flat wire format produced by :meth:`to_bytes`.
COMPILED_MAGIC = b"RPCTRC\x001"

#: The packed columns, in serialization order: (name, array typecode).
#: ``start_blocks`` is derived (file base + offset) but serialized so a
#: zero-copy attach never has to recompute it.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("ops", "B"),
    ("hosts", "I"),
    ("threads", "I"),
    ("file_ids", "I"),
    ("offsets", "Q"),
    ("nblocks", "I"),
    ("start_blocks", "Q"),
)

#: Columns covered by the content fingerprint (``start_blocks`` is
#: derived from ``file_ids``/``offsets`` and would only double-hash).
_FINGERPRINT_COLUMNS = ("ops", "hosts", "threads", "file_ids", "offsets", "nblocks")

_HEADER_LEN = struct.Struct("<I")


def _column_bytes_le(column) -> bytes:
    """A column's raw little-endian bytes (fingerprints and the wire
    format are defined little-endian so caches port across machines)."""
    if sys.byteorder == "little":
        if isinstance(column, array):
            return column.tobytes()
        return bytes(column)  # memoryview cast
    swapped = array(column.typecode, column)  # pragma: no cover - BE only
    swapped.byteswap()  # pragma: no cover - BE only
    return swapped.tobytes()  # pragma: no cover - BE only


class CompiledTrace:
    """A trace packed into flat columnar buffers.

    Columns are either owning :class:`array.array`\\ s (built by
    :func:`compile_trace` / :meth:`from_bytes`) or zero-copy
    :class:`memoryview` casts into an external buffer
    (:meth:`from_buffer`); both expose identical indexing, slicing and
    ``tolist`` behavior, so nothing downstream cares which it got.

    The public surface mirrors the parts of :class:`Trace` the
    simulation driver uses (``hosts()``, ``without_warmup()``,
    ``__len__``, ``total_file_blocks``), so
    :func:`repro.run_simulation` accepts either form.
    """

    __slots__ = (
        "ops",
        "hosts_col",
        "threads_col",
        "file_ids",
        "offsets",
        "nblocks",
        "start_blocks",
        "file_blocks",
        "warmup_records",
        "metadata",
        "_fingerprint",
        "_plan",
        "_views",
    )

    def __init__(
        self,
        ops,
        hosts_col,
        threads_col,
        file_ids,
        offsets,
        nblocks,
        start_blocks,
        file_blocks: List[int],
        warmup_records: int,
        metadata: Dict[str, str],
        _views: Optional[List[memoryview]] = None,
    ) -> None:
        self.ops = ops
        self.hosts_col = hosts_col
        self.threads_col = threads_col
        self.file_ids = file_ids
        self.offsets = offsets
        self.nblocks = nblocks
        self.start_blocks = start_blocks
        self.file_blocks = list(file_blocks)
        self.warmup_records = warmup_records
        self.metadata = dict(metadata)
        self._fingerprint: Optional[str] = None
        self._plan: Optional[list] = None
        self._views = _views or []
        n = len(self.ops)
        if not 0 <= warmup_records <= n:
            raise TraceFormatError(
                "warmup_records %d out of range for %d records" % (warmup_records, n)
            )
        for name, _tc in _COLUMNS:
            if len(self._column(name)) != n:
                raise TraceFormatError(
                    "compiled trace column %r has %d entries, expected %d"
                    % (name, len(self._column(name)), n)
                )

    def _column(self, name: str):
        attr = {"hosts": "hosts_col", "threads": "threads_col"}.get(name, name)
        return getattr(self, attr)

    # --- Trace-compatible surface --------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def total_file_blocks(self) -> int:
        return sum(self.file_blocks)

    def hosts(self) -> List[int]:
        """Sorted list of host ids appearing in the trace."""
        return sorted(set(self.hosts_col))

    def without_warmup(self) -> "CompiledTrace":
        """The trace with warmup records removed (``self`` when there is
        nothing to strip).  Slicing memoryview columns yields further
        views into the same buffer, so the result of stripping an
        attached trace is still zero-copy."""
        if self.warmup_records == 0:
            return self
        w = self.warmup_records
        return CompiledTrace(
            self.ops[w:],
            self.hosts_col[w:],
            self.threads_col[w:],
            self.file_ids[w:],
            self.offsets[w:],
            self.nblocks[w:],
            self.start_blocks[w:],
            self.file_blocks,
            0,
            self.metadata,
        )

    def warmup_blocks(self) -> int:
        """Total block volume of the warmup prefix."""
        return sum(self.nblocks[: self.warmup_records])

    def to_trace(self) -> Trace:
        """Materialize back into the object representation (used by the
        instrumented/observability replay path, which needs records)."""
        records = [
            TraceRecord(
                TraceOp.WRITE if op else TraceOp.READ,
                host,
                thread,
                file_id,
                offset,
                nb,
            )
            for op, host, thread, file_id, offset, nb in zip(
                self.ops,
                self.hosts_col,
                self.threads_col,
                self.file_ids,
                self.offsets,
                self.nblocks,
            )
        ]
        return Trace(
            records,
            self.file_blocks,
            warmup_records=self.warmup_records,
            metadata=dict(self.metadata),
        )

    # --- replay plan ----------------------------------------------------

    def issuer_plan(
        self,
    ) -> List[Tuple[int, int, List[Tuple[int, int, int]], List[Tuple[int, int, int]]]]:
        """Rows grouped per (host, thread) with the warmup prefix split.

        Returns ``[(host, thread, warmup_rows, measured_rows), ...]``
        sorted by ``(host, thread)``; each row is an ``(op, start_block,
        nblocks)`` int tuple and rows keep trace order, matching
        ``Trace.split_by_issuer`` exactly.  Built with ``tolist()`` and
        comprehensions so the per-record Python work is one dict lookup.

        The plan is memoized: sweep workers replay one cached trace for
        many points, and the rows are immutable tuples the replay loop
        only reads, so the first replay's plan serves all later ones.
        """
        if self._plan is not None:
            return self._plan
        hosts = self.hosts_col.tolist()
        threads = self.threads_col.tolist()
        rows = list(
            zip(self.ops.tolist(), self.start_blocks.tolist(), self.nblocks.tolist())
        )
        groups: Dict[Tuple[int, int], List[int]] = {}
        for index, key in enumerate(zip(hosts, threads)):
            group = groups.get(key)
            if group is None:
                groups[key] = [index]
            else:
                group.append(index)
        warmup = self.warmup_records
        plan = []
        for (host, thread), indices in sorted(groups.items()):
            # Indices are ascending, so the warmup prefix is contiguous.
            split = bisect_left(indices, warmup)
            plan.append(
                (
                    host,
                    thread,
                    [rows[i] for i in indices[:split]],
                    [rows[i] for i in indices[split:]],
                )
            )
        self._plan = plan
        return plan

    # --- fingerprint ----------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Stable content hash over the raw column buffers.

        O(1) Python-level work (a few digest updates over flat buffers)
        versus the per-record ``struct.pack`` loop the object form
        needs; equal compiled traces — regardless of how they were
        built, attached, or sliced — hash equal.
        """
        cached = self._fingerprint
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        digest.update(b"repro-ctrace-v1")
        digest.update(repr(sorted(self.metadata.items())).encode("utf-8"))
        digest.update(struct.pack("<QQ", len(self), self.warmup_records))
        if self.file_blocks:
            digest.update(struct.pack("<%dQ" % len(self.file_blocks), *self.file_blocks))
        for name in _FINGERPRINT_COLUMNS:
            digest.update(_column_bytes_le(self._column(name)))
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # --- wire format ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize into one flat blob: magic, JSON header, then the
        raw column buffers (8-byte aligned, little-endian)."""
        column_table = []
        chunks: List[bytes] = []
        offset = 0
        for name, typecode in _COLUMNS:
            payload = _column_bytes_le(self._column(name))
            column_table.append([name, typecode, offset, len(payload)])
            pad = (-(offset + len(payload))) % 8
            chunks.append(payload)
            chunks.append(b"\x00" * pad)
            offset += len(payload) + pad
        header = json.dumps(
            {
                "n_records": len(self),
                "warmup": self.warmup_records,
                "file_blocks": self.file_blocks,
                "metadata": self.metadata,
                "columns": column_table,
            }
        ).encode("utf-8")
        head = COMPILED_MAGIC + _HEADER_LEN.pack(len(header)) + header
        pad = (-len(head)) % 8
        return b"".join([head, b"\x00" * pad] + chunks)

    @classmethod
    def from_buffer(cls, buffer) -> "CompiledTrace":
        """Attach to a serialized blob **without copying** the columns.

        ``buffer`` is any buffer-protocol object (typically a
        ``SharedMemory.buf`` slice); the columns become typed
        ``memoryview`` casts into it.  Call :meth:`release` before the
        underlying segment is closed.  Only valid on little-endian
        hosts (everything common); big-endian falls back to a copy.
        """
        view = memoryview(buffer)
        views = [view]
        if bytes(view[: len(COMPILED_MAGIC)]) != COMPILED_MAGIC:
            raise TraceFormatError("not a compiled trace blob (bad magic)")
        cursor = len(COMPILED_MAGIC)
        (header_len,) = _HEADER_LEN.unpack_from(view, cursor)
        cursor += _HEADER_LEN.size
        try:
            header = json.loads(bytes(view[cursor : cursor + header_len]).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TraceFormatError("corrupt compiled trace header: %s" % exc) from exc
        cursor += header_len
        cursor += (-cursor) % 8
        if sys.byteorder != "little":  # pragma: no cover - BE only
            return cls.from_bytes(bytes(view))
        columns = {}
        expected = dict(_COLUMNS)
        for name, typecode, offset, length in header["columns"]:
            if expected.get(name) != typecode:
                raise TraceFormatError(
                    "unexpected compiled trace column %r:%r" % (name, typecode)
                )
            start = cursor + offset
            if start + length > len(view):
                raise TraceFormatError("truncated compiled trace blob")
            col = view[start : start + length].cast(typecode)
            views.append(col)
            columns[name] = col
        missing = set(expected) - set(columns)
        if missing:
            raise TraceFormatError(
                "compiled trace blob lacks columns: %s" % sorted(missing)
            )
        return cls(
            columns["ops"],
            columns["hosts"],
            columns["threads"],
            columns["file_ids"],
            columns["offsets"],
            columns["nblocks"],
            columns["start_blocks"],
            header["file_blocks"],
            header["warmup"],
            header.get("metadata", {}),
            _views=views,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompiledTrace":
        """Deserialize into *owning* columns (a copy; used for pickle
        round-trips and the disk-spool fallback)."""
        attached = cls.from_buffer(data)
        try:
            owned = cls(
                array("B", attached.ops),
                array("I", attached.hosts_col),
                array("I", attached.threads_col),
                array("I", attached.file_ids),
                array("Q", attached.offsets),
                array("I", attached.nblocks),
                array("Q", attached.start_blocks),
                attached.file_blocks,
                attached.warmup_records,
                attached.metadata,
            )
        finally:
            attached.release()
        return owned

    def release(self) -> None:
        """Release any memoryviews into an external buffer so the
        underlying shared-memory segment can be closed.  The trace must
        not be used afterwards.  No-op for owning (array) traces."""
        views, self._views = self._views, []
        for view in reversed(views):
            view.release()

    def __reduce__(self):
        # Pickle via the wire format: memoryview columns are not
        # picklable, and the flat blob is smaller than a pickled
        # object graph anyway.
        return (CompiledTrace.from_bytes, (self.to_bytes(),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledTrace):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CompiledTrace %d records, %d files, warmup=%d>" % (
            len(self),
            len(self.file_blocks),
            self.warmup_records,
        )


def compile_trace(trace: Trace) -> CompiledTrace:
    """Pack a :class:`Trace` into its columnar form, memoized per trace
    object (sweeps reuse one trace across dozens of points; like the
    fingerprint memo, this assumes traces are not mutated after use).
    """
    if isinstance(trace, CompiledTrace):
        return trace
    cached = trace.__dict__.get("_compiled_trace")
    if cached is not None:
        return cached
    ops = array("B")
    hosts = array("I")
    threads = array("I")
    file_ids = array("I")
    offsets = array("Q")
    nblocks = array("I")
    starts = array("Q")
    file_base = list(itertools.accumulate([0] + list(trace.file_blocks[:-1])))
    try:
        for record in trace.records:
            ops.append(1 if record.op is TraceOp.WRITE else 0)
            hosts.append(record.host)
            threads.append(record.thread)
            file_ids.append(record.file_id)
            offsets.append(record.offset)
            nblocks.append(record.nblocks)
            starts.append(file_base[record.file_id] + record.offset)
    except OverflowError as exc:
        raise TraceFormatError(
            "record field too large for the compiled representation: %s" % exc
        ) from exc
    compiled = CompiledTrace(
        ops,
        hosts,
        threads,
        file_ids,
        offsets,
        nblocks,
        starts,
        list(trace.file_blocks),
        trace.warmup_records,
        dict(trace.metadata),
    )
    trace.__dict__["_compiled_trace"] = compiled
    return compiled
