"""File-server ("filer") model.

The paper deliberately does not model the filer's internals: "we use a
simple model: a 'fast' latency for cache hits, a 'slow' latency for
misses, and a prefetch success rate that determines what fraction of
reads are fast.  (Which reads are fast is random.  Writes are buffered
and always fast.)"  §7.3 studies sensitivity to the prefetch rate.

:class:`Filer` implements that model as a parallel server (the paper
assumes "a high-performance filer with sophisticated read-ahead,
nonvolatile cache, and large server memory"); all queueing happens on
the network segments.
"""

from repro.filer.timing import FilerTiming
from repro.filer.server import Filer

__all__ = ["FilerTiming", "Filer"]
