"""Filer timing parameters (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._units import US
from repro.errors import ConfigError


@dataclass(frozen=True)
class FilerTiming:
    """Per-4KB-block service latencies of the file server.

    Table 1: fast read 92 µs, slow read 7952 µs, write 92 µs, and a 90 %
    fast-read (prefetch-success) rate.  §7.3 sweeps the rate between a
    pessimal 80 % and an optimistic 95 %.
    """

    fast_read_ns: int = 92 * US
    slow_read_ns: int = 7_952 * US
    write_ns: int = 92 * US
    fast_read_rate: float = 0.90

    def __post_init__(self) -> None:
        if min(self.fast_read_ns, self.slow_read_ns, self.write_ns) < 0:
            raise ConfigError("filer latencies must be non-negative")
        if not 0.0 <= self.fast_read_rate <= 1.0:
            raise ConfigError(
                "fast read rate must be in [0, 1], got %r" % (self.fast_read_rate,)
            )

    @classmethod
    def paper_default(cls) -> "FilerTiming":
        return cls()

    def with_prefetch_rate(self, rate: float) -> "FilerTiming":
        """The same timing with a different prefetch-success rate."""
        return replace(self, fast_read_rate=rate)

    @property
    def expected_read_ns(self) -> float:
        """Mean read service time implied by the fast-read rate."""
        return (
            self.fast_read_rate * self.fast_read_ns
            + (1.0 - self.fast_read_rate) * self.slow_read_ns
        )
