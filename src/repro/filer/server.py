"""The filer: a parallel server with fast/slow reads and buffered writes."""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.engine.simulation import Simulator
from repro.filer.timing import FilerTiming
from repro.obs.events import EventKind

_FILER_READ = EventKind.FILER_READ
_FILER_WRITE = EventKind.FILER_WRITE


class Filer:
    """The networked file server shared by all hosts.

    Reads are fast with probability ``timing.fast_read_rate`` (the
    prefetch/read-ahead success rate), slow otherwise; which reads are
    fast is random, drawn from the supplied RNG stream.  Writes land in
    the filer's nonvolatile cache and are always fast.

    The filer services any number of requests concurrently — the paper
    attributes all contention to the network and the client devices.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        timing: Optional[FilerTiming] = None,
        name: str = "filer",
    ) -> None:
        self._sim = sim
        self._rng = rng
        self.timing = timing or FilerTiming.paper_default()
        self.name = name
        # traffic counters
        self.fast_reads = 0
        self.slow_reads = 0
        self.writes = 0
        #: observability sink (an EventRecorder); None when tracing is
        #: off — the service paths then pay a single branch.
        self.obs = None

    def read_service_ns(self) -> int:
        """Charge one block read and return its service time.

        Non-generator twin of :meth:`read_block` for callers that fold
        the filer delay into their own process frame (the host stack's
        hot paths); draws from the same RNG stream at the same point, so
        fast/slow outcomes are identical either way.
        """
        if self._rng.random() < self.timing.fast_read_rate:
            self.fast_reads += 1
            service = self.timing.fast_read_ns
            fast = True
        else:
            self.slow_reads += 1
            service = self.timing.slow_read_ns
            fast = False
        obs = self.obs
        if obs is not None:
            obs.emit(
                self._sim.now, _FILER_READ, tier=self.name, dur=service,
                info={"fast": fast},
            )
        return service

    def write_service_ns(self) -> int:
        """Charge one block write and return its (always fast) service time."""
        self.writes += 1
        obs = self.obs
        if obs is not None:
            obs.emit(
                self._sim.now, _FILER_WRITE, tier=self.name, dur=self.timing.write_ns
            )
        return self.timing.write_ns

    def read_block(self) -> Iterator:
        """Process generator: service one 4 KB block read."""
        yield self.read_service_ns()

    def write_block(self) -> Iterator:
        """Process generator: service one 4 KB block write (always fast)."""
        yield self.write_service_ns()

    @property
    def reads(self) -> int:
        return self.fast_reads + self.slow_reads

    def observed_fast_rate(self) -> float:
        """Fraction of serviced reads that were fast (for validation)."""
        total = self.reads
        if total == 0:
            return 0.0
        return self.fast_reads / total

    def reset_counters(self) -> None:
        self.fast_reads = 0
        self.slow_reads = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Filer %s reads=%d writes=%d>" % (self.name, self.reads, self.writes)
