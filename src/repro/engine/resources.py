"""Contended resources for the simulation kernel.

:class:`Resource` is a FIFO semaphore: up to ``capacity`` holders at a
time, strict arrival-order granting.  The paper's network segments
("each segment can carry one packet at a time") are ``capacity=1``
resources; a flash device with limited internal parallelism is a
``capacity=k`` resource.

The idiomatic usage inside a process generator::

    yield resource.acquire()
    try:
        yield service_time
    finally:
        resource.release()

(The ``try/finally`` matters only for processes that can be interrupted;
the cache stack's I/O paths never are, so they use the plain form.)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.engine.events import Completion
from repro.engine.simulation import Simulator
from repro.errors import SimulationError


class Resource:
    """A FIFO semaphore with ``capacity`` concurrent holders.

    Tracks simple utilization statistics: total acquisitions, total
    time-weighted queue length, and busy time, which the simulator's
    results use to report network utilization.
    """

    __slots__ = (
        "_sim",
        "capacity",
        "name",
        "_in_use",
        "_queue",
        "total_acquisitions",
        "_busy_since",
        "busy_time",
    )

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1, got %d" % capacity)
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Completion] = deque()
        # statistics
        self.total_acquisitions = 0
        self._busy_since: Optional[int] = None
        self.busy_time = 0

    # --- core protocol ----------------------------------------------

    def acquire(self) -> Completion:
        """Request a slot; the returned completion fires when granted.

        The caller *must* later call :meth:`release` exactly once per
        granted acquire.
        """
        grant = Completion()
        if self._in_use < self.capacity:
            self._grant(grant)
        else:
            self._queue.append(grant)
        return grant

    def try_acquire(self) -> bool:
        """Uncontended fast path: grant a free slot synchronously.

        Returns True (slot granted, :meth:`release` owed) without
        allocating a :class:`Completion` or touching the event heap when
        a slot is free; False when the resource is at capacity, in which
        case the caller must fall back to :meth:`acquire` and wait.
        Identical semantics to an ``acquire()`` whose grant fires
        immediately — only the bookkeeping objects are skipped.
        """
        if self._in_use < self.capacity:
            if self._in_use == 0 and self._busy_since is None:
                self._busy_since = self._sim.now
            self._in_use += 1
            self.total_acquisitions += 1
            return True
        return False

    def release(self) -> None:
        """Release a previously granted slot, waking the next waiter."""
        if self._in_use <= 0:
            raise SimulationError("release() of %r without matching acquire" % self.name)
        self._in_use -= 1
        if self._queue:
            self._grant(self._queue.popleft())
        elif self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self._sim.now - self._busy_since
            self._busy_since = None

    def _grant(self, grant: Completion) -> None:
        if self._in_use == 0 and self._busy_since is None:
            self._busy_since = self._sim.now
        self._in_use += 1
        self.total_acquisitions += 1
        grant.fire(self)

    # --- introspection ----------------------------------------------

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquire requests still waiting."""
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of simulated time the resource has been non-idle."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self._sim.now - self._busy_since
        if self._sim.now == 0:
            return 0.0
        return busy / self._sim.now

    def use(self, service_time: int):
        """Generator helper: acquire, hold for ``service_time``, release.

        Use with ``yield from``::

            yield from link.use(packet_time)
        """
        if not self.try_acquire():
            yield self.acquire()
        yield service_time
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Resource %s %d/%d queue=%d>" % (
            self.name,
            self._in_use,
            self.capacity,
            len(self._queue),
        )
