"""One-shot completion events for the simulation kernel.

A :class:`Completion` is the kernel's only synchronization primitive:
a one-shot event that processes may ``yield`` to suspend until some
other process (or the kernel itself) fires it.  Firing delivers an
optional value, which becomes the result of the ``yield`` expression
in every waiting process.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.errors import SimulationError


class Completion:
    """A one-shot event carrying an optional value.

    Processes wait on a completion by yielding it; non-process code can
    observe it via :meth:`add_callback`.  A completion fires exactly
    once; firing twice raises :class:`SimulationError`.

    The kernel resumes waiters *through the event queue* (at the same
    simulated time), so wakeup order is deterministic: waiters resume
    in the order they subscribed.
    """

    __slots__ = ("fired", "value", "_waiters", "_callbacks")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: List[Any] = []  # Process objects
        self._callbacks: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters with ``value``.

        Waiters subscribed after the event has fired resume
        immediately (the event stays fired forever).
        """
        if self.fired:
            raise SimulationError("Completion fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for process in waiters:
            process._resume_soon(value)
        for callback in callbacks:
            callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires.

        If the event already fired, the callback runs synchronously.
        """
        if self.fired:
            callback(self.value)
        else:
            self._callbacks.append(callback)

    def _subscribe(self, process: Any) -> None:
        """Called by the kernel when a process yields this completion."""
        if self.fired:
            process._resume_soon(self.value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return "<Completion %s waiters=%d>" % (state, len(self._waiters))


def all_of(completions: List[Completion]) -> Completion:
    """Return a completion that fires once every input completion has fired.

    The combined completion's value is the list of individual values, in
    input order.  An empty list yields a completion that is *already
    fired* when this function returns (there is nothing to wait for, and
    the vacuous conjunction holds immediately): its value is ``[]``, a
    process yielding it resumes without suspending, and callbacks added
    to it run synchronously.  A single-element list behaves exactly like
    waiting on that completion directly, with the value wrapped in a
    one-element list.
    """
    combined = Completion()
    remaining = len(completions)
    values: List[Any] = [None] * remaining
    if remaining == 0:
        combined.fire([])
        return combined

    def make_collector(index: int) -> Callable[[Any], None]:
        def collect(value: Any) -> None:
            nonlocal remaining
            values[index] = value
            remaining -= 1
            if remaining == 0:
                combined.fire(values)

        return collect

    for i, completion in enumerate(completions):
        completion.add_callback(make_collector(i))
    return combined
