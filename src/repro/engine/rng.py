"""Deterministic, named random-number streams.

Trace generation and the simulator's stochastic choices (e.g. whether a
filer read hits the prefetch cache) each draw from their own stream so
that changing one component's consumption pattern never perturbs
another's.  Streams are derived from a master seed plus a name via
BLAKE2, so the mapping is stable across runs and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple, Union

StreamKey = Tuple[Union[str, int], ...]


def derive_seed(master_seed: int, *name_parts: Union[str, int]) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name.

    >>> derive_seed(1, "filer") != derive_seed(1, "tracegen")
    True
    >>> derive_seed(1, "filer") == derive_seed(1, "filer")
    True
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(master_seed).encode("utf-8"))
    for part in name_parts:
        hasher.update(b"\x00")
        hasher.update(str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


class RngStreams:
    """A factory for independent named :class:`random.Random` streams.

    >>> streams = RngStreams(42)
    >>> a = streams.stream("filer", 0)
    >>> b = streams.stream("filer", 1)
    >>> a is streams.stream("filer", 0)   # streams are cached by name
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: Dict[StreamKey, random.Random] = {}

    def stream(self, *name_parts: Union[str, int]) -> random.Random:
        """Return the stream for ``name_parts``, creating it on first use."""
        key: StreamKey = tuple(name_parts)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, *name_parts))
            self._streams[key] = rng
        return rng
