"""The compiled simulation kernel: table-driven dispatch, no coroutines.

The object kernel runs each (host, thread) application stream and every
cache-stack I/O path as a chain of nested generators; every resume
traverses the whole ``yield from`` delegation chain and every subroutine
return raises ``StopIteration``.  With compiled traces the *data* path
is already columnar (PR 5/7), so that per-request software overhead is
the replay bottleneck — exactly the framing of the host-stack survey in
PAPERS.md.

This module flattens the per-thread state machines (issue → RAM/flash
lookup → net → filer queue/service → fill/writeback) into table-driven
dispatch: each concurrent activity is a :class:`_Task` holding an
explicit stack of *frames* (small lists whose slot 0 is an integer
state code), and one closure per host executes frames in a single
``while`` loop branching on those codes.  No generators, no ``Process``
objects, no heap entries for straight-line service delays — a delay
that the object kernel would fast-forward is fast-forwarded *inside*
the dispatch loop, and only genuinely concurrent waits (wire queueing,
filer contention, syncer periods, delayed flushes) touch the event
heap.

Bit-identicality contract (the drift gates enforce it):

* Every heap push in the object kernel corresponds to exactly one heap
  push here, at the same simulated time, in the same order — sequence
  numbers are allocated identically, so ties break identically.
* Every stateful call (store lookups, RNG draws, packet charges,
  directory notifications, admission/cleaning hooks, metric records)
  happens at the same simulated instant in the same order as the
  generator code in :mod:`repro.core.host` / :mod:`repro.core.machine`.
  Each state below is a transcription of a specific suspension point
  of those generators; when editing one side, edit the other.

Interoperation: background machinery that stays generator-based — the
cleaning controllers' loops, invalidation-traffic packets — runs
unchanged as ``Process`` objects on the same heap; ``_Task`` exposes
the same ``_resume_soon`` wakeup surface, so completions and resources
treat both alike.

Eligibility is conservative (see :func:`kernel_eligible`); ineligible
configurations fall back to the object kernel, which remains the
reference implementation.
"""

from __future__ import annotations

import gc
import os
from heapq import heappop, heappush

from repro.cache.block import Medium
from repro.cache.policy import LRUPolicy
from repro.core.architectures import Architecture
from repro.core.metrics import LatencyStat
from repro.core.policies import PolicyKind
from repro.net.packet import Packet

#: Histogram geometry of :class:`LatencyStat`, bound once so the fused
#: issuer loop can inline ``record`` (same closed-form bucket index).
_LS_BASE = LatencyStat._BUCKET_BASE_NS
_LS_LAST = LatencyStat._N_BUCKETS - 1

#: Set to ``0`` to force the object (generator) kernel even when the
#: compiled kernel is eligible.
COMPILE_KERNEL_ENV = "REPRO_COMPILE_KERNEL"

_FALSEY = ("0", "false", "no", "off")

_PKT_REQUEST = Packet.request()
_PKT_DATA = Packet.data_block()
_PKT_ACK = Packet.ack()

_RAM = Medium.RAM
_FLASH = Medium.FLASH

_SYNC = PolicyKind.SYNC
_ASYNC = PolicyKind.ASYNC
_DELAYED = PolicyKind.DELAYED
_TRICKLE = PolicyKind.TRICKLE


class _Task:
    """One concurrent activity in the compiled kernel.

    The twin of :class:`repro.engine.simulation.Process`: lives in the
    same ``(time, seq)`` heap, blocks on the same ``Completion``
    objects, and obeys the same wakeup discipline — ``_resume_soon``
    is byte-for-byte the Process version, which is what lets resources
    and completions resume a task without knowing what it is.  Instead
    of a generator, it carries an explicit frame stack; ``execute`` is
    the owning host's dispatch closure.
    """

    __slots__ = ("sim", "frames", "ret", "execute", "_blocked")

    def __init__(self, sim, execute) -> None:
        self.sim = sim
        self.frames = []
        self.ret = None
        self.execute = execute
        self._blocked = False

    def _resume_soon(self, value) -> None:
        """Schedule this task to resume at the current simulated time."""
        if self._blocked:
            self._blocked = False
            self.sim.blocked_processes -= 1
        sim = self.sim
        sim._seq += 1
        heappush(sim._heap, (sim.now, sim._seq, self, value))


# --- state codes -----------------------------------------------------
#
# One integer per suspension point / continuation of the generators in
# host.py and machine.py.  Grouped by frame type; the dispatch chains
# below test the hot issuer states first.

# Issuer (one frame per application thread; slots:
#  [0]=state [1]=warmup iter (None once drained) [2]=measured iter
#  [3]=op [4]=start [5]=nblocks [6]=block index [7]=request start
#  [8]=block start [9]=measured flag [10]=current block [11]=medium)
ISS_ISSUE = 0
ISS_BLOCK_DONE = 1
ISS_NEXT_ROW = 2
ISS_W_AFTER_IR = 3
ISS_RHIT_AFTER_PROMOTE = 4
ISS_RFHIT_AFTER_DEV = 5
ISS_RMISS_AFTER_FR = 6
ISS_RMISS_AFTER_IF = 7
ISS_RNOFLASH_AFTER_FR = 8
ISS_W_HIT_AFTER_DEV = 9
ISS_W_AFTER_INSTALL = 10

#: Generic "pop the frame and return None to the caller" continuation.
RET_NONE = 11

# Filer round trip (_filer_read/_filer_write; slots:
#  [1]=up packet [2]=service fn [3]=down packet [4]=wire [5]=wire time)
NET_ENTER = 12
NET_ACQ_UP = 13
NET_REL_UP = 14
NET_AFTER_SERVICE = 15
NET_ACQ_DOWN = 16
NET_REL_DOWN = 17

# _install_ram (slots: [1]=block [2]=dirty [3]=victim block)
IR_ENTER = 18
IR_EVICT = 19
IR_AFTER_WB = 20

# _install_flash (slots: [1]=block [2]=dirty)
IF_ENTER = 21
IF_AFTER_ROOM = 22
IF_AFTER_WRITE = 23

# _make_flash_room (slots: [1]=incoming block [2]=victim entry)
MFR_LOOP = 24
MFR_AFTER_FW = 25
MFR_AFTER_RAMWB = 26

# _write_into_flash (slots: [1]=block)
WIF_ENTER = 27
WIF_AFTER_IF = 28

# lookaside _writeback_ram_data (slots: [1]=block)
WBR_ENTER = 29
WBR_LA_AFTER_FW = 30

# _flush_ram_block / _flush_flash_block (slots: [1]=block)
FRB_ENTER = 31
FF_ENTER = 32

# layered _syncer_loop (slots: [1]=period [2]=store [3]=flush state
#  [4]=trickle flag)
SY_LOOP = 33
SY_TICK = 34

# _after (slots: [1]=delay)
AF_SLEEP = 35
AF_DONE = 36

# unified _install (slots: [1]=block [2]=dirty [3]=victim entry
#  [4]=medium)
UIN_ENTER = 37
UIN_EVICT = 38
UIN_AFTER_FW = 39
UIN_AFTER_WRITE = 40

# unified _flush_block (slots: [1]=block)
UFB_ENTER = 41

# unified _syncer_loop (slots: [1]=period [2]=medium [3]=trickle flag)
USY_LOOP = 42
USY_TICK = 43


class _HostExecutor:
    """Per-host handle: the dispatch closure plus spawn helpers."""

    __slots__ = ("execute", "spawn", "spawn_issuer", "start_syncers")

    def __init__(self, execute, spawn, spawn_issuer, start_syncers) -> None:
        self.execute = execute
        self.spawn = spawn
        self.spawn_issuer = spawn_issuer
        self.start_syncers = start_syncers


def kernel_eligible(system) -> bool:
    """Whether the compiled kernel replays this system bit-identically.

    Conservative: anything the flattened states do not transcribe —
    observability hooks, restart/recovery (a time-varying
    ``flash_online_at``), latency timelines, channel-limited flash
    devices (generator queueing), the exclusive/migration architecture
    — falls back to the object kernel.
    """
    if os.environ.get(COMPILE_KERNEL_ENV, "").strip().lower() in _FALSEY:
        return False
    if system.obs is not None:
        return False
    if system.restart is not None:
        return False
    if system._timeline_bucket_ns is not None:
        return False
    if system.config.architecture not in (
        Architecture.NAIVE,
        Architecture.LOOKASIDE,
        Architecture.UNIFIED,
    ):
        return False
    directory_timing = system.config.timing.directory
    if directory_timing.lookup_ns or directory_timing.invalidate_ns:
        # Modeled directory latency inserts stalls on the write path
        # that the flattened state tables do not transcribe.
        return False
    if system.directory.conflict_watch is not None:
        # A parallel replay worker watching for cross-group conflicts
        # needs every copy acquisition to flow through the directory's
        # note_copy hook; the kernel fast paths parts of that
        # bookkeeping, so conflict-watched replays stay on the
        # generator kernel.
        return False
    for device in system.flash_devices:
        if device is not None and not device.unlimited_parallelism:
            return False
    return True


def replay_compiled_kernel(system, trace) -> None:
    """Compiled-kernel twin of ``System._replay_compiled`` (keep in
    sync): same spawn order, same warmup accounting, bit-identical
    results — but the application threads, cache-stack I/O paths, and
    syncers run as table-driven tasks instead of generators."""
    plan = trace.issuer_plan()
    system._blocks_until_measurement = trace.warmup_blocks()
    if system._blocks_until_measurement == 0:
        system._begin_measurement()
    system._active_threads = len(plan)
    executors = {}

    def executor_for(host_id):
        ctx = executors.get(host_id)
        if ctx is None:
            stack = system.hosts[host_id]
            if system.config.architecture is Architecture.UNIFIED:
                ctx = _unified_executor(system, stack)
            else:
                ctx = _layered_executor(
                    system,
                    stack,
                    naive=system.config.architecture is Architecture.NAIVE,
                )
            executors[host_id] = ctx
        return ctx

    for host_id, _thread_id, warmup_rows, measured_rows in plan:
        if host_id >= system.n_hosts:
            raise ValueError(
                "trace references host %d but the system has %d hosts"
                % (host_id, system.n_hosts)
            )
        executor_for(host_id).spawn_issuer(warmup_rows, measured_rows)
    for host in system.hosts:
        host.keep_running = lambda: system._active_threads > 0
        executor_for(host.host_id).start_syncers()
    sim = system.sim
    heap = sim._heap
    # Same rationale as the object compiled path: the run's allocations
    # are acyclic, so pause the cycle collector for the duration.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    sim._running = True
    try:
        # The mixed dispatch loop: tasks execute through their host's
        # closure; generator processes (cleaning controllers,
        # invalidation packets) step exactly as the object kernel's
        # bounded-run path would.  Heap tuples never compare beyond the
        # sequence number, so the two kinds coexist in one heap.
        while heap:
            when, _seq, entry, value = heappop(heap)
            sim.now = when
            if entry.__class__ is _Task:
                entry.execute(entry, value)
            else:
                entry._step(value)
    finally:
        sim._running = False
        if gc_was_enabled:
            gc.enable()
    if system.invariants is not None:
        system.invariants.final()


def _layered_executor(system, stack, naive) -> _HostExecutor:
    """Build the dispatch closure for one naive/lookaside host.

    Every loop-invariant attribute is hoisted into the closure; each
    ``elif`` arm below transcribes one suspension point of the
    generators in :mod:`repro.core.host` (the comments name them).
    """
    sim = system.sim
    heap = sim._heap
    ram = stack.ram
    flash = stack.flash
    device = stack.flash_device
    charge = stack.segment.charge
    read_service = stack.filer.read_service_ns
    write_service = stack.filer.write_service_ns
    on_block_write = stack.directory.on_block_write
    note_present = stack._note_present
    note_maybe_gone = stack._note_maybe_gone
    host_id = stack.host_id
    admission = stack._admission
    cleaning = stack._cleaning
    has_ram = stack._has_ram
    ram_read_ns = stack._ram_read_ns
    ram_write_ns = stack._ram_write_ns
    config = stack.config
    ram_policy = config.ram_policy
    flash_policy = config.flash_policy
    ram_kind = ram_policy.kind
    flash_kind = flash_policy.kind
    ram_delay = ram_policy.flush_delay_ns if ram_kind is _DELAYED else 0
    flash_delay = flash_policy.flush_delay_ns if flash_kind is _DELAYED else 0
    if device is not None:
        dev_read = device.read_service_ns
        dev_write = device.write_service_ns
        trim = device.trim_block
    else:
        dev_read = dev_write = trim = None

    fleet = system.metrics
    host_m = system.host_metrics[host_id]
    fleet_read = fleet.read_latency.record
    fleet_write = fleet.write_latency.record
    host_read = host_m.read_latency.record
    host_write = host_m.write_latency.record
    req_read = fleet.read_request_latency.record
    req_write = fleet.write_request_latency.record
    record_completed = system._record_completed
    check_invariants = system.invariants is not None

    # Fused-loop bindings: the hot issuer arm reads these internals
    # directly instead of calling ``BlockStore.get``/``mark_dirty`` and
    # ``LatencyStat.record``.  All are construction-stable objects —
    # the entry dict, the stats counters, the dirty set and each
    # latency collector (histogram list included) reset in place at the
    # measurement boundary and are never replaced mid-run.
    if has_ram:
        ram_entries = ram._entries
        ram_stats = ram.stats
        ram_touch = ram._touch
        ram_dirty_add = ram._dirty.add
    else:
        ram_entries = ram_stats = ram_touch = ram_dirty_add = None
    ram_stepped = (
        ram_kind is _SYNC or ram_kind is _ASYNC or ram_kind is _DELAYED
    )
    fleet_rl = fleet.read_latency
    fleet_wl = fleet.write_latency
    host_rl = host_m.read_latency
    host_wl = host_m.write_latency
    req_rl = fleet.read_request_latency
    req_wl = fleet.write_request_latency
    directory = stack.directory
    dir_shards = directory._shards
    dir_shard_mask = directory._shard_mask
    # Accumulated measured-write counts flush into shard 0; only the
    # merged totals (summing properties) are signature-visible.
    dir_shard0 = dir_shards[0]
    writer_bit = 1 << host_id
    # Inline the LRU touch only while the store's ``_touch`` is still
    # the bare policy method — a ref ledger rebinds it at setup time,
    # and non-LRU policies keep the generic call.
    ram_lru_order = ram_lru_pop = None
    if (
        has_ram
        and type(ram._policy) is LRUPolicy
        and ram._touch == ram._policy.touch
    ):
        ram_lru_order = ram._policy._order
        ram_lru_pop = ram_lru_order.pop

    def _fr_frame():
        return [NET_ENTER, _PKT_REQUEST, read_service, _PKT_DATA, None, 0]

    def _fw_frame():
        return [NET_ENTER, _PKT_DATA, write_service, _PKT_ACK, None, 0]

    if naive:
        # NaiveStack._writeback_ram_data: into flash when present.
        def wbr_frame(block):
            if flash is not None:
                return [WIF_ENTER, block]
            return _fw_frame()
    else:
        # LookasideStack._writeback_ram_data: filer first, then flash.
        def wbr_frame(block):
            return [WBR_ENTER, block]

    def spawn(frames):
        # Twin of Simulator.spawn: one sequence number, scheduled now.
        task = _Task(sim, execute)
        task.frames = frames
        sim._seq += 1
        heappush(heap, (sim.now, sim._seq, task, None))

    def spawn_issuer(warmup_rows, measured_rows):
        spawn(
            [[
                ISS_NEXT_ROW, iter(warmup_rows), iter(measured_rows),
                0, 0, 0, 0, 0, 0, False, 0, None,
            ]]
        )

    def start_syncers():
        # Twin of LayeredStack.start_syncers (same spawn order).
        if ram_policy.has_syncer and has_ram:
            spawn([[SY_LOOP, ram_policy.period_ns, ram, FRB_ENTER,
                    ram_kind is _TRICKLE]])
        if cleaning is not None:
            cleaning.start()
            return
        if flash_policy.has_syncer and flash is not None:
            spawn([[SY_LOOP, flash_policy.period_ns, flash, FF_ENTER,
                    flash_kind is _TRICKLE]])

    def execute(
        task,
        _value,
        # Default-argument binding: every state code and hot helper
        # becomes a LOAD_FAST local inside the dispatch chain instead
        # of a global lookup per comparison.  Callers pass only
        # (task, value); the defaults are never overridden.
        ISS_ISSUE=ISS_ISSUE,
        ISS_BLOCK_DONE=ISS_BLOCK_DONE,
        ISS_NEXT_ROW=ISS_NEXT_ROW,
        ISS_W_AFTER_IR=ISS_W_AFTER_IR,
        ISS_RHIT_AFTER_PROMOTE=ISS_RHIT_AFTER_PROMOTE,
        ISS_RFHIT_AFTER_DEV=ISS_RFHIT_AFTER_DEV,
        ISS_RMISS_AFTER_FR=ISS_RMISS_AFTER_FR,
        ISS_RMISS_AFTER_IF=ISS_RMISS_AFTER_IF,
        ISS_RNOFLASH_AFTER_FR=ISS_RNOFLASH_AFTER_FR,
        ISS_W_HIT_AFTER_DEV=ISS_W_HIT_AFTER_DEV,
        ISS_W_AFTER_INSTALL=ISS_W_AFTER_INSTALL,
        RET_NONE=RET_NONE,
        NET_ENTER=NET_ENTER,
        NET_ACQ_UP=NET_ACQ_UP,
        NET_REL_UP=NET_REL_UP,
        NET_AFTER_SERVICE=NET_AFTER_SERVICE,
        NET_ACQ_DOWN=NET_ACQ_DOWN,
        NET_REL_DOWN=NET_REL_DOWN,
        IR_ENTER=IR_ENTER,
        IR_EVICT=IR_EVICT,
        IR_AFTER_WB=IR_AFTER_WB,
        IF_ENTER=IF_ENTER,
        IF_AFTER_ROOM=IF_AFTER_ROOM,
        IF_AFTER_WRITE=IF_AFTER_WRITE,
        MFR_LOOP=MFR_LOOP,
        MFR_AFTER_FW=MFR_AFTER_FW,
        MFR_AFTER_RAMWB=MFR_AFTER_RAMWB,
        WIF_ENTER=WIF_ENTER,
        WIF_AFTER_IF=WIF_AFTER_IF,
        WBR_ENTER=WBR_ENTER,
        WBR_LA_AFTER_FW=WBR_LA_AFTER_FW,
        FRB_ENTER=FRB_ENTER,
        FF_ENTER=FF_ENTER,
        SY_LOOP=SY_LOOP,
        SY_TICK=SY_TICK,
        AF_SLEEP=AF_SLEEP,
        AF_DONE=AF_DONE,
        UIN_ENTER=UIN_ENTER,
        UIN_EVICT=UIN_EVICT,
        UIN_AFTER_FW=UIN_AFTER_FW,
        UIN_AFTER_WRITE=UIN_AFTER_WRITE,
        UFB_ENTER=UFB_ENTER,
        USY_LOOP=USY_LOOP,
        USY_TICK=USY_TICK,
        _RAM=_RAM,
        _FLASH=_FLASH,
        _SYNC=_SYNC,
        _ASYNC=_ASYNC,
        _DELAYED=_DELAYED,
        heappush=heappush,
        ram_entries=ram_entries,
        ram_stats=ram_stats,
        ram_touch=ram_touch,
        ram_dirty_add=ram_dirty_add,
        ram_stepped=ram_stepped,
        fleet_rl=fleet_rl,
        fleet_wl=fleet_wl,
        host_rl=host_rl,
        host_wl=host_wl,
        req_rl=req_rl,
        req_wl=req_wl,
        LS_BASE=_LS_BASE,
        LS_BASE1=_LS_BASE - 1,
        LS_LAST=_LS_LAST,
        dir_shards=dir_shards,
        dir_shard_mask=dir_shard_mask,
        dir_shard0=dir_shard0,
        writer_bit=writer_bit,
        ram_lru_order=ram_lru_order,
        ram_lru_pop=ram_lru_pop,
    ):
        frames = task.frames
        while True:
            f = frames[-1]
            s = f[0]
            # ---- issuer --------------------------------------------
            if s < 2:  # ISS_ISSUE (0) / ISS_BLOCK_DONE (1), fused
                # Fused straight-line loop: consecutive RAM-resident
                # blocks run entirely inside this arm.  Frame slots
                # stay in locals; ``sim.now`` lives in ``now`` and is
                # written back only when a non-inlined call could
                # observe it or the arm exits; the store hit path, the
                # LRU touch and the directory write check are inlined;
                # and per-block metric records collapse into run-length
                # accumulators (consecutive hit blocks share one
                # constant latency per mode), flushed once on exit.
                # Accumulated state is commutative integer arithmetic
                # on objects no other task reads mid-run, so flushed
                # totals are bit-identical to per-block updates; every
                # order-sensitive effect (RNG draws, store mutations,
                # the measurement boundary) happens at the same instant
                # in the same order as the generic arms this replaces.
                write = f[3]
                nb = f[5]
                idx = f[6]
                block_start = f[8]
                measured = f[9]
                blk = f[10]
                now = sim.now
                # No other task runs between this arm's suspensions,
                # so the earliest pending event is a loop invariant —
                # refreshed only after calls that may schedule work.
                horizon = heap[0][0] if heap else None
                ar_lat = aw_lat = -1          # run-length latency accs
                ar_n = aw_n = 0
                acc_lk = acc_ht = acc_ms = 0  # ram store counters
                acc_dw = 0                    # directory write counter
                # Exit protocol: set one action and break; the tail
                # flushes every accumulator exactly once, then acts.
                bail_push = -1
                bail_frame = None
                bail_ret = False
                skip_issue = s  # resumed after a delay: bookkeep first
                while True:
                    if skip_issue:
                        skip_issue = 0
                    elif write:
                        # write_block: directory first, then RAM tier.
                        # on_block_write inlined — the measured-write
                        # counter accumulates and the no-remote-copy
                        # case short-circuits; remote copies take the
                        # real call (which may schedule invalidation
                        # traffic, hence the horizon refresh).
                        holders = dir_shards[blk & dir_shard_mask].holders.get(blk)
                        if not holders or holders == writer_bit:
                            if measured:
                                acc_dw += 1
                        else:
                            if acc_dw:
                                dir_shard0.block_writes += acc_dw
                                acc_dw = 0
                            sim.now = now
                            on_block_write(host_id, blk, measured)
                            horizon = heap[0][0] if heap else None
                        if not has_ram:
                            sim.now = now
                            f[6] = idx
                            f[8] = block_start
                            f[10] = blk
                            f[0] = ISS_BLOCK_DONE
                            if flash is not None:
                                bail_frame = [WIF_ENTER, blk]
                            else:
                                bail_frame = _fw_frame()
                            break
                        existing = ram_entries.get(blk)
                        if existing is None:
                            sim.now = now
                            f[6] = idx
                            f[8] = block_start
                            f[10] = blk
                            f[0] = ISS_W_AFTER_IR
                            bail_frame = [IR_ENTER, blk, True, 0]
                            break
                        # _install_ram refresh hit: ram.get(blk) then
                        # ram.mark_dirty(blk), inlined.
                        acc_lk += 1
                        acc_ht += 1
                        if ram_lru_pop is None:
                            ram_touch(blk)
                        else:
                            ram_lru_order[blk] = ram_lru_pop(blk)
                        existing.dirty = True
                        ram_dirty_add(blk)
                        when = now + ram_write_ns
                        if ram_stepped:
                            # sync/async/delayed policies take the
                            # ISS_W_AFTER_IR arm after the delay.
                            f[6] = idx
                            f[8] = block_start
                            f[10] = blk
                            f[0] = ISS_W_AFTER_IR
                            if when > now and (
                                horizon is None or when < horizon
                            ):
                                sim.now = when
                                break
                            sim.now = now
                            bail_push = when
                            break
                        if when > now and (horizon is None or when < horizon):
                            now = when
                        else:
                            sim.now = now
                            f[6] = idx
                            f[8] = block_start
                            f[10] = blk
                            f[0] = ISS_BLOCK_DONE
                            bail_push = when
                            break
                    else:
                        # read_block down to the first suspension.
                        entry = None
                        if has_ram:
                            acc_lk += 1
                            entry = ram_entries.get(blk)
                        if entry is None:
                            if has_ram:
                                acc_ms += 1
                            sim.now = now
                            f[6] = idx
                            f[8] = block_start
                            f[10] = blk
                            if flash is not None and (
                                now >= stack.flash_online_at
                            ):
                                fentry = flash.get(blk)
                                if fentry is not None:
                                    f[0] = ISS_RFHIT_AFTER_DEV
                                    when = now + dev_read(blk)
                                    if when > now and (
                                        horizon is None or when < horizon
                                    ):
                                        sim.now = when
                                        break
                                    bail_push = when
                                    break
                                f[0] = ISS_RMISS_AFTER_FR
                                bail_frame = _fr_frame()
                                break
                            f[0] = ISS_RNOFLASH_AFTER_FR
                            bail_frame = _fr_frame()
                            break
                        acc_ht += 1
                        if ram_lru_pop is None:
                            ram_touch(blk)
                        else:
                            ram_lru_order[blk] = ram_lru_pop(blk)
                        if admission is not None:
                            sim.now = now
                            if (
                                admission.promote_on_hit(ram.ref_count(blk))
                                and flash is not None
                                and now >= stack.flash_online_at
                                and flash.peek(blk) is None
                            ):
                                f[6] = idx
                                f[8] = block_start
                                f[10] = blk
                                f[0] = ISS_RHIT_AFTER_PROMOTE
                                bail_frame = [IF_ENTER, blk, False]
                                break
                        # Pure RAM hit: the replay fast path.
                        when = now + ram_read_ns
                        if when > now and (horizon is None or when < horizon):
                            now = when
                        else:
                            sim.now = now
                            f[6] = idx
                            f[8] = block_start
                            f[10] = blk
                            f[0] = ISS_BLOCK_DONE
                            bail_push = when
                            break
                    # -- block bookkeeping (was ISS_BLOCK_DONE) ------
                    if measured:
                        lat = now - block_start
                        if write:
                            if lat == aw_lat:
                                aw_n += 1
                            else:
                                if aw_n:
                                    q = (aw_lat + LS_BASE1) // LS_BASE
                                    i = (q - 1).bit_length() if q > 1 else 0
                                    if i > LS_LAST:
                                        i = LS_LAST
                                    st = fleet_wl
                                    st.count += aw_n
                                    st.total_ns += aw_lat * aw_n
                                    mn = st.min_ns
                                    if mn is None or aw_lat < mn:
                                        st.min_ns = aw_lat
                                    if aw_lat > st.max_ns:
                                        st.max_ns = aw_lat
                                    st._buckets[i] += aw_n
                                    sk = st.sketch
                                    if sk is not None:
                                        for _r in range(aw_n):
                                            sk.record(aw_lat)
                                    fleet.blocks_written += aw_n
                                    st = host_wl
                                    st.count += aw_n
                                    st.total_ns += aw_lat * aw_n
                                    mn = st.min_ns
                                    if mn is None or aw_lat < mn:
                                        st.min_ns = aw_lat
                                    if aw_lat > st.max_ns:
                                        st.max_ns = aw_lat
                                    st._buckets[i] += aw_n
                                    sk = st.sketch
                                    if sk is not None:
                                        for _r in range(aw_n):
                                            sk.record(aw_lat)
                                    host_m.blocks_written += aw_n
                                    aw_n = 0
                                aw_lat = lat
                                aw_n = 1
                        else:
                            if lat == ar_lat:
                                ar_n += 1
                            else:
                                if ar_n:
                                    q = (ar_lat + LS_BASE1) // LS_BASE
                                    i = (q - 1).bit_length() if q > 1 else 0
                                    if i > LS_LAST:
                                        i = LS_LAST
                                    st = fleet_rl
                                    st.count += ar_n
                                    st.total_ns += ar_lat * ar_n
                                    mn = st.min_ns
                                    if mn is None or ar_lat < mn:
                                        st.min_ns = ar_lat
                                    if ar_lat > st.max_ns:
                                        st.max_ns = ar_lat
                                    st._buckets[i] += ar_n
                                    sk = st.sketch
                                    if sk is not None:
                                        for _r in range(ar_n):
                                            sk.record(ar_lat)
                                    fleet.blocks_read += ar_n
                                    st = host_rl
                                    st.count += ar_n
                                    st.total_ns += ar_lat * ar_n
                                    mn = st.min_ns
                                    if mn is None or ar_lat < mn:
                                        st.min_ns = ar_lat
                                    if ar_lat > st.max_ns:
                                        st.max_ns = ar_lat
                                    st._buckets[i] += ar_n
                                    sk = st.sketch
                                    if sk is not None:
                                        for _r in range(ar_n):
                                            sk.record(ar_lat)
                                    host_m.blocks_read += ar_n
                                    ar_n = 0
                                ar_lat = lat
                                ar_n = 1
                    idx += 1
                    if idx < nb:
                        blk += 1
                        block_start = now
                        continue
                    # -- request bookkeeping + next row --------------
                    if measured:
                        lat = now - f[7]
                        st = req_wl if write else req_rl
                        st.count += 1
                        st.total_ns += lat
                        mn = st.min_ns
                        if mn is None or lat < mn:
                            st.min_ns = lat
                        if lat > st.max_ns:
                            st.max_ns = lat
                        q = (lat + LS_BASE1) // LS_BASE
                        i = (q - 1).bit_length() if q > 1 else 0
                        if i > LS_LAST:
                            i = LS_LAST
                        st._buckets[i] += 1
                        if st.sketch is not None:
                            st.sketch.record(lat)
                    if check_invariants or system._measurement_started_at is None:
                        # Flush the store counters before the
                        # measurement boundary can reset them in place.
                        if acc_lk:
                            ram_stats.lookups += acc_lk
                            acc_lk = 0
                        if acc_ht:
                            ram_stats.hits += acc_ht
                            acc_ht = 0
                        if acc_ms:
                            ram_stats.misses += acc_ms
                            acc_ms = 0
                        sim.now = now
                        record_completed(nb)
                        horizon = heap[0][0] if heap else None
                    it = f[1]
                    if it is not None:
                        row = next(it, None)
                        if row is None:
                            f[1] = None
                            f[9] = measured = True
                            row = next(f[2], None)
                    else:
                        row = next(f[2], None)
                    if row is None:
                        sim.now = now
                        system._active_threads -= 1
                        frames.pop()
                        if frames:
                            break
                        bail_ret = True
                        break
                    write, start, nb = row
                    f[3] = write
                    f[4] = start
                    f[5] = nb
                    idx = 0
                    blk = start
                    f[7] = now
                    block_start = now
                # -- fused-loop exit: flush once, then act -----------
                if ar_n:
                    q = (ar_lat + LS_BASE1) // LS_BASE
                    i = (q - 1).bit_length() if q > 1 else 0
                    if i > LS_LAST:
                        i = LS_LAST
                    st = fleet_rl
                    st.count += ar_n
                    st.total_ns += ar_lat * ar_n
                    mn = st.min_ns
                    if mn is None or ar_lat < mn:
                        st.min_ns = ar_lat
                    if ar_lat > st.max_ns:
                        st.max_ns = ar_lat
                    st._buckets[i] += ar_n
                    sk = st.sketch
                    if sk is not None:
                        for _r in range(ar_n):
                            sk.record(ar_lat)
                    fleet.blocks_read += ar_n
                    st = host_rl
                    st.count += ar_n
                    st.total_ns += ar_lat * ar_n
                    mn = st.min_ns
                    if mn is None or ar_lat < mn:
                        st.min_ns = ar_lat
                    if ar_lat > st.max_ns:
                        st.max_ns = ar_lat
                    st._buckets[i] += ar_n
                    sk = st.sketch
                    if sk is not None:
                        for _r in range(ar_n):
                            sk.record(ar_lat)
                    host_m.blocks_read += ar_n
                    ar_n = 0
                if aw_n:
                    q = (aw_lat + LS_BASE1) // LS_BASE
                    i = (q - 1).bit_length() if q > 1 else 0
                    if i > LS_LAST:
                        i = LS_LAST
                    st = fleet_wl
                    st.count += aw_n
                    st.total_ns += aw_lat * aw_n
                    mn = st.min_ns
                    if mn is None or aw_lat < mn:
                        st.min_ns = aw_lat
                    if aw_lat > st.max_ns:
                        st.max_ns = aw_lat
                    st._buckets[i] += aw_n
                    sk = st.sketch
                    if sk is not None:
                        for _r in range(aw_n):
                            sk.record(aw_lat)
                    fleet.blocks_written += aw_n
                    st = host_wl
                    st.count += aw_n
                    st.total_ns += aw_lat * aw_n
                    mn = st.min_ns
                    if mn is None or aw_lat < mn:
                        st.min_ns = aw_lat
                    if aw_lat > st.max_ns:
                        st.max_ns = aw_lat
                    st._buckets[i] += aw_n
                    sk = st.sketch
                    if sk is not None:
                        for _r in range(aw_n):
                            sk.record(aw_lat)
                    host_m.blocks_written += aw_n
                    aw_n = 0
                if acc_lk:
                    ram_stats.lookups += acc_lk
                if acc_ht:
                    ram_stats.hits += acc_ht
                if acc_ms:
                    ram_stats.misses += acc_ms
                if acc_dw:
                    dir_shard0.block_writes += acc_dw
                if bail_push >= 0:
                    sim._seq += 1
                    heappush(heap, (bail_push, sim._seq, task, None))
                    return
                if bail_frame is not None:
                    frames.append(bail_frame)
                elif bail_ret:
                    return
                continue
            elif s == ISS_NEXT_ROW:
                it = f[1]
                if it is not None:
                    row = next(it, None)
                    if row is None:
                        f[1] = None
                        f[9] = True
                        row = next(f[2], None)
                else:
                    row = next(f[2], None)
                if row is None:
                    system._active_threads -= 1
                    frames.pop()
                    if frames:
                        continue
                    return
                f[3], f[4], f[5] = row
                f[6] = 0
                f[10] = f[4]
                now = sim.now
                f[7] = now
                f[8] = now
                f[0] = ISS_ISSUE
                continue
            elif s == ISS_W_AFTER_IR:
                # write_block's policy step after the RAM install.
                blk = f[10]
                f[0] = ISS_BLOCK_DONE
                if ram_kind is _SYNC:
                    frames.append([FRB_ENTER, blk])
                elif ram_kind is _ASYNC:
                    spawn([[FRB_ENTER, blk]])
                elif ram_kind is _DELAYED:
                    spawn([[FRB_ENTER, blk], [AF_SLEEP, ram_delay]])
                continue
            elif s == RET_NONE:
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            elif s == ISS_RHIT_AFTER_PROMOTE:
                f[0] = ISS_BLOCK_DONE
                when = sim.now + ram_read_ns
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == ISS_RFHIT_AFTER_DEV:
                f[0] = ISS_BLOCK_DONE
                frames.append([IR_ENTER, f[10], False, 0])
                continue
            elif s == ISS_RMISS_AFTER_FR:
                f[0] = ISS_RMISS_AFTER_IF
                frames.append([IF_ENTER, f[10], False])
                continue
            elif s == ISS_RMISS_AFTER_IF:
                f[0] = ISS_BLOCK_DONE
                frames.append([IR_ENTER, f[10], False, 0])
                continue
            elif s == ISS_RNOFLASH_AFTER_FR:
                f[0] = ISS_BLOCK_DONE
                frames.append([IR_ENTER, f[10], False, 0])
                continue
            # ---- filer round trip ----------------------------------
            elif s == NET_ENTER:
                wire, wire_time = charge(f[1], "up")
                f[4] = wire
                f[5] = wire_time
                if wire.try_acquire():
                    f[0] = NET_REL_UP
                    when = sim.now + wire_time
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                f[0] = NET_ACQ_UP
                grant = wire.acquire()
                task._blocked = True
                sim.blocked_processes += 1
                grant._waiters.append(task)
                return
            elif s == NET_ACQ_UP:
                f[0] = NET_REL_UP
                when = sim.now + f[5]
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == NET_REL_UP:
                f[4].release()
                f[0] = NET_AFTER_SERVICE
                when = sim.now + f[2]()  # filer service (RNG draw here)
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == NET_AFTER_SERVICE:
                wire, wire_time = charge(f[3], "down")
                f[4] = wire
                f[5] = wire_time
                if wire.try_acquire():
                    f[0] = NET_REL_DOWN
                    when = sim.now + wire_time
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                f[0] = NET_ACQ_DOWN
                grant = wire.acquire()
                task._blocked = True
                sim.blocked_processes += 1
                grant._waiters.append(task)
                return
            elif s == NET_ACQ_DOWN:
                f[0] = NET_REL_DOWN
                when = sim.now + f[5]
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == NET_REL_DOWN:
                f[4].release()
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            # ---- _install_ram --------------------------------------
            elif s == IR_ENTER:
                if not has_ram:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                blk = f[1]
                existing = ram.peek(blk)
                if existing is not None:
                    ram.get(blk)
                    if f[2]:
                        ram.mark_dirty(blk)
                    f[0] = RET_NONE
                    when = sim.now + ram_write_ns
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                f[0] = IR_EVICT
                continue
            elif s == IR_EVICT:
                # One eviction step per dispatch (the generator's
                # ``while ram.is_full()`` loop head).
                blk = f[1]
                if ram.is_full():
                    victim = ram.pop_victim()
                    if victim is not None:
                        if flash is not None:
                            flash.unpin(victim.block)
                        if victim.dirty:
                            f[3] = victim.block
                            f[0] = IR_AFTER_WB
                            frames.append(wbr_frame(victim.block))
                            continue
                        note_maybe_gone(victim.block)
                        if ram.peek(blk) is None:
                            continue
                        if f[2]:
                            ram.mark_dirty(blk)
                        f[0] = RET_NONE
                        when = sim.now + ram_write_ns
                        if when > sim.now and (not heap or when < heap[0][0]):
                            sim.now = when
                            continue
                        sim._seq += 1
                        heappush(heap, (when, sim._seq, task, None))
                        return
                ram.put(blk, _RAM, dirty=f[2])
                if flash is not None:
                    flash.pin(blk)
                note_present(blk)
                f[0] = RET_NONE
                when = sim.now + ram_write_ns
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == IR_AFTER_WB:
                note_maybe_gone(f[3])
                blk = f[1]
                if ram.peek(blk) is None:
                    f[0] = IR_EVICT
                    continue
                if f[2]:
                    ram.mark_dirty(blk)
                f[0] = RET_NONE
                when = sim.now + ram_write_ns
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            # ---- _install_flash ------------------------------------
            elif s == IF_ENTER:
                blk = f[1]
                if flash is None or sim.now < stack.flash_online_at:
                    frames.pop()
                    task.ret = True
                    if frames:
                        continue
                    return
                existing = flash.peek(blk)
                if existing is None:
                    if admission is not None and not admission.admit_fill(
                        blk, ram.ref_count(blk), sim.now
                    ):
                        frames.pop()
                        task.ret = False
                        if frames:
                            continue
                        return
                    f[0] = IF_AFTER_ROOM
                    frames.append([MFR_LOOP, blk, None])
                    continue
                flash.get(blk)  # touch
                if admission is not None:
                    admission.note_update(sim.now)
                f[0] = IF_AFTER_WRITE
                when = sim.now + dev_write(blk)
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == IF_AFTER_ROOM:
                blk = f[1]
                if flash.peek(blk) is None:
                    flash.put(blk, _FLASH, dirty=False, pinned=blk in ram)
                    note_present(blk)
                f[0] = IF_AFTER_WRITE
                when = sim.now + dev_write(blk)
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == IF_AFTER_WRITE:
                blk = f[1]
                if flash.peek(blk) is None:
                    trim(blk)
                elif f[2]:
                    flash.mark_dirty(blk)
                    if cleaning is not None:
                        cleaning.note_dirtied(blk, sim.now)
                frames.pop()
                task.ret = True
                if frames:
                    continue
                return
            # ---- _make_flash_room ----------------------------------
            elif s == MFR_LOOP:
                if flash.is_full():
                    victim = flash.pop_victim()
                    if victim is not None:
                        trim(victim.block)
                        if victim.dirty:
                            f[2] = victim
                            f[0] = MFR_AFTER_FW
                            frames.append(_fw_frame())
                            continue
                        if victim.pinned:
                            ram_copy = ram.remove(victim.block)
                            if ram_copy is not None and ram_copy.dirty:
                                f[2] = victim
                                f[0] = MFR_AFTER_RAMWB
                                frames.append(wbr_frame(victim.block))
                                continue
                        note_maybe_gone(victim.block)
                        if flash.peek(f[1]) is None:
                            continue
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            elif s == MFR_AFTER_FW:
                victim = f[2]
                if victim.pinned:
                    ram_copy = ram.remove(victim.block)
                    if ram_copy is not None and ram_copy.dirty:
                        f[0] = MFR_AFTER_RAMWB
                        frames.append(wbr_frame(victim.block))
                        continue
                note_maybe_gone(victim.block)
                if flash.peek(f[1]) is not None:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                f[0] = MFR_LOOP
                continue
            elif s == MFR_AFTER_RAMWB:
                note_maybe_gone(f[2].block)
                if flash.peek(f[1]) is not None:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                f[0] = MFR_LOOP
                continue
            # ---- _write_into_flash ---------------------------------
            elif s == WIF_ENTER:
                if flash is not None and sim.now < stack.flash_online_at:
                    frames[-1] = _fw_frame()
                    continue
                f[0] = WIF_AFTER_IF
                frames.append([IF_ENTER, f[1], True])
                continue
            elif s == WIF_AFTER_IF:
                if not task.ret:
                    frames[-1] = _fw_frame()
                    continue
                blk = f[1]
                if flash_kind is _SYNC:
                    frames[-1] = [FF_ENTER, blk]
                    continue
                if flash_kind is _ASYNC:
                    spawn([[FF_ENTER, blk]])
                elif flash_kind is _DELAYED:
                    spawn([[FF_ENTER, blk], [AF_SLEEP, flash_delay]])
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            # ---- lookaside _writeback_ram_data ---------------------
            elif s == WBR_ENTER:
                f[0] = WBR_LA_AFTER_FW
                frames.append(_fw_frame())
                continue
            elif s == WBR_LA_AFTER_FW:
                if flash is not None:
                    frames[-1] = [IF_ENTER, f[1], False]
                    continue
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            # ---- flushes -------------------------------------------
            elif s == FRB_ENTER:
                blk = f[1]
                entry = ram.peek(blk)
                if entry is None or not entry.dirty:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                ram.mark_clean(blk)
                frames[-1] = wbr_frame(blk)
                continue
            elif s == FF_ENTER:
                if sim.now < stack.flash_online_at:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                blk = f[1]
                entry = flash.peek(blk)
                if entry is None or not entry.dirty:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                flash.mark_clean(blk)
                frames[-1] = _fw_frame()
                continue
            # ---- syncers and delayed flushes -----------------------
            elif s == SY_LOOP:
                if not stack.keep_running():
                    frames.pop()
                    if frames:
                        continue
                    return
                f[0] = SY_TICK
                when = sim.now + f[1]
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == SY_TICK:
                dirty = f[2].dirty_blocks()
                if dirty:
                    flush_state = f[3]
                    if f[4]:
                        spacing = f[1] // len(dirty)
                        for index, blk in enumerate(dirty):
                            spawn(
                                [[flush_state, blk],
                                 [AF_SLEEP, index * spacing]]
                            )
                    else:
                        for blk in dirty:
                            spawn([[flush_state, blk]])
                f[0] = SY_LOOP
                continue
            elif s == AF_SLEEP:
                f[0] = AF_DONE
                delay = f[1]
                if delay > 0:
                    when = sim.now + delay
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                sim._seq += 1
                heappush(heap, (sim.now, sim._seq, task, None))
                return
            elif s == AF_DONE:
                frames.pop()
                task.ret = None
                continue
            else:  # pragma: no cover - state table corruption
                raise AssertionError("unknown layered state %r" % s)

    return _HostExecutor(execute, spawn, spawn_issuer, start_syncers)


def _unified_executor(system, stack) -> _HostExecutor:
    """Build the dispatch closure for one unified-architecture host."""
    sim = system.sim
    heap = sim._heap
    cache = stack.cache
    device = stack.flash_device
    charge = stack.segment.charge
    read_service = stack.filer.read_service_ns
    write_service = stack.filer.write_service_ns
    directory = stack.directory
    on_block_write = directory.on_block_write
    note_copy = directory.note_copy
    note_drop = directory.note_drop
    host_id = stack.host_id
    ram_read_ns = stack._ram_read_ns
    ram_write_ns = stack._ram_write_ns
    allocate_medium = stack._allocate_medium
    release_medium = stack._release_medium
    config = stack.config
    ram_policy = config.ram_policy
    flash_policy = config.flash_policy
    ram_kind = ram_policy.kind
    flash_kind = flash_policy.kind
    ram_delay = ram_policy.flush_delay_ns if ram_kind is _DELAYED else 0
    flash_delay = flash_policy.flush_delay_ns if flash_kind is _DELAYED else 0
    if device is not None:
        dev_read = device.read_service_ns
        dev_write = device.write_service_ns
        trim = device.trim_block
    else:
        dev_read = dev_write = trim = None

    fleet = system.metrics
    host_m = system.host_metrics[host_id]
    fleet_read = fleet.read_latency.record
    fleet_write = fleet.write_latency.record
    host_read = host_m.read_latency.record
    host_write = host_m.write_latency.record
    req_read = fleet.read_request_latency.record
    req_write = fleet.write_request_latency.record
    record_completed = system._record_completed
    check_invariants = system.invariants is not None

    def _fr_frame():
        return [NET_ENTER, _PKT_REQUEST, read_service, _PKT_DATA, None, 0]

    def _fw_frame():
        return [NET_ENTER, _PKT_DATA, write_service, _PKT_ACK, None, 0]

    def spawn(frames):
        task = _Task(sim, execute)
        task.frames = frames
        sim._seq += 1
        heappush(heap, (sim.now, sim._seq, task, None))

    def spawn_issuer(warmup_rows, measured_rows):
        spawn(
            [[
                ISS_NEXT_ROW, iter(warmup_rows), iter(measured_rows),
                0, 0, 0, 0, 0, 0, False, 0, None,
            ]]
        )

    def start_syncers():
        # Twin of UnifiedStack.start_syncers (same spawn order).
        if ram_policy.has_syncer:
            spawn([[USY_LOOP, ram_policy.period_ns, _RAM,
                    ram_kind is _TRICKLE]])
        if flash_policy.has_syncer:
            spawn([[USY_LOOP, flash_policy.period_ns, _FLASH,
                    flash_kind is _TRICKLE]])

    def _policy_step(f, frames, blk, medium):
        """write_block's policy dispatch; returns True if a sync flush
        frame was pushed (the caller just continues either way)."""
        f[0] = ISS_BLOCK_DONE
        if medium is _RAM:
            kind = ram_kind
            delay = ram_delay
        else:
            kind = flash_kind
            delay = flash_delay
        if kind is _SYNC:
            frames.append([UFB_ENTER, blk])
        elif kind is _ASYNC:
            spawn([[UFB_ENTER, blk]])
        elif kind is _DELAYED:
            spawn([[UFB_ENTER, blk], [AF_SLEEP, delay]])

    def execute(
        task,
        _value,
        # Default-argument binding: every state code and hot helper
        # becomes a LOAD_FAST local inside the dispatch chain instead
        # of a global lookup per comparison.  Callers pass only
        # (task, value); the defaults are never overridden.
        ISS_ISSUE=ISS_ISSUE,
        ISS_BLOCK_DONE=ISS_BLOCK_DONE,
        ISS_NEXT_ROW=ISS_NEXT_ROW,
        ISS_W_AFTER_IR=ISS_W_AFTER_IR,
        ISS_RHIT_AFTER_PROMOTE=ISS_RHIT_AFTER_PROMOTE,
        ISS_RFHIT_AFTER_DEV=ISS_RFHIT_AFTER_DEV,
        ISS_RMISS_AFTER_FR=ISS_RMISS_AFTER_FR,
        ISS_RMISS_AFTER_IF=ISS_RMISS_AFTER_IF,
        ISS_RNOFLASH_AFTER_FR=ISS_RNOFLASH_AFTER_FR,
        ISS_W_HIT_AFTER_DEV=ISS_W_HIT_AFTER_DEV,
        ISS_W_AFTER_INSTALL=ISS_W_AFTER_INSTALL,
        RET_NONE=RET_NONE,
        NET_ENTER=NET_ENTER,
        NET_ACQ_UP=NET_ACQ_UP,
        NET_REL_UP=NET_REL_UP,
        NET_AFTER_SERVICE=NET_AFTER_SERVICE,
        NET_ACQ_DOWN=NET_ACQ_DOWN,
        NET_REL_DOWN=NET_REL_DOWN,
        IR_ENTER=IR_ENTER,
        IR_EVICT=IR_EVICT,
        IR_AFTER_WB=IR_AFTER_WB,
        IF_ENTER=IF_ENTER,
        IF_AFTER_ROOM=IF_AFTER_ROOM,
        IF_AFTER_WRITE=IF_AFTER_WRITE,
        MFR_LOOP=MFR_LOOP,
        MFR_AFTER_FW=MFR_AFTER_FW,
        MFR_AFTER_RAMWB=MFR_AFTER_RAMWB,
        WIF_ENTER=WIF_ENTER,
        WIF_AFTER_IF=WIF_AFTER_IF,
        WBR_ENTER=WBR_ENTER,
        WBR_LA_AFTER_FW=WBR_LA_AFTER_FW,
        FRB_ENTER=FRB_ENTER,
        FF_ENTER=FF_ENTER,
        SY_LOOP=SY_LOOP,
        SY_TICK=SY_TICK,
        AF_SLEEP=AF_SLEEP,
        AF_DONE=AF_DONE,
        UIN_ENTER=UIN_ENTER,
        UIN_EVICT=UIN_EVICT,
        UIN_AFTER_FW=UIN_AFTER_FW,
        UIN_AFTER_WRITE=UIN_AFTER_WRITE,
        UFB_ENTER=UFB_ENTER,
        USY_LOOP=USY_LOOP,
        USY_TICK=USY_TICK,
        _RAM=_RAM,
        _FLASH=_FLASH,
        _SYNC=_SYNC,
        _ASYNC=_ASYNC,
        _DELAYED=_DELAYED,
        heappush=heappush,
    ):
        frames = task.frames
        while True:
            f = frames[-1]
            s = f[0]
            if s == ISS_ISSUE:
                blk = f[10]
                if f[3]:
                    # UnifiedStack.write_block
                    on_block_write(host_id, blk, f[9])
                    entry = cache.get(blk)
                    if entry is not None:
                        cache.mark_dirty(blk)
                        medium = entry.medium
                        f[11] = medium
                        f[0] = ISS_W_HIT_AFTER_DEV
                        if medium is _RAM:
                            when = sim.now + ram_write_ns
                        else:
                            when = sim.now + dev_write(blk)
                        if when > sim.now and (not heap or when < heap[0][0]):
                            sim.now = when
                            continue
                        sim._seq += 1
                        heappush(heap, (when, sim._seq, task, None))
                        return
                    f[0] = ISS_W_AFTER_INSTALL
                    frames.append([UIN_ENTER, blk, True, None, None])
                    continue
                # UnifiedStack.read_block
                entry = cache.get(blk)
                if entry is not None:
                    f[0] = ISS_BLOCK_DONE
                    if entry.medium is _RAM:
                        when = sim.now + ram_read_ns
                    else:
                        when = sim.now + dev_read(blk)
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                f[0] = ISS_RMISS_AFTER_FR
                frames.append(_fr_frame())
                continue
            elif s == ISS_BLOCK_DONE:
                now = sim.now
                if f[9]:
                    latency = now - f[8]
                    if f[3]:
                        fleet_write(latency)
                        fleet.blocks_written += 1
                        host_write(latency)
                        host_m.blocks_written += 1
                    else:
                        fleet_read(latency)
                        fleet.blocks_read += 1
                        host_read(latency)
                        host_m.blocks_read += 1
                idx = f[6] + 1
                if idx < f[5]:
                    f[6] = idx
                    f[10] += 1
                    f[8] = now
                    f[0] = ISS_ISSUE
                    continue
                if f[9]:
                    if f[3]:
                        req_write(now - f[7])
                    else:
                        req_read(now - f[7])
                if check_invariants or system._measurement_started_at is None:
                    record_completed(f[5])
                f[0] = ISS_NEXT_ROW
                continue
            elif s == ISS_NEXT_ROW:
                it = f[1]
                if it is not None:
                    row = next(it, None)
                    if row is None:
                        f[1] = None
                        f[9] = True
                        row = next(f[2], None)
                else:
                    row = next(f[2], None)
                if row is None:
                    system._active_threads -= 1
                    frames.pop()
                    if frames:
                        continue
                    return
                f[3], f[4], f[5] = row
                f[6] = 0
                f[10] = f[4]
                now = sim.now
                f[7] = now
                f[8] = now
                f[0] = ISS_ISSUE
                continue
            elif s == RET_NONE:
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            elif s == ISS_RMISS_AFTER_FR:
                f[0] = ISS_BLOCK_DONE
                frames.append([UIN_ENTER, f[10], False, None, None])
                continue
            elif s == ISS_W_HIT_AFTER_DEV:
                blk = f[10]
                # _reclaim_if_gone
                if f[11] is _FLASH and cache.peek(blk) is None:
                    trim(blk)
                _policy_step(f, frames, blk, f[11])
                continue
            elif s == ISS_W_AFTER_INSTALL:
                medium = task.ret
                blk = f[10]
                if medium is None:
                    # Zero-capacity cache: write straight through.
                    f[0] = ISS_BLOCK_DONE
                    frames.append(_fw_frame())
                    continue
                _policy_step(f, frames, blk, medium)
                continue
            # ---- filer round trip (same states as layered) ---------
            elif s == NET_ENTER:
                wire, wire_time = charge(f[1], "up")
                f[4] = wire
                f[5] = wire_time
                if wire.try_acquire():
                    f[0] = NET_REL_UP
                    when = sim.now + wire_time
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                f[0] = NET_ACQ_UP
                grant = wire.acquire()
                task._blocked = True
                sim.blocked_processes += 1
                grant._waiters.append(task)
                return
            elif s == NET_ACQ_UP:
                f[0] = NET_REL_UP
                when = sim.now + f[5]
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == NET_REL_UP:
                f[4].release()
                f[0] = NET_AFTER_SERVICE
                when = sim.now + f[2]()
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == NET_AFTER_SERVICE:
                wire, wire_time = charge(f[3], "down")
                f[4] = wire
                f[5] = wire_time
                if wire.try_acquire():
                    f[0] = NET_REL_DOWN
                    when = sim.now + wire_time
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                f[0] = NET_ACQ_DOWN
                grant = wire.acquire()
                task._blocked = True
                sim.blocked_processes += 1
                grant._waiters.append(task)
                return
            elif s == NET_ACQ_DOWN:
                f[0] = NET_REL_DOWN
                when = sim.now + f[5]
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == NET_REL_DOWN:
                f[4].release()
                frames.pop()
                task.ret = None
                if frames:
                    continue
                return
            # ---- _install ------------------------------------------
            elif s == UIN_ENTER:
                if cache.capacity_blocks == 0:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                blk = f[1]
                existing = cache.peek(blk)
                if existing is None:
                    f[0] = UIN_EVICT
                    continue
                if f[2]:
                    cache.mark_dirty(blk)
                f[4] = existing.medium
                f[0] = UIN_AFTER_WRITE
                if existing.medium is _RAM:
                    when = sim.now + ram_write_ns
                else:
                    when = sim.now + dev_write(blk)
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == UIN_EVICT:
                blk = f[1]
                if cache.is_full():
                    victim = cache.pop_victim()
                    if victim is not None:
                        release_medium(victim.medium)
                        if victim.medium is _FLASH:
                            trim(victim.block)
                        if victim.dirty:
                            f[3] = victim
                            f[0] = UIN_AFTER_FW
                            frames.append(_fw_frame())
                            continue
                        if victim.block not in cache:
                            note_drop(host_id, victim.block)
                        existing = cache.peek(blk)
                        if existing is None:
                            continue
                        if f[2]:
                            cache.mark_dirty(blk)
                        f[4] = existing.medium
                        f[0] = UIN_AFTER_WRITE
                        if existing.medium is _RAM:
                            when = sim.now + ram_write_ns
                        else:
                            when = sim.now + dev_write(blk)
                        if when > sim.now and (not heap or when < heap[0][0]):
                            sim.now = when
                            continue
                        sim._seq += 1
                        heappush(heap, (when, sim._seq, task, None))
                        return
                medium = allocate_medium()  # RNG draw, same point
                cache.put(blk, medium, dirty=f[2])
                note_copy(host_id, blk)
                f[4] = medium
                f[0] = UIN_AFTER_WRITE
                if medium is _RAM:
                    when = sim.now + ram_write_ns
                else:
                    when = sim.now + dev_write(blk)
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == UIN_AFTER_FW:
                victim = f[3]
                if victim.block not in cache:
                    note_drop(host_id, victim.block)
                blk = f[1]
                existing = cache.peek(blk)
                if existing is None:
                    f[0] = UIN_EVICT
                    continue
                if f[2]:
                    cache.mark_dirty(blk)
                f[4] = existing.medium
                f[0] = UIN_AFTER_WRITE
                if existing.medium is _RAM:
                    when = sim.now + ram_write_ns
                else:
                    when = sim.now + dev_write(blk)
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == UIN_AFTER_WRITE:
                medium = f[4]
                blk = f[1]
                if medium is _FLASH and cache.peek(blk) is None:
                    trim(blk)
                frames.pop()
                task.ret = medium
                if frames:
                    continue
                return
            # ---- _flush_block --------------------------------------
            elif s == UFB_ENTER:
                blk = f[1]
                entry = cache.peek(blk)
                if entry is None or not entry.dirty:
                    frames.pop()
                    task.ret = None
                    if frames:
                        continue
                    return
                cache.mark_clean(blk)
                frames[-1] = _fw_frame()
                continue
            # ---- syncers and delayed flushes -----------------------
            elif s == USY_LOOP:
                if not stack.keep_running():
                    frames.pop()
                    if frames:
                        continue
                    return
                f[0] = USY_TICK
                when = sim.now + f[1]
                if when > sim.now and (not heap or when < heap[0][0]):
                    sim.now = when
                    continue
                sim._seq += 1
                heappush(heap, (when, sim._seq, task, None))
                return
            elif s == USY_TICK:
                medium = f[2]
                dirty = [
                    blk
                    for blk in cache.dirty_blocks()
                    if (entry := cache.peek(blk)) is not None
                    and entry.medium is medium
                ]
                if dirty:
                    spacing = f[1] // len(dirty) if f[3] else 0
                    for index, blk in enumerate(dirty):
                        spawn(
                            [[UFB_ENTER, blk],
                             [AF_SLEEP, index * spacing]]
                        )
                f[0] = USY_LOOP
                continue
            elif s == AF_SLEEP:
                f[0] = AF_DONE
                delay = f[1]
                if delay > 0:
                    when = sim.now + delay
                    if when > sim.now and (not heap or when < heap[0][0]):
                        sim.now = when
                        continue
                    sim._seq += 1
                    heappush(heap, (when, sim._seq, task, None))
                    return
                sim._seq += 1
                heappush(heap, (sim.now, sim._seq, task, None))
                return
            elif s == AF_DONE:
                frames.pop()
                task.ret = None
                continue
            else:  # pragma: no cover - state table corruption
                raise AssertionError("unknown unified state %r" % s)

    return _HostExecutor(execute, spawn, spawn_issuer, start_syncers)
