"""Discrete-event simulation kernel.

A deliberately small, fast kernel in the style of SimPy: simulation
*processes* are Python generators that ``yield`` either an integer delay
(nanoseconds) or a :class:`Completion` to wait on.  Shared contention
points (the network segment, optionally the flash device) are modeled
with :class:`Resource`; pure-latency devices use plain timeouts.

Typical usage::

    sim = Simulator()
    link = Resource(sim, capacity=1)

    def sender():
        yield link.acquire()
        yield 8_200            # hold the link for 8.2 us
        link.release()

    sim.spawn(sender())
    sim.run()
"""

from repro.engine.events import Completion
from repro.engine.simulation import Process, Simulator
from repro.engine.resources import Resource
from repro.engine.rng import RngStreams

__all__ = ["Completion", "Process", "Simulator", "Resource", "RngStreams"]
