"""Parallel intra-simulation replay: shard hosts across worker processes.

One large multi-host simulation is split into host *groups*, each group
replays in a worker from the persistent sweep pool
(:mod:`repro.sweep` — the same zero-copy shared-memory trace fan-out),
and the per-group :class:`~repro.core.results.SimulationResults` are
merged deterministically.  The merged output is **bit-identical** to
the serial replay; the differential harness's
``parallel-replay-identity`` check pins that.

Why this is exact
-----------------

The simulated hosts only interact through the consistency directory,
and only when one host *writes* a block some other host touches
(:mod:`repro.traces.partition` states the exact rule).  For host
groups with no such coupling, the serial event schedule restricted to
one group is exactly the schedule of that group replayed standalone:
every event carries its own simulated timestamp, cross-group events
never read or write common state, and same-time heap ties between
groups commute because tie-breaking only orders *state-disjoint*
callbacks.  So each worker replays its group against a full-size (but
mostly idle) :class:`~repro.core.machine.System` and reports exact
partial sums; idle hosts contribute exact zeros.

Two tiers pick the groups:

* **Independent partitioning** — :func:`~repro.traces.partition.
  analyze_partition` proves which hosts can never observe each other
  (one columnar pass; disjoint-tenant fleets split immediately), and
  :func:`~repro.traces.partition.plan_groups` bins the components into
  balanced groups.  No synchronization of any kind is needed.
* **Conflict-watched splitting** — when the static analysis finds a
  single component (e.g. one shared hot block among thousands of
  private ones), hosts are split evenly anyway and every worker's
  directory *watches* the block set foreign groups write
  (``ConsistencyDirectory.conflict_watch``).  The instant any host
  acquires a copy of a watched block the worker raises
  :class:`~repro.errors.ParallelReplayConflict` — before any
  divergence from the serial schedule can occur — and the parent falls
  back to one serial replay.  This tier is only attempted under the
  paper's instant directory (``timing.directory.is_instant``), where
  invalidations carry no latency that a barrier would have to order.

Eligibility
-----------

:func:`try_parallel_replay` returns ``None`` — and
:func:`~repro.core.simulator.run_simulation` silently runs the serial
path — whenever sharding cannot be proven exact.  The conditions are
listed in ``docs/INVARIANTS.md``; :func:`decline_reason` returns the
first failing one (``last_outcome()`` reports what happened on the most
recent attempt, which the tests and benchmarks assert on).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import repro.sweep as sweep
from repro.core.config import SimConfig
from repro.core.machine import System
from repro.core.results import SimulationResults
from repro.errors import ParallelReplayConflict
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.partition import (
    analyze_partition,
    plan_groups,
    slice_hosts,
    split_hosts_evenly,
    static_write_blocks,
)
from repro.traces.records import Trace

__all__ = [
    "ParallelOutcome",
    "decline_reason",
    "last_outcome",
    "try_parallel_replay",
]


@dataclass(frozen=True)
class ParallelOutcome:
    """What the most recent :func:`try_parallel_replay` call did.

    ``kind`` is ``"parallel"`` (sharded replay succeeded),
    ``"declined"`` (ineligible — ``detail`` names the first failing
    condition), or ``"conflict"`` (the conflict-watch tier aborted and
    the caller fell back to serial).  ``groups`` is the group count for
    ``"parallel"``, else 0; ``tier`` is ``"independent"`` or
    ``"watched"`` when a sharded replay was attempted.
    """

    kind: str
    detail: str = ""
    groups: int = 0
    tier: str = ""


_LAST_OUTCOME: Optional[ParallelOutcome] = None


def last_outcome() -> Optional[ParallelOutcome]:
    """The outcome of the most recent parallel-replay attempt in this
    process (``None`` before any attempt)."""
    return _LAST_OUTCOME


def _record(outcome: ParallelOutcome) -> ParallelOutcome:
    global _LAST_OUTCOME
    _LAST_OUTCOME = outcome
    return outcome


def decline_reason(
    trace,
    config: SimConfig,
    *,
    n_hosts: int,
    workers: int,
    restart,
    timeline_bucket_ns,
    check_invariants,
    obs,
) -> Optional[str]:
    """The first reason this run cannot shard, or ``None`` if the
    pre-partition gates all pass.

    Every condition here exists because the feature it names either
    couples hosts through global state (syncer loops, cleaning
    controllers, invariant walkers all gate on whole-system state),
    consumes a global RNG stream (fractional ``fast_read_rate``), or
    needs per-record object hooks the sliced columnar replay does not
    provide (observations, timelines, restarts).  Serial replay remains
    the reference semantics for all of them.
    """
    if workers < 2:
        return "fewer than two workers requested"
    if n_hosts < 2:
        return "single-host simulation"
    if multiprocessing.current_process().name != "MainProcess":
        # Already inside a pool worker (e.g. a sweep point inheriting
        # REPRO_PARALLEL_HOSTS): nested pools would thrash the machine.
        return "already running inside a worker process"
    if obs is not None or config.trace_events:
        return "observation attached (per-record object path required)"
    if not isinstance(trace, (CompiledTrace, ChunkedCompiledTrace, Trace)):
        return "trace form not shardable"
    if trace.warmup_records != 0:
        return "trace has a warmup phase (cache state crosses the boundary)"
    if restart is not None:
        return "restart/crash schedule is a global event"
    if timeline_bucket_ns is not None:
        return "read timeline buckets are clocked on the global timeline"
    from repro.invariants.suite import resolve_enabled

    if resolve_enabled(check_invariants, config):
        return "invariant checking walks whole-system state"
    rate = config.timing.filer.fast_read_rate
    if rate != 0.0 and rate != 1.0:
        return "fractional filer fast_read_rate consumes a global RNG stream"
    if config.ram_policy.has_syncer or config.flash_policy.has_syncer:
        return "periodic/trickle syncers are clocked on the global timeline"
    if not config.flash_cleaning.is_periodic:
        return "non-periodic flash cleaning runs a global controller loop"
    from repro.core.metrics import SKETCH_ENV

    if os.environ.get(SKETCH_ENV, "").strip().lower() not in ("", "0", "off", "false"):
        return "latency sketches do not merge exactly"
    return None


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _group_slice(ref, group: Tuple[int, ...]) -> CompiledTrace:
    """Resolve the full trace for ``ref`` and slice this group's rows,
    memoized in the sweep worker cache (the slice owns its arrays, so
    it stays valid even if the base trace is evicted)."""
    key = ("slice", ref, group)
    entry = sweep._WORKER_TRACE_CACHE.get(key)
    if entry is not None:
        return entry[0]
    base = sweep._load_trace_ref(ref)
    sliced = slice_hosts(base, set(group))
    while len(sweep._WORKER_TRACE_CACHE) >= sweep._WORKER_TRACE_CACHE_MAX:
        oldest = next(iter(sweep._WORKER_TRACE_CACHE))
        _, old_cleanup = sweep._WORKER_TRACE_CACHE.pop(oldest)
        if old_cleanup is not None:
            old_cleanup()
    sweep._WORKER_TRACE_CACHE[key] = (sliced, None)
    return sliced


def _resource_busy(resource) -> int:
    """Effective busy nanoseconds of a Resource at its sim's clock (the
    numerator of ``Resource.utilization``, shipped raw so the parent
    can divide by the *global* clock)."""
    busy = resource.busy_time
    if resource._busy_since is not None:  # pragma: no cover - drained runs
        busy += resource._sim.now - resource._busy_since
    return busy


def _collect_aux(system: System) -> Dict[str, object]:
    """Raw integers behind the float fields the parent must recompute
    globally (group-level floats have group-local denominators)."""
    from repro.flash.ftl_device import FTLFlashDevice

    wa_factors: List[Optional[float]] = []
    ftl_meters: List[Optional[Tuple[int, int]]] = []
    host_pages = 0
    flash_pages = 0
    seen_ftl = False
    for device in system.flash_devices:
        if isinstance(device, FTLFlashDevice):
            seen_ftl = True
            wa_factors.append(device.write_amplification)
            ftl_meters.append(
                (device.erase_count(), device.ftl.config.rated_total_erases)
            )
            host_pages += device.ftl.host_writes - device._host_writes_at_reset
            flash_pages += device.ftl.flash_writes - device._flash_writes_at_reset
        else:
            wa_factors.append(None)
            ftl_meters.append(None)
    return {
        "segment_busy": [
            (_resource_busy(seg._up), _resource_busy(seg._down))
            for seg in system.segments
        ],
        "wa_factors": wa_factors,
        "ftl_meters": ftl_meters,
        "wa_pages": (host_pages, flash_pages, seen_ftl),
    }


def _replay_group_task(task):
    """Replay one host group (runs in a pool worker).

    Returns ``("ok", results, aux)`` or ``("conflict", host, block)``
    when the conflict watch proves the groups coupled.
    """
    ref, group, config, n_hosts, foreign_writes = task
    from repro.core.simulator import results_from_system

    sliced = _group_slice(ref, group)
    system = System(config, n_hosts, check_invariants=False)
    if foreign_writes is not None:
        system.directory.conflict_watch = set(foreign_writes)
    try:
        system.replay(sliced)
    except ParallelReplayConflict as conflict:
        return ("conflict", conflict.host_id, conflict.block)
    return (
        "ok",
        results_from_system(system, config, len(sliced)),
        _collect_aux(system),
    )


# --------------------------------------------------------------------------
# Parent side: merge
# --------------------------------------------------------------------------


def _merged_overrides(
    parts: Sequence[SimulationResults],
    auxes: Sequence[Dict[str, object]],
    groups: Sequence[Sequence[int]],
    n_hosts: int,
) -> Dict[str, object]:
    """Recompute the global-denominator float fields exactly as the
    serial ``System`` reporting methods do, from the workers' raw
    integer meters.  Expression shapes are replicated verbatim
    (operation order included) so float results match bit-for-bit."""
    global_now = max(part.simulated_ns for part in parts)
    window_ns = max(part.measured_ns for part in parts)
    owner: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for host in group:
            owner[host] = index

    # mean_network_utilization: segments are per-host, so each
    # segment's busy time is wholly owned by one group; summing the
    # groups' meters recovers the serial busy time.
    n_segments = len(auxes[0]["segment_busy"])
    if not n_segments:
        network = 0.0
    else:
        total = 0.0
        for seg in range(n_segments):
            up = sum(aux["segment_busy"][seg][0] for aux in auxes)
            down = sum(aux["segment_busy"][seg][1] for aux in auxes)
            up_util = 0.0 if global_now == 0 else up / global_now
            down_util = 0.0 if global_now == 0 else down / global_now
            total += (up_util + down_util) / 2.0
        network = total / n_segments

    # mean_write_amplification: per-device steady-state factor from the
    # device's *owning* group (an idle replica of the device reports
    # its initial factor, which must not shadow the real one).
    factors = [
        auxes[owner[host]]["wa_factors"][host]
        for host in range(n_hosts)
        if auxes[owner[host]]["wa_factors"][host] is not None
    ]
    mean_wa = sum(factors) / len(factors) if factors else None

    # measured_write_amplification: idle devices meter zero deltas, so
    # plain sums across groups count each device exactly once.
    host_pages = sum(aux["wa_pages"][0] for aux in auxes)
    flash_pages = sum(aux["wa_pages"][1] for aux in auxes)
    seen_ftl = any(aux["wa_pages"][2] for aux in auxes)
    if not seen_ftl:
        measured_wa = None
    elif host_pages == 0:
        measured_wa = 0.0
    else:
        measured_wa = flash_pages / host_pages

    # device_lifetime_days: per-device erase counts sum across groups
    # (idle replicas erase nothing); the projection window is the
    # global measurement window.
    if window_ns <= 0:
        lifetime = None
    else:
        day_ns = 86_400 * 1_000_000_000
        lifetimes: List[float] = []
        for host in range(n_hosts):
            meters = [
                aux["ftl_meters"][host]
                for aux in auxes
                if aux["ftl_meters"][host] is not None
            ]
            if not meters:
                continue
            erases = sum(meter[0] for meter in meters)
            if erases == 0:
                lifetimes.append(float("inf"))
                continue
            budget = meters[0][1]
            lifetimes.append(budget / erases * window_ns / day_ns)
        lifetime = min(lifetimes) if lifetimes else None

    return {
        "network_utilization": network,
        "flash_write_amplification": mean_wa,
        "flash_write_amp": measured_wa,
        "device_lifetime_days": lifetime,
    }


# --------------------------------------------------------------------------
# Parent side: orchestration
# --------------------------------------------------------------------------


def try_parallel_replay(
    trace,
    config: SimConfig,
    *,
    n_hosts: int,
    workers: int,
    restart=None,
    timeline_bucket_ns=None,
    check_invariants=None,
    obs=None,
) -> Optional[SimulationResults]:
    """Shard an eligible replay across ``workers`` processes.

    Returns the merged results — bit-identical to serial replay — or
    ``None`` when the run is ineligible, the partition is trivial, the
    platform has no process pool, or a conflict-watch worker proved the
    groups coupled.  ``None`` always means "run the serial path"; this
    function never raises for any of those conditions.
    """
    reason = decline_reason(
        trace,
        config,
        n_hosts=n_hosts,
        workers=workers,
        restart=restart,
        timeline_bucket_ns=timeline_bucket_ns,
        check_invariants=check_invariants,
        obs=obs,
    )
    if reason is not None:
        _record(ParallelOutcome("declined", reason))
        return None
    if isinstance(trace, Trace):
        # Explicit parallel request: compiling is cheap, bit-identical,
        # and required for the columnar partition analysis and slicing.
        trace = compile_trace(trace)

    analysis = analyze_partition(trace, n_hosts)
    foreign: List[Optional[frozenset]] = []
    if analysis.independent:
        tier = "independent"
        groups = plan_groups(analysis, workers)
        foreign = [None] * len(groups)
    else:
        if not config.timing.directory.is_instant:
            _record(
                ParallelOutcome(
                    "declined",
                    "coupled hosts under a modeled directory latency",
                )
            )
            return None
        tier = "watched"
        groups = split_hosts_evenly(analysis, workers)
        writes = [static_write_blocks(trace, set(group)) for group in groups]
        for index in range(len(groups)):
            watched: Set[int] = set()
            for other, other_writes in enumerate(writes):
                if other != index:
                    watched |= other_writes
            foreign.append(frozenset(watched))
    if len(groups) < 2:
        _record(ParallelOutcome("declined", "partition produced a single group"))
        return None

    segments: List = []
    spool_state: List = [None, False]
    try:
        refs: Dict[str, object] = {}
        ref = sweep._trace_ref(trace, refs, segments, spool_state, None)
        pool, owned = sweep._acquire_pool(min(workers, len(groups)), False)
        if pool is None:
            _record(ParallelOutcome("declined", "no process pool available"))
            return None
        tasks = [
            (ref, tuple(group), config, n_hosts, foreign[index])
            for index, group in enumerate(groups)
        ]
        try:
            futures = [pool.submit(_replay_group_task, task) for task in tasks]
            replies = [future.result() for future in futures]
        except Exception as exc:
            # A worker died or the pool broke: serial replay is always
            # available and will surface any genuine simulation error.
            if not owned and sweep._pool_is_poisoned(exc):
                sweep._discard_pool()
            _record(ParallelOutcome("declined", "pool failure: %r" % (exc,)))
            return None
        except BaseException as exc:  # KeyboardInterrupt, SystemExit
            if not owned and sweep._pool_is_poisoned(exc):
                sweep._discard_pool()
            raise
        finally:
            if owned:
                sweep._dispose_owned_pool(pool)
        for reply in replies:
            if reply[0] == "conflict":
                _record(
                    ParallelOutcome(
                        "conflict",
                        "host %d touched block %d written by another group"
                        % (reply[1], reply[2]),
                        tier=tier,
                    )
                )
                return None
        parts = [reply[1] for reply in replies]
        auxes = [reply[2] for reply in replies]
        overrides = _merged_overrides(parts, auxes, groups, n_hosts)
        merged = SimulationResults.merge_all(parts, overrides=overrides)
        _record(ParallelOutcome("parallel", groups=len(groups), tier=tier))
        return merged
    finally:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        spool_dir, created_spool = spool_state
        if created_spool and spool_dir is not None:
            import shutil

            shutil.rmtree(spool_dir, ignore_errors=True)
