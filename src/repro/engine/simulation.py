"""The discrete-event simulation kernel.

The kernel owns a binary-heap event queue keyed on ``(time, sequence)``.
Simulation *processes* are plain Python generators; they advance by
yielding one of:

* an ``int`` — suspend for that many nanoseconds;
* a :class:`~repro.engine.events.Completion` — suspend until it fires;
  the fired value becomes the result of the ``yield``.

Processes compose with ``yield from``, which is how the cache stack
builds multi-step I/O paths out of small helper generators.

The kernel is single-threaded and deterministic: ties in simulated time
break by scheduling order, so a run with the same inputs always produces
the same interleaving.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterator, List, Optional, Tuple

from repro.engine.events import Completion
from repro.errors import SimulationError

#: The generator type processes are built from.
ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator.

    Exposes :attr:`completion`, which fires with the generator's return
    value when it finishes; other processes can ``yield proc.completion``
    to join.
    """

    __slots__ = ("_sim", "_gen", "completion", "name", "_blocked")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.completion = Completion()
        self.name = name or getattr(gen, "__name__", "process")
        #: waiting on an unfired Completion (kernel leak accounting)
        self._blocked = False

    @property
    def finished(self) -> bool:
        """True once the underlying generator has returned."""
        return self.completion.fired

    def _resume_soon(self, value: Any) -> None:
        """Schedule this process to resume at the current simulated time."""
        if self._blocked:
            self._blocked = False
            self._sim.blocked_processes -= 1
        self._sim._schedule_resume(self, value)

    def _step(self, send_value: Any) -> None:
        """Advance the generator one yield and act on the command."""
        try:
            command = self._gen.send(send_value)
        except StopIteration as stop:
            self.completion.fire(stop.value)
            return
        if type(command) is int:
            if command < 0:
                self._gen.throw(SimulationError("negative timeout %d" % command))
                return
            self._sim._schedule_resume_at(self._sim.now + command, self)
        elif isinstance(command, Completion):
            if not command.fired:
                # Track waiters on unfired completions: a non-zero count
                # once the event queue drains means a process leaked
                # (deadlocked on a completion nobody will fire).
                self._blocked = True
                self._sim.blocked_processes += 1
            command._subscribe(self)
        else:
            self._gen.throw(
                SimulationError(
                    "process %r yielded %r; expected int delay or Completion"
                    % (self.name, command)
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return "<Process %s %s>" % (self.name, state)


class Simulator:
    """Event loop: owns simulated time and the pending-event heap."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Process, Any]] = []
        self._seq: int = 0
        self._running = False
        #: processes currently suspended on an unfired Completion; when
        #: the heap drains this must be zero or waiters leaked.
        self.blocked_processes: int = 0

    # --- scheduling -------------------------------------------------

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Create a process from ``gen`` and schedule its first step now."""
        process = Process(self, gen, name)
        self._schedule_resume_at(self.now, process)
        return process

    def _schedule_resume(self, process: Process, value: Any = None) -> None:
        self._schedule_resume_at(self.now, process, value)

    def _schedule_resume_at(self, when: int, process: Process, value: Any = None) -> None:
        if when < self.now:
            raise SimulationError(
                "cannot schedule in the past (%d < %d)" % (when, self.now)
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, process, value))

    # --- execution ---------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains (or simulated ``until`` is hit).

        Returns the final simulated time.  ``until`` is an absolute
        timestamp; events scheduled beyond it stay queued so the run can
        be continued later.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    break
                when, _seq, process, value = heapq.heappop(heap)
                self.now = when
                process._step(value)
        finally:
            self._running = False
        return self.now

    def run_until_complete(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation, and return its result.

        Raises :class:`SimulationError` if the event queue drains before
        the process finishes (i.e. it deadlocked on a completion nobody
        fires).
        """
        process = self.spawn(gen, name)
        self.run()
        if not process.finished:
            raise SimulationError(
                "process %r did not finish; simulation deadlocked" % process.name
            )
        return process.completion.value

    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue (for tests/diagnostics)."""
        return len(self._heap)


def timeout(sim: Simulator, delay: int) -> Completion:
    """Return a completion that fires ``delay`` ns from now.

    Useful when non-process code needs a timer, or when a process wants
    to race a timer against another completion.
    """
    done = Completion()

    def fire_gen() -> Iterator[Any]:
        yield delay
        done.fire(sim.now)

    sim.spawn(fire_gen(), name="timeout")
    return done
