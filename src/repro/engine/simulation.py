"""The discrete-event simulation kernel.

The kernel owns a binary-heap event queue keyed on ``(time, sequence)``.
Simulation *processes* are plain Python generators; they advance by
yielding one of:

* an ``int`` — suspend for that many nanoseconds;
* a :class:`~repro.engine.events.Completion` — suspend until it fires;
  the fired value becomes the result of the ``yield``.

Processes compose with ``yield from``, which is how the cache stack
builds multi-step I/O paths out of small helper generators.

The kernel is single-threaded and deterministic: ties in simulated time
break by scheduling order, so a run with the same inputs always produces
the same interleaving.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterator, List, Optional, Tuple

from repro.engine.events import Completion
from repro.errors import SimulationError

#: The generator type processes are built from.
ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator.

    Exposes :attr:`completion`, which fires with the generator's return
    value when it finishes; other processes can ``yield proc.completion``
    to join.
    """

    __slots__ = ("_sim", "_gen", "_completion", "_finished", "_result", "name", "_blocked")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        # The completion is allocated lazily: most processes (background
        # flushes, syncer batches) finish without anyone ever joining
        # them, so the common case skips the allocation entirely.
        self._completion: Optional[Completion] = None
        self._finished = False
        self._result: Any = None
        self.name = name or getattr(gen, "__name__", "process")
        #: waiting on an unfired Completion (kernel leak accounting)
        self._blocked = False

    @property
    def completion(self) -> Completion:
        """Fires with the generator's return value when it finishes."""
        done = self._completion
        if done is None:
            done = self._completion = Completion()
            if self._finished:
                done.fire(self._result)
        return done

    @property
    def finished(self) -> bool:
        """True once the underlying generator has returned."""
        return self._finished

    def _resume_soon(self, value: Any) -> None:
        """Schedule this process to resume at the current simulated time."""
        if self._blocked:
            self._blocked = False
            self._sim.blocked_processes -= 1
        sim = self._sim
        sim._seq += 1
        heappush(sim._heap, (sim.now, sim._seq, self, value))

    def _finish(self, result: Any) -> None:
        """Mark the generator returned, delivering ``result`` to joiners."""
        self._finished = True
        done = self._completion
        if done is not None:
            done.fire(result)
        else:
            self._result = result

    def _step(self, send_value: Any) -> None:
        """Advance the generator until it suspends on future work.

        Runs a trampoline: a yield of an *already fired* completion —
        the uncontended resource grant, a finished process's join — is
        answered immediately instead of round-tripping the event heap,
        so the common fast paths cost zero heap operations.  Time never
        advances inside the loop (a fired completion resumes at the
        current instant by definition), and positive delays, unfired
        completions, and ``yield 0`` still suspend through the heap,
        preserving the kernel's deterministic (time, sequence) order
        for everything that actually waits.
        """
        try:
            command = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _throw_step(self, exc: BaseException) -> None:
        """Throw ``exc`` into the generator and keep stepping.

        A process may *catch* the thrown error and yield a new command;
        that command must be handled exactly like any other suspension
        (both run loops delegate here, so the semantics cannot drift).
        Catch-and-``return`` finishes the process normally; an uncaught
        exception propagates to the caller of ``run()``.
        """
        try:
            command = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        """Trampoline with the first command already in hand.

        Shared continuation of :meth:`_step` (after a ``send``) and
        :meth:`_throw_step` (after a ``throw``): processes ``command``,
        and keeps sending for as long as suspensions can be answered in
        place (fast-forwarded delays, fired completions).
        """
        sim = self._sim
        gen = self._gen
        send = gen.send
        while True:
            if type(command) is int:
                if command > 0:
                    when = sim.now + command
                    heap = sim._heap
                    if (not heap or when < heap[0][0]) and (
                        sim._until is None or when <= sim._until
                    ):
                        # Fast-forward: this process is strictly ahead
                        # of every queued event, so pushing and popping
                        # it would run it next anyway with nothing in
                        # between.  Advance time in place instead.
                        sim.now = when
                        value = None
                    else:
                        sim._seq += 1
                        heappush(heap, (when, sim._seq, self, None))
                        return
                elif command < 0:
                    try:
                        command = gen.throw(
                            SimulationError("negative timeout %d" % command)
                        )
                    except StopIteration as stop:
                        self._finish(stop.value)
                        return
                    continue
                else:
                    # A zero delay is an explicit reschedule: it must let
                    # already-queued same-time events run first, so it goes
                    # through the heap like any other suspension.
                    sim._seq += 1
                    heappush(sim._heap, (sim.now, sim._seq, self, None))
                    return
            elif isinstance(command, Completion):
                if command.fired:
                    # Same-time wakeup fast path: resume in place.
                    value = command.value
                else:
                    # Track waiters on unfired completions: a non-zero
                    # count once the event queue drains means a process
                    # leaked (deadlocked on a completion nobody fires).
                    self._blocked = True
                    sim.blocked_processes += 1
                    command._waiters.append(self)
                    return
            else:
                try:
                    command = gen.throw(
                        SimulationError(
                            "process %r yielded %r; expected int delay or"
                            " Completion" % (self.name, command)
                        )
                    )
                except StopIteration as stop:
                    self._finish(stop.value)
                    return
                continue
            try:
                command = send(value)
            except StopIteration as stop:
                self._finish(stop.value)
                return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return "<Process %s %s>" % (self.name, state)


class Simulator:
    """Event loop: owns simulated time and the pending-event heap."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Process, Any]] = []
        self._seq: int = 0
        self._running = False
        #: absolute time bound of the active bounded run() (None when
        #: unbounded); gates the trampoline's time fast-forward so a
        #: bounded run never advances past its horizon.
        self._until: Optional[int] = None
        #: processes currently suspended on an unfired Completion; when
        #: the heap drains this must be zero or waiters leaked.
        self.blocked_processes: int = 0
        #: optional observability callback, called with each spawned
        #: process's name (None when tracing is off — the common case
        #: pays one predictable branch per spawn, nothing per event).
        self.trace_hook = None

    # --- scheduling -------------------------------------------------

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Create a process from ``gen`` and schedule its first step now."""
        process = Process(self, gen, name)
        if self.trace_hook is not None:
            self.trace_hook(process.name)
        self._schedule_resume_at(self.now, process)
        return process

    def _schedule_resume(self, process: Process, value: Any = None) -> None:
        self._schedule_resume_at(self.now, process, value)

    def _schedule_resume_at(self, when: int, process: Process, value: Any = None) -> None:
        if when < self.now:
            raise SimulationError(
                "cannot schedule in the past (%d < %d)" % (when, self.now)
            )
        self._seq += 1
        heappush(self._heap, (when, self._seq, process, value))

    # --- execution ---------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains (or simulated ``until`` is hit).

        Returns the final simulated time.  ``until`` is an absolute
        timestamp; events scheduled beyond it stay queued so the run can
        be continued later.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._until = until
        try:
            heap = self._heap
            if until is None:
                # The unbounded loop is the replay hot path; the body is
                # Process._step's trampoline inlined (minus the _until
                # guard, vacuous here) to save a method call and the
                # attribute re-lookups on every event.  Keep the two in
                # sync when changing suspension semantics.
                while heap:
                    when, _seq, process, value = heappop(heap)
                    self.now = when
                    send = process._gen.send
                    while True:
                        try:
                            command = send(value)
                        except StopIteration as stop:
                            process._finished = True
                            done = process._completion
                            if done is not None:
                                done.fire(stop.value)
                            else:
                                process._result = stop.value
                            break
                        if type(command) is int:
                            if command > 0:
                                when = self.now + command
                                if not heap or when < heap[0][0]:
                                    self.now = when
                                    value = None
                                    continue
                                self._seq += 1
                                heappush(heap, (when, self._seq, process, None))
                                break
                            if command < 0:
                                process._throw_step(
                                    SimulationError("negative timeout %d" % command)
                                )
                                break
                            self._seq += 1
                            heappush(heap, (self.now, self._seq, process, None))
                            break
                        if isinstance(command, Completion):
                            if command.fired:
                                value = command.value
                                continue
                            process._blocked = True
                            self.blocked_processes += 1
                            command._waiters.append(process)
                            break
                        process._throw_step(
                            SimulationError(
                                "process %r yielded %r; expected int delay or"
                                " Completion" % (process.name, command)
                            )
                        )
                        break
            else:
                while heap:
                    if heap[0][0] > until:
                        # Advance to the horizon, but never rewind: a
                        # bounded run whose horizon is already in the
                        # past must leave ``now`` untouched, matching
                        # the unbounded loop (which only moves forward).
                        if until > self.now:
                            self.now = until
                        break
                    when, _seq, process, value = heappop(heap)
                    self.now = when
                    process._step(value)
        finally:
            self._running = False
            self._until = None
        return self.now

    def run_until_complete(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation, and return its result.

        Raises :class:`SimulationError` if the event queue drains before
        the process finishes (i.e. it deadlocked on a completion nobody
        fires).
        """
        process = self.spawn(gen, name)
        self.run()
        if not process.finished:
            raise SimulationError(
                "process %r did not finish; simulation deadlocked" % process.name
            )
        return process.completion.value

    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue (for tests/diagnostics)."""
        return len(self._heap)


def timeout(sim: Simulator, delay: int) -> Completion:
    """Return a completion that fires ``delay`` ns from now.

    Useful when non-process code needs a timer, or when a process wants
    to race a timer against another completion.
    """
    done = Completion()

    def fire_gen() -> Iterator[Any]:
        yield delay
        done.fire(sim.now)

    sim.spawn(fire_gen(), name="timeout")
    return done
