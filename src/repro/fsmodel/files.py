"""The file-system model: a population of files with sizes and popularities."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro._units import BLOCK_SIZE, format_bytes
from repro.errors import ConfigError


class FileSpec:
    """One file: an id, a size in blocks, and an integer popularity weight."""

    __slots__ = ("file_id", "blocks", "popularity")

    def __init__(self, file_id: int, blocks: int, popularity: int = 1) -> None:
        if blocks < 1:
            raise ConfigError("file must have >= 1 block, got %d" % blocks)
        if popularity < 1:
            raise ConfigError("popularity must be >= 1, got %d" % popularity)
        self.file_id = file_id
        self.blocks = blocks
        self.popularity = popularity

    @property
    def nbytes(self) -> int:
        return self.blocks * BLOCK_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FileSpec %d %s pop=%d>" % (
            self.file_id,
            format_bytes(self.nbytes),
            self.popularity,
        )


class FileSystemModel:
    """The population of files the trace generator samples from.

    Files are identified by dense ids ``0..n-1`` matching their index;
    the trace layer relies on this to map ``(file, offset)`` pairs to
    global block numbers.
    """

    def __init__(self, files: Sequence[FileSpec]) -> None:
        if not files:
            raise ConfigError("file-system model needs at least one file")
        for index, spec in enumerate(files):
            if spec.file_id != index:
                raise ConfigError(
                    "file ids must be dense: index %d has id %d" % (index, spec.file_id)
                )
        self.files: List[FileSpec] = list(files)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self) -> Iterator[FileSpec]:
        return iter(self.files)

    def __getitem__(self, file_id: int) -> FileSpec:
        return self.files[file_id]

    @property
    def total_blocks(self) -> int:
        return sum(spec.blocks for spec in self.files)

    @property
    def total_bytes(self) -> int:
        return self.total_blocks * BLOCK_SIZE

    def file_blocks(self) -> List[int]:
        """Per-file sizes in blocks (the geometry a Trace carries)."""
        return [spec.blocks for spec in self.files]

    def popularities(self) -> List[float]:
        """Per-file sampling weights."""
        return [float(spec.popularity) for spec in self.files]

    def size_histogram(self, bucket_edges_blocks: Sequence[int]) -> Dict[str, int]:
        """Count files per size bucket (for model validation/reporting)."""
        edges = sorted(bucket_edges_blocks)
        labels = (
            ["<= %d" % edges[0]]
            + ["%d..%d" % (lo + 1, hi) for lo, hi in zip(edges, edges[1:])]
            + ["> %d" % edges[-1]]
        )
        counts = [0] * (len(edges) + 1)
        for spec in self.files:
            placed = False
            for index, edge in enumerate(edges):
                if spec.blocks <= edge:
                    counts[index] += 1
                    placed = True
                    break
            if not placed:
                counts[-1] += 1
        return dict(zip(labels, counts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FileSystemModel %d files, %s>" % (
            len(self.files),
            format_bytes(self.total_bytes),
        )
