"""Impressions-style file population generation.

Impressions (Agrawal et al., TOS 2009) models file sizes with a
lognormal body plus a heavy tail of large files.  We reproduce that
shape: each file is lognormal with probability ``1 - tail_fraction``
and Pareto (heavy tail) otherwise, and files accumulate until the
population reaches the target total size.  Popularities come from the
paper's Zipfian small-integer scheme.

The defaults generate a model that scales from the paper's 1.4 TB
server down to the megabyte-scale models the benchmarks use, keeping
the size *distribution* fixed while the file count varies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import GB, KB, MB, TB, blocks_for_bytes
from repro.engine.rng import RngStreams
from repro.errors import ConfigError
from repro.fsmodel.distributions import (
    pareto_sample,
    truncated_lognormal_sample,
    zipf_popularity,
)
from repro.fsmodel.files import FileSpec, FileSystemModel

import math


@dataclass(frozen=True)
class ImpressionsConfig:
    """Parameters of the file population.

    ``lognormal_mu``/``lognormal_sigma`` describe the body of the file
    *size* distribution in bytes (defaults give a ~32 KB median, like
    Impressions' desktop snapshots); ``tail_fraction`` of files instead
    draw from a Pareto tail of large files.
    """

    total_bytes: int = int(1.4 * TB)
    lognormal_mu: float = math.log(32 * KB)
    lognormal_sigma: float = 1.8
    tail_fraction: float = 0.02
    tail_alpha: float = 1.3
    tail_min_bytes: int = 4 * MB
    max_file_bytes: int = 16 * GB
    zipf_max_popularity: int = 16
    zipf_exponent: float = 1.5
    seed: int = 1

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ConfigError("total size must be positive")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise ConfigError("tail fraction must be in [0, 1]")
        if self.max_file_bytes <= 0 or self.tail_min_bytes <= 0:
            raise ConfigError("file size bounds must be positive")


def generate_filesystem(config: ImpressionsConfig) -> FileSystemModel:
    """Generate a file population totaling approximately
    ``config.total_bytes`` (within one file's worth of slack)."""
    streams = RngStreams(config.seed)
    size_rng = streams.stream("fsmodel", "sizes")
    pop_rng = streams.stream("fsmodel", "popularity")

    # Never let one file exceed the whole model: crucial when the model
    # is scaled down to megabytes.
    max_file = min(config.max_file_bytes, config.total_bytes)
    tail_min = min(config.tail_min_bytes, max_file)

    files = []
    total = 0
    file_id = 0
    while total < config.total_bytes:
        if size_rng.random() < config.tail_fraction:
            size = pareto_sample(size_rng, config.tail_alpha, tail_min)
        else:
            size = truncated_lognormal_sample(
                size_rng, config.lognormal_mu, config.lognormal_sigma, max_file
            )
        size_bytes = min(int(size), max_file, config.total_bytes - total)
        blocks = max(1, blocks_for_bytes(max(1, size_bytes)))
        files.append(
            FileSpec(
                file_id,
                blocks,
                zipf_popularity(pop_rng, config.zipf_max_popularity, config.zipf_exponent),
            )
        )
        total += blocks * 4096
        file_id += 1
    return FileSystemModel(files)
