"""Impressions-style file-system model generator.

The paper seeds its trace generator with "a list of files and file
sizes from the Impressions file system generator" (Agrawal et al.,
"Generating realistic impressions for file-system benchmarking").  The
original Impressions is a C tool; this package reimplements the part
the trace generator needs: a statistically realistic population of
files — lognormal size body with a heavy (Pareto) tail — plus the
paper's Zipfian small-integer per-file popularities, scaled to a target
total size (the paper uses a 1.4 TB model).
"""

from repro.fsmodel.distributions import (
    pareto_sample,
    poisson_sample,
    truncated_lognormal_sample,
    zipf_popularity,
)
from repro.fsmodel.files import FileSpec, FileSystemModel
from repro.fsmodel.impressions import ImpressionsConfig, generate_filesystem

__all__ = [
    "pareto_sample",
    "poisson_sample",
    "truncated_lognormal_sample",
    "zipf_popularity",
    "FileSpec",
    "FileSystemModel",
    "ImpressionsConfig",
    "generate_filesystem",
]
