"""Sampling primitives for the file-system model and trace generator.

The paper specifies its distributions precisely (§4):

* file sizes — realistic Impressions-style population (lognormal body,
  heavy tail);
* file popularities — "small integer popularities generated from a
  Zipfian distribution";
* I/O sizes and working-set subregion sizes — "Poisson, modified by
  clamping to the filesize";
* I/O starting points — uniform.

All samplers draw from a caller-supplied :class:`random.Random` so the
streams stay independent and reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import ConfigError


def poisson_sample(rng: random.Random, mean: float) -> int:
    """Sample from a Poisson distribution with the given mean.

    Uses Knuth's product method for small means and a normal
    approximation (rounded, clamped at 0) for large ones, which is more
    than adequate for I/O-size sampling.
    """
    if mean < 0:
        raise ConfigError("Poisson mean must be non-negative, got %r" % (mean,))
    if mean == 0:
        return 0
    if mean > 50:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def truncated_lognormal_sample(
    rng: random.Random, mu: float, sigma: float, max_value: float
) -> float:
    """Sample a lognormal, redrawing (up to a bound) to stay <= max_value."""
    if sigma < 0:
        raise ConfigError("sigma must be non-negative")
    for _attempt in range(64):
        value = rng.lognormvariate(mu, sigma)
        if value <= max_value:
            return value
    return max_value


def pareto_sample(rng: random.Random, alpha: float, minimum: float) -> float:
    """Sample from a Pareto distribution with shape alpha and the given
    minimum (scale) value."""
    if alpha <= 0 or minimum <= 0:
        raise ConfigError("Pareto alpha and minimum must be positive")
    return minimum * rng.paretovariate(alpha)


def zipf_popularity(rng: random.Random, max_popularity: int = 16, s: float = 1.5) -> int:
    """Sample a small-integer popularity from a truncated Zipfian.

    Returns k in [1, max_popularity] with P(k) proportional to 1/k**s;
    most files get popularity 1, a few get large values.  The value is
    used directly as a sampling *weight* by the trace generator.
    """
    if max_popularity < 1:
        raise ConfigError("max popularity must be >= 1")
    if s <= 0:
        raise ConfigError("Zipf exponent must be positive")
    weights = [1.0 / (k ** s) for k in range(1, max_popularity + 1)]
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for k, weight in enumerate(weights, start=1):
        cumulative += weight
        if point <= cumulative:
            return k
    return max_popularity


class WeightedSampler:
    """O(log n) sampling from a fixed set of weighted items.

    Built once over the file population (or working-set pieces); uses a
    cumulative-sum array and binary search.  Weights must be positive.
    """

    def __init__(self, weights: List[float]) -> None:
        if not weights:
            raise ConfigError("WeightedSampler needs at least one weight")
        self._cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            if weight <= 0:
                raise ConfigError("weights must be positive, got %r" % (weight,))
            total += weight
            self._cumulative.append(total)
        self.total = total

    def sample(self, rng: random.Random) -> int:
        """Return the index of a weight-proportionally chosen item."""
        point = rng.random() * self.total
        return _bisect_right(self._cumulative, point)

    def __len__(self) -> int:
        return len(self._cumulative)


def _bisect_right(cumulative: List[float], point: float) -> int:
    low, high = 0, len(cumulative)
    while low < high:
        mid = (low + high) // 2
        if point < cumulative[mid]:
            high = mid
        else:
            low = mid + 1
    return min(low, len(cumulative) - 1)
