"""Tests for the FTL-backed flash device extension."""

import pytest

from repro._units import KB
from repro.core.machine import System
from repro.core.simulator import run_simulation
from repro.engine.simulation import Simulator
from repro.errors import ConfigError
from repro.flash.ftl_device import FTLFlashDevice

from tests.helpers import make_trace, tiny_config
from tests.test_host_naive import timed


def make_device(sim=None, capacity=64, **kwargs):
    sim = sim or Simulator()
    return sim, FTLFlashDevice(sim, capacity_blocks=capacity, **kwargs)


def run_gen(sim, gen):
    sim.run_until_complete(gen)
    return sim.now


class TestDeviceBasics:
    def test_first_write_costs_one_page_write(self):
        sim, device = make_device()
        start = sim.now
        run_gen(sim, device.write_block(100))
        assert sim.now - start == device.timing.write_ns

    def test_read_costs_read_latency(self):
        sim, device = make_device()
        run_gen(sim, device.write_block(100))
        start = sim.now
        run_gen(sim, device.read_block(100))
        assert sim.now - start == device.timing.read_ns

    def test_capacity_enforced(self):
        sim, device = make_device(capacity=4)
        for block in range(4):
            run_gen(sim, device.write_block(block))
        with pytest.raises(Exception):
            run_gen(sim, device.write_block(99))

    def test_trim_releases_capacity(self):
        sim, device = make_device(capacity=4)
        for block in range(4):
            run_gen(sim, device.write_block(block))
        device.trim_block(0)
        run_gen(sim, device.write_block(99))  # must not raise

    def test_trim_absent_is_noop(self):
        _sim, device = make_device()
        device.trim_block(12345)


class TestWriteAmplification:
    def test_starts_at_zero(self):
        # A fresh device has amplified nothing (0.0, not 1.0/NaN).
        _sim, device = make_device()
        assert device.write_amplification == 0.0
        assert device.measured_write_amplification() == 0.0

    def test_sequential_overwrites_do_not_amplify(self):
        """Uniform whole-space overwrites leave GC victims fully
        invalid, so greedy GC relocates nothing — WA stays 1."""
        sim, device = make_device(capacity=128, overprovision=0.10)

        def churn():
            for _round in range(40):
                for block in range(128):
                    yield from device.write_block(block)

        run_gen(sim, churn())
        assert device.write_amplification == pytest.approx(1.0, abs=0.05)
        assert device.ftl.erases > 0

    def test_random_overwrites_amplify(self):
        """Random overwrites mix valid and invalid pages in every erase
        block, forcing GC to relocate survivors — WA exceeds 1."""
        import random

        rng = random.Random(3)
        sim, device = make_device(
            capacity=128, overprovision=0.10, pages_per_block=16
        )

        def churn():
            for block in range(128):  # fill once
                yield from device.write_block(block)
            for _ in range(5000):
                yield from device.write_block(rng.randrange(128))

        run_gen(sim, churn())
        assert device.write_amplification > 1.05
        assert device.ftl.erases > 0

    def test_gc_cost_reflected_in_time(self):
        """A churned device takes longer per write than WA=1 would."""
        sim, device = make_device(capacity=128, overprovision=0.10)

        def churn():
            for round_number in range(40):
                for block in range(128):
                    yield from device.write_block(block)

        run_gen(sim, churn())
        ideal = 40 * 128 * device.timing.write_ns
        assert sim.now > ideal


class TestEndToEnd:
    def test_simulation_reports_write_amplification(self):
        trace = make_trace([("w", i % 32) for i in range(600)], file_blocks=256)
        config = tiny_config(ram_bytes=4 * KB, flash_bytes=64 * KB, ftl_model=True)
        results = run_simulation(trace, config)
        assert results.flash_write_amplification is not None
        assert results.flash_write_amplification >= 1.0

    def test_plain_device_reports_none(self):
        trace = make_trace([("w", 0)])
        results = run_simulation(trace, tiny_config())
        assert results.flash_write_amplification is None

    def test_ftl_run_matches_plain_when_gc_idle(self):
        """With ample space and no churn, the FTL device behaves like
        the average-latency model."""
        trace = make_trace([("r", i) for i in range(16)], file_blocks=256)
        plain = run_simulation(trace, tiny_config())
        ftl = run_simulation(trace, tiny_config(ftl_model=True))
        assert ftl.read_latency.mean_ns == plain.read_latency.mean_ns

    def test_eviction_trims_pages(self):
        config = tiny_config(ram_bytes=4 * KB, flash_bytes=32 * KB, ftl_model=True)
        system = System(config, 1)
        host = system.hosts[0]
        # Push many blocks through an 8-block flash; without TRIM on
        # eviction the device would run out of logical pages.
        for block in range(100):
            timed(system, host.read_block(block))
        assert len(host.flash) <= 8

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            tiny_config(ftl_model=True, flash_parallelism=4)
        with pytest.raises(ConfigError):
            tiny_config(ftl_overprovision=1.5)
