"""Tests for restart/recovery modeling (the §7.8 gap the paper skipped)."""

import pytest

from repro._units import KB, MB, US
from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.restart import RestartSpec
from repro.core.simulator import run_simulation
from repro.errors import ConfigError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace

from tests.helpers import MISS_READ_NOFLASH_NS, make_trace, tiny_config
from tests.test_host_naive import timed


def small_trace():
    return generate_trace(
        TraceGenConfig(
            fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
            working_set_bytes=6 * MB,
            seed=17,
        )
    )


class TestRestartSpec:
    def test_presets(self):
        assert RestartSpec.crash_volatile().volatile_flash
        assert not RestartSpec.recover_persistent().volatile_flash
        assert RestartSpec.instant_recovery().scan_ns_per_block == 0

    def test_negative_scan_rejected(self):
        with pytest.raises(ConfigError):
            RestartSpec(scan_ns_per_block=-1)


class TestApplyRestartWhitebox:
    def test_ram_always_lost(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        host.apply_restart(volatile_flash=False, scan_ns_per_block=0)
        assert 0 not in host.ram
        assert 0 in host.flash  # persistent flash keeps contents

    def test_volatile_flash_lost(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        host.apply_restart(volatile_flash=True, scan_ns_per_block=0)
        assert 0 not in host.flash

    def test_recovery_window_blocks_flash_reads(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        host.apply_restart(volatile_flash=False, scan_ns_per_block=10_000)
        assert host.flash_online_at > system.sim.now
        # During recovery, a read of the cached block goes to the filer
        # and does not touch the flash.
        duration = timed(system, host.read_block(0))
        assert duration == MISS_READ_NOFLASH_NS

    def test_flash_serves_again_after_recovery(self):
        system = System(tiny_config(ram_bytes=4 * KB), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        timed(system, host.read_block(1))  # push 0 out of 1-block RAM
        host.apply_restart(volatile_flash=False, scan_ns_per_block=100)
        recovery = host.flash_online_at - system.sim.now
        assert recovery == 100 * len(host.flash)

        def wait_then_read():
            yield recovery
            yield from host.read_block(0)

        start = system.sim.now
        system.sim.run_until_complete(wait_then_read())
        # Flash hit after recovery: well under the filer's fast path.
        assert system.sim.now - start - recovery < 100_000

    def test_unified_rejects_restart(self):
        system = System(tiny_config(architecture=Architecture.UNIFIED), 1)
        with pytest.raises(NotImplementedError):
            system.hosts[0].apply_restart(False, 0)

    def test_migration_supports_restart(self):
        system = System(tiny_config(architecture=Architecture.EXCLUSIVE), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        host.apply_restart(volatile_flash=False, scan_ns_per_block=0)
        assert 0 not in host.ram


class TestEndToEnd:
    def test_persistent_restart_beats_volatile_crash(self):
        trace = small_trace()
        config = tiny_config(ram_bytes=256 * KB, flash_bytes=8 * MB)
        recovered = run_simulation(
            trace, config, restart=RestartSpec.instant_recovery()
        )
        crashed = run_simulation(
            trace, config, restart=RestartSpec.crash_volatile()
        )
        assert recovered.read_latency_us < crashed.read_latency_us

    def test_recovery_scan_costs_something(self):
        trace = small_trace()
        config = tiny_config(ram_bytes=256 * KB, flash_bytes=8 * MB)
        instant = run_simulation(
            trace, config, restart=RestartSpec.instant_recovery()
        )
        slow_scan = run_simulation(
            trace, config, restart=RestartSpec.recover_persistent(500 * US)
        )
        assert slow_scan.read_latency_us > instant.read_latency_us

    def test_restart_equivalences(self):
        """A volatile crash at the boundary ~ the paper's cold start."""
        trace = small_trace()
        config = tiny_config(ram_bytes=256 * KB, flash_bytes=8 * MB)
        crashed = run_simulation(trace, config, restart=RestartSpec.crash_volatile())
        cold = run_simulation(trace, config, cold_start=True)
        # Same idea measured two ways; they agree within noise.
        assert crashed.read_latency_us == pytest.approx(
            cold.read_latency_us, rel=0.25
        )

    def test_dirty_data_diverts_to_filer_during_recovery(self):
        trace = make_trace(
            [("r", 0)] + [("w", i) for i in range(1, 40)], warmup=1
        )
        config = tiny_config(ram_bytes=16 * KB, flash_bytes=64 * KB)
        results = run_simulation(
            trace,
            config,
            restart=RestartSpec.recover_persistent(scan_ns_per_block=10**9),
        )
        # The flash never comes back within this short run, so every
        # flushed write went to the filer instead.
        assert results.filer_writes > 0
