"""Tests for the repro.invariants sanitizer."""

import random

import pytest

from repro.cache.store import BlockStore
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.core.machine import System
from repro.core.simulator import run_simulation
from repro.engine.events import Completion
from repro.engine.simulation import Simulator
from repro.errors import ConfigError, InvariantViolation, SimulationError
from repro.flash.ftl import FTLConfig, PageMappedFTL
from repro.flash.ftl_device import FTLFlashDevice
from repro.invariants import (
    ENV_FLAG,
    Checker,
    build_suite,
    check_ftl,
    check_ftl_device,
    check_store,
    env_enabled,
    registered,
    resolve_enabled,
)
from tests.helpers import make_trace, tiny_config


def small_trace(n_ops=400, write_ratio=0.3, n_hosts=2, seed=9, warmup=100):
    rng = random.Random(seed)
    ops = [
        ("w" if rng.random() < write_ratio else "r", rng.randrange(700), rng.randrange(n_hosts))
        for _ in range(n_ops)
    ]
    return make_trace(ops, file_blocks=4096, warmup=warmup)


class TestInvariantViolation:
    def test_carries_structured_fields(self):
        exc = InvariantViolation("ftl", 1234, "drift", {"valid": 3})
        assert exc.checker == "ftl"
        assert exc.simulated_ns == 1234
        assert exc.snapshot == {"valid": 3}
        assert "'ftl'" in str(exc) and "t=1234 ns" in str(exc) and "drift" in str(exc)

    def test_is_a_simulation_error(self):
        assert issubclass(InvariantViolation, SimulationError)

    def test_without_sim_time(self):
        exc = InvariantViolation("cache.ram", None, "oops")
        assert "no sim time" in str(exc)
        assert exc.snapshot == {}


class TestCheckStore:
    def make(self, capacity=4):
        store = BlockStore(capacity, "lru", name="probe")
        store.put(1, dirty=True)
        store.put(2)
        return store

    def test_consistent_store_passes(self):
        check_store(self.make())

    def test_dirty_set_desync_detected(self):
        store = self.make()
        store._entries[1].dirty = False  # flag cleared behind the set's back
        with pytest.raises(InvariantViolation) as info:
            check_store(store)
        assert info.value.checker == "cache.probe"
        assert info.value.snapshot["only_in_set"] == [1]

    def test_policy_desync_detected(self):
        store = self.make()
        store._policy.remove(2)
        with pytest.raises(InvariantViolation, match="policy"):
            check_store(store)

    def test_lifetime_identity_detected(self):
        store = self.make()
        store.lifetime_insertions += 1
        with pytest.raises(InvariantViolation, match="lifetime"):
            check_store(store)

    def test_lookup_identity_detected(self):
        store = self.make()
        store.stats.hits += 1
        with pytest.raises(InvariantViolation, match="lookups"):
            check_store(store)

    def test_occupancy_overflow_detected(self):
        store = self.make()
        store.capacity_blocks = 1
        with pytest.raises(InvariantViolation, match="capacity"):
            check_store(store)


class TestCheckFTL:
    def make(self):
        ftl = PageMappedFTL(
            FTLConfig(n_blocks=8, pages_per_block=4, overprovision=0.2)
        )
        rng = random.Random(0)
        for _ in range(60):
            ftl.write(rng.randrange(ftl.config.logical_pages))
        return ftl

    def test_consistent_ftl_passes(self):
        check_ftl(self.make())

    def test_valid_count_desync_detected(self):
        ftl = self.make()
        victim = next(blk for blk in ftl._blocks if blk.valid > 0)
        victim.valid += 1
        with pytest.raises(InvariantViolation, match="valid pages"):
            check_ftl(ftl)

    def test_open_block_on_free_list_detected(self):
        ftl = self.make()
        ftl._free.append(ftl._open.index)
        ftl._free_set.add(ftl._open.index)
        with pytest.raises(InvariantViolation, match="open block"):
            check_ftl(ftl)

    def test_amplification_below_one_detected(self):
        ftl = self.make()
        ftl.host_writes = ftl.flash_writes + 1
        with pytest.raises(InvariantViolation, match="amplification"):
            check_ftl(ftl)

    def test_stale_mapping_detected(self):
        ftl = self.make()
        lpn, (block_index, page_index) = next(iter(ftl._map.items()))
        ftl._blocks[block_index].pages[page_index] = None
        ftl._blocks[block_index].valid -= 1
        ftl._map[lpn] = (block_index, page_index)
        with pytest.raises(InvariantViolation):
            check_ftl(ftl)


class TestCheckFTLDevice:
    def test_duplicate_logical_page_detected(self):
        device = FTLFlashDevice(Simulator(), capacity_blocks=16)
        for block in (5, 6):
            list(device.write_block(block))
        device._lpn_of[6] = device._lpn_of[5]
        with pytest.raises(InvariantViolation, match="share"):
            check_ftl_device(device)


class TestKernelAccounting:
    def test_leaked_waiter_counted(self):
        sim = Simulator()
        never = Completion()

        def waiter():
            yield never

        sim.spawn(waiter())
        sim.run()
        assert sim.blocked_processes == 1

    def test_fired_completion_releases_waiter(self):
        sim = Simulator()
        done = Completion()

        def waiter():
            yield done

        def firer():
            yield 10
            done.fire("ok")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert sim.blocked_processes == 0

    def test_already_fired_completion_never_blocks(self):
        sim = Simulator()
        done = Completion()
        done.fire(1)

        def waiter():
            value = yield done
            assert value == 1

        sim.spawn(waiter())
        sim.run()
        assert sim.blocked_processes == 0


class TestEnablement:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not env_enabled()
        for value in ("0", "false", "no", ""):
            monkeypatch.setenv(ENV_FLAG, value)
            assert not env_enabled()
        monkeypatch.setenv(ENV_FLAG, "1")
        assert env_enabled()

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        off = SimConfig(check_invariants=False)
        on = SimConfig(check_invariants=True)
        assert resolve_enabled(None, off) is False
        assert resolve_enabled(None, on) is True
        assert resolve_enabled(False, on) is False  # explicit wins
        assert resolve_enabled(True, off) is True
        monkeypatch.setenv(ENV_FLAG, "1")
        assert resolve_enabled(None, off) is True

    def test_interval_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(invariant_check_interval=0)


class TestReplayWiring:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        system = System(tiny_config(), 1)
        assert system.invariants is None

    def test_clean_replay_runs_checks(self):
        trace = small_trace()
        config = tiny_config(check_invariants=True, invariant_check_interval=10)
        system = System(config, 2)
        system.replay(trace)
        # interval checks plus the final pass all ran without raising
        assert system.invariants.checks_run >= len(trace.records) // 10

    @pytest.mark.parametrize("architecture", list(Architecture))
    def test_all_architectures_pass_checking(self, architecture):
        trace = small_trace(n_ops=250)
        config = tiny_config(
            architecture=architecture,
            check_invariants=True,
            invariant_check_interval=8,
        )
        run_simulation(trace, config)

    def test_ftl_model_passes_checking(self):
        trace = small_trace(n_ops=250)
        config = tiny_config(
            ftl_model=True, check_invariants=True, invariant_check_interval=8
        )
        run_simulation(trace, config)

    def test_explicit_argument_enables(self):
        trace = small_trace(n_ops=120)
        system_config = tiny_config()  # check_invariants=False
        results = run_simulation(trace, system_config, check_invariants=True)
        assert results.records_replayed == 120

    def test_violation_surfaces_from_replay(self):
        class AlwaysFails(Checker):
            name = "always-fails"

            def check(self, system):
                raise InvariantViolation(self.name, system.sim.now, "boom")

        trace = small_trace(n_ops=60, warmup=0)
        config = tiny_config(check_invariants=True, invariant_check_interval=1)
        with registered(lambda _system: [AlwaysFails()]):
            with pytest.raises(InvariantViolation, match="always-fails"):
                run_simulation(trace, config)

    def test_registered_factory_is_scoped(self):
        factory = lambda _system: [Checker()]
        with registered(factory):
            suite = build_suite(System(tiny_config(check_invariants=True), 1))
            assert any(type(c) is Checker for c in suite.checkers)
        suite = build_suite(System(tiny_config(check_invariants=True), 1))
        assert not any(type(c) is Checker for c in suite.checkers)


class TestCLIFlag:
    def test_check_flag_sets_environment(self, monkeypatch):
        from repro.experiments import runner

        # setenv (not delenv): when the flag is absent, delenv records
        # nothing and the value runner.main writes would leak into the
        # rest of the suite; setenv records the prior state either way.
        monkeypatch.setenv(ENV_FLAG, "0")
        args = runner.build_parser().parse_args(["--check", "--fast"])
        assert args.check
        calls = []
        monkeypatch.setattr(
            runner, "run_one", lambda *a, **k: calls.append(env_enabled()) or ("", None)
        )
        monkeypatch.setattr(runner, "write_report", lambda *a, **k: None)
        assert runner.main(["figure4", "--check", "--fast"]) == 0
        assert calls == [True]
