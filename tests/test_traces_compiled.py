"""Tests for the packed columnar trace form (``repro.traces.compiled``).

The contract under test: compilation is content-preserving, the wire
format round-trips exactly (owning and zero-copy attach alike), the
fingerprint is a pure function of trace content, and replay over a
compiled trace is **bit-identical** to replay over the object form on
every architecture and option path.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CompiledTrace, compile_trace, run_simulation
from repro._units import MB
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.core import simulator
from repro.errors import ConfigError, TraceFormatError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.traces.compiled import COMPILED_MAGIC
from repro.traces.records import Trace, TraceOp
from repro.validation.differential import result_signature

from tests.helpers import make_trace, tiny_config


@pytest.fixture(scope="module")
def gen_trace():
    """A multi-host, multi-thread trace with a warmup prefix."""
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=48 * MB, max_file_bytes=4 * MB),
        working_set_bytes=4 * MB,
        n_hosts=2,
        threads_per_host=2,
        seed=11,
    )
    return generate_trace(config)


@pytest.fixture(scope="module")
def gen_compiled(gen_trace):
    return compile_trace(gen_trace)


def micro_trace(warmup: int = 0) -> Trace:
    return make_trace(
        [("w", 0), ("r", 0), ("w", 5, 1), ("r", 5, 1), ("r", 3)],
        file_blocks=64,
        warmup=warmup,
    )


class TestCompile:
    def test_columns_match_records(self, gen_trace, gen_compiled):
        ct = gen_compiled
        assert len(ct) == len(gen_trace)
        assert ct.warmup_records == gen_trace.warmup_records
        assert ct.file_blocks == list(gen_trace.file_blocks)
        assert ct.metadata == gen_trace.metadata
        assert ct.hosts() == gen_trace.hosts()
        bases = [0]
        for blocks in gen_trace.file_blocks[:-1]:
            bases.append(bases[-1] + blocks)
        for i, record in enumerate(gen_trace.records):
            assert ct.ops[i] == (1 if record.op is TraceOp.WRITE else 0)
            assert ct.hosts_col[i] == record.host
            assert ct.threads_col[i] == record.thread
            assert ct.file_ids[i] == record.file_id
            assert ct.offsets[i] == record.offset
            assert ct.nblocks[i] == record.nblocks
            assert ct.start_blocks[i] == bases[record.file_id] + record.offset

    def test_compile_is_memoized_per_trace(self, gen_trace):
        assert compile_trace(gen_trace) is compile_trace(gen_trace)

    def test_compile_of_compiled_is_identity(self, gen_compiled):
        assert compile_trace(gen_compiled) is gen_compiled

    def test_total_file_blocks(self, gen_trace, gen_compiled):
        assert gen_compiled.total_file_blocks == gen_trace.total_file_blocks

    def test_warmup_blocks(self, gen_trace, gen_compiled):
        expected = sum(
            record.nblocks for record in gen_trace.records[: gen_trace.warmup_records]
        )
        assert gen_compiled.warmup_blocks() == expected

    def test_oversized_field_is_a_format_error(self):
        trace = make_trace([("r", 0)], file_blocks=64)
        trace.records[0] = trace.records[0].__class__(
            TraceOp.READ, 2**40, 0, 0, 0, 1
        )
        with pytest.raises(TraceFormatError):
            compile_trace(trace)

    def test_to_trace_round_trip(self, gen_trace, gen_compiled):
        back = gen_compiled.to_trace()
        assert back.records == gen_trace.records
        assert list(back.file_blocks) == list(gen_trace.file_blocks)
        assert back.warmup_records == gen_trace.warmup_records
        assert back.metadata == gen_trace.metadata


class TestWithoutWarmup:
    def test_no_warmup_returns_self(self):
        ct = compile_trace(micro_trace(warmup=0))
        assert ct.without_warmup() is ct

    def test_warmup_stripped(self):
        trace = micro_trace(warmup=2)
        stripped = compile_trace(trace).without_warmup()
        assert stripped.warmup_records == 0
        assert len(stripped) == len(trace) - 2
        assert list(stripped.ops) == list(compile_trace(trace).ops[2:])
        assert list(stripped.start_blocks) == list(
            compile_trace(trace).start_blocks[2:]
        )

    def test_trace_without_warmup_no_copy(self):
        trace = micro_trace(warmup=0)
        assert trace.without_warmup() is trace


class TestFingerprint:
    def test_stable_across_pickle(self, gen_trace, gen_compiled):
        clone = pickle.loads(pickle.dumps(gen_trace))
        clone.__dict__.pop("_compiled_trace", None)
        clone.__dict__.pop("_sweep_fingerprint", None)
        assert compile_trace(clone).fingerprint == gen_compiled.fingerprint

    def test_content_sensitivity(self):
        base = compile_trace(micro_trace()).fingerprint
        flipped = make_trace(
            [("r", 0), ("r", 0), ("w", 5, 1), ("r", 5, 1), ("r", 3)], file_blocks=64
        )
        assert compile_trace(flipped).fingerprint != base
        warmed = micro_trace(warmup=1)
        assert compile_trace(warmed).fingerprint != base

    def test_survives_wire_round_trip(self, gen_compiled):
        clone = CompiledTrace.from_bytes(gen_compiled.to_bytes())
        assert clone.fingerprint == gen_compiled.fingerprint
        assert clone == gen_compiled


class TestWireFormat:
    def test_from_bytes_round_trip(self, gen_compiled):
        clone = CompiledTrace.from_bytes(gen_compiled.to_bytes())
        for col in ("ops", "hosts", "threads", "file_ids", "offsets", "nblocks",
                    "start_blocks"):
            assert list(clone._column(col)) == list(gen_compiled._column(col))
        assert clone.file_blocks == gen_compiled.file_blocks
        assert clone.warmup_records == gen_compiled.warmup_records
        assert clone.metadata == gen_compiled.metadata

    def test_from_buffer_is_zero_copy(self, gen_compiled):
        blob = gen_compiled.to_bytes()
        attached = CompiledTrace.from_buffer(blob)
        try:
            assert isinstance(attached.ops, memoryview)
            assert attached.fingerprint == gen_compiled.fingerprint
            assert list(attached.nblocks) == list(gen_compiled.nblocks)
        finally:
            attached.release()

    def test_release_allows_reuse_of_buffer(self, gen_compiled):
        blob = bytearray(gen_compiled.to_bytes())
        attached = CompiledTrace.from_buffer(blob)
        attached.release()
        # Releasing dropped every exported pointer: mutating the backing
        # buffer must not raise.
        blob[len(blob) - 1] = 0

    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            CompiledTrace.from_buffer(b"NOTATRACEBLOB\x00\x00\x00" * 4)

    def test_truncated_blob(self, gen_compiled):
        blob = gen_compiled.to_bytes()
        with pytest.raises(TraceFormatError, match="truncated"):
            CompiledTrace.from_bytes(blob[: len(blob) - 8])

    def test_corrupt_header(self, gen_compiled):
        blob = bytearray(gen_compiled.to_bytes())
        # Smash the JSON header, keeping magic and length intact.
        start = len(COMPILED_MAGIC) + 4
        blob[start : start + 4] = b"\xff\xff\xff\xff"
        with pytest.raises(TraceFormatError):
            CompiledTrace.from_buffer(bytes(blob))

    def test_pickle_round_trip(self, gen_compiled):
        clone = pickle.loads(pickle.dumps(gen_compiled))
        assert clone.fingerprint == gen_compiled.fingerprint
        assert list(clone.start_blocks) == list(gen_compiled.start_blocks)


class TestIssuerPlan:
    def test_matches_split_by_issuer(self, gen_trace, gen_compiled):
        plan = gen_compiled.issuer_plan()
        split = gen_trace.split_by_issuer()
        assert [(h, t) for h, t, _, _ in plan] == sorted(split)
        bases = [0]
        for blocks in gen_trace.file_blocks[:-1]:
            bases.append(bases[-1] + blocks)
        warmup = gen_trace.warmup_records
        for host, thread, warm_rows, measured_rows in plan:
            entries = split[(host, thread)]
            rows = warm_rows + measured_rows
            assert len(rows) == len(entries)
            for position, ((op, start, nb), (index, record)) in enumerate(
                zip(rows, entries)
            ):
                assert op == (1 if record.op is TraceOp.WRITE else 0)
                assert start == bases[record.file_id] + record.offset
                assert nb == record.nblocks
                assert (position < len(warm_rows)) == (index < warmup)

    def test_warmup_split_boundary(self):
        trace = make_trace(
            [("w", 0), ("w", 1, 1), ("r", 0), ("r", 1, 1)], file_blocks=64, warmup=2
        )
        plan = compile_trace(trace).issuer_plan()
        for _host, _thread, warm_rows, measured_rows in plan:
            assert len(warm_rows) == 1
            assert len(measured_rows) == 1

    def test_memoized(self, gen_compiled):
        assert gen_compiled.issuer_plan() is gen_compiled.issuer_plan()


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("arch", list(Architecture))
    def test_architectures(self, gen_trace, gen_compiled, arch):
        config = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB, architecture=arch)
        expected = result_signature(run_simulation(gen_trace, config))
        actual = result_signature(run_simulation(gen_compiled, config))
        assert actual == expected

    def test_cold_start(self, gen_trace, gen_compiled):
        config = tiny_config()
        expected = run_simulation(gen_trace, config, cold_start=True)
        actual = run_simulation(gen_compiled, config, cold_start=True)
        assert result_signature(actual) == result_signature(expected)

    def test_generic_paths_match(self, gen_trace, gen_compiled):
        """Invariant checking and timelines route the compiled replay
        through the generic measured loop — still bit-identical."""
        config = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        plain = result_signature(run_simulation(gen_compiled, config))
        checked = result_signature(
            run_simulation(gen_compiled, config, check_invariants=True)
        )
        timed = run_simulation(
            gen_compiled, config, timeline_bucket_ns=10_000_000
        )
        assert checked == plain
        assert result_signature(timed) == plain
        assert result_signature(run_simulation(gen_trace, config)) == plain

    def test_micro_trace_counts(self):
        trace = micro_trace(warmup=2)
        config = tiny_config()
        obj = run_simulation(trace, config)
        packed = run_simulation(compile_trace(trace), config)
        assert result_signature(packed) == result_signature(obj)
        assert packed.read_latency.count == 2
        assert packed.write_latency.count == 1


class TestAutoCompile:
    def test_threshold_env_triggers_compile(self, gen_trace, monkeypatch):
        # check_invariants=False: this multi-host trace ends inside an
        # async-writeback window where the end-of-run placement
        # invariant does not hold (object and compiled replay alike);
        # the subject here is the compile threshold, not the sanitizer.
        config = tiny_config()
        monkeypatch.setenv(simulator.COMPILE_ENV, "0")
        baseline = result_signature(
            run_simulation(gen_trace, config, check_invariants=False)
        )
        monkeypatch.setenv(simulator.COMPILE_ENV, "1")
        auto = result_signature(
            run_simulation(gen_trace, config, check_invariants=False)
        )
        assert auto == baseline

    def test_bad_env_value_raises(self, gen_trace, monkeypatch):
        monkeypatch.setenv(simulator.COMPILE_ENV, "lots")
        with pytest.raises(ConfigError):
            run_simulation(gen_trace, tiny_config())

    def test_default_threshold(self):
        assert simulator.AUTO_COMPILE_MIN_RECORDS == 32_768
