"""Tests for the Completion synchronization primitive."""

import pytest

from repro.engine.events import Completion, all_of
from repro.engine.simulation import Simulator
from repro.errors import SimulationError


class TestCompletion:
    def test_initially_pending(self):
        comp = Completion()
        assert not comp.fired
        assert comp.value is None

    def test_fire_sets_value(self):
        comp = Completion()
        comp.fire(42)
        assert comp.fired
        assert comp.value == 42

    def test_double_fire_rejected(self):
        comp = Completion()
        comp.fire()
        with pytest.raises(SimulationError):
            comp.fire()

    def test_callback_before_fire(self):
        comp = Completion()
        seen = []
        comp.add_callback(seen.append)
        assert seen == []
        comp.fire("x")
        assert seen == ["x"]

    def test_callback_after_fire_runs_immediately(self):
        comp = Completion()
        comp.fire("y")
        seen = []
        comp.add_callback(seen.append)
        assert seen == ["y"]

    def test_process_waits_for_completion(self):
        sim = Simulator()
        comp = Completion()
        log = []

        def waiter():
            value = yield comp
            log.append((sim.now, value))

        def firer():
            yield 100
            comp.fire("done")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert log == [(100, "done")]

    def test_waiting_on_fired_completion_resumes_immediately(self):
        sim = Simulator()
        comp = Completion()
        comp.fire(7)
        results = []

        def waiter():
            value = yield comp
            results.append(value)

        sim.spawn(waiter())
        sim.run()
        assert results == [7]

    def test_multiple_waiters_resume_in_subscription_order(self):
        sim = Simulator()
        comp = Completion()
        order = []

        def waiter(tag):
            yield comp
            order.append(tag)

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.spawn(waiter("c"))

        def firer():
            yield 10
            comp.fire()

        sim.spawn(firer())
        sim.run()
        assert order == ["a", "b", "c"]


class TestAllOf:
    def test_empty_list_fires_immediately(self):
        combined = all_of([])
        assert combined.fired
        assert combined.value == []

    def test_collects_values_in_order(self):
        a, b = Completion(), Completion()
        combined = all_of([a, b])
        b.fire(2)
        assert not combined.fired
        a.fire(1)
        assert combined.fired
        assert combined.value == [1, 2]

    def test_already_fired_inputs(self):
        a = Completion()
        a.fire("x")
        combined = all_of([a])
        assert combined.fired
        assert combined.value == ["x"]

    def test_empty_list_in_kernel_resumes_without_suspending(self):
        # Contract: the vacuous conjunction is already fired when
        # all_of() returns, so a process yielding it resumes at the
        # current instant without waiting on anything.
        sim = Simulator()
        log = []

        def waiter():
            value = yield all_of([])
            log.append((sim.now, value))

        sim.spawn(waiter())
        sim.run()
        assert log == [(0, [])]

    def test_empty_list_callbacks_run_synchronously(self):
        combined = all_of([])
        seen = []
        combined.add_callback(seen.append)
        assert seen == [[]]

    def test_single_element_in_kernel_waits_for_that_completion(self):
        # A one-element all_of must behave exactly like yielding the
        # completion directly, with the value wrapped in a list.
        sim = Simulator()
        inner = Completion()
        log = []

        def waiter():
            value = yield all_of([inner])
            log.append((sim.now, value))

        def firer():
            yield 50
            inner.fire("v")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert log == [(50, ["v"])]

    def test_doc_and_behavior_agree_on_empty_input(self):
        # Regression: the docstring used to claim the empty conjunction
        # "fires as soon as the first process waits on it" while the
        # implementation created it already fired.
        assert "already" in all_of.__doc__ and "fired" in all_of.__doc__
        assert all_of([]).fired
