"""Tests for the behavioral SSD model (the §6.2 findings)."""

import pytest

from repro.errors import ConfigError
from repro.flash.ssd_model import BehavioralSSD, SSDModelConfig


def small_config(**overrides):
    defaults = dict(capacity_blocks=10_000, seed=5)
    defaults.update(overrides)
    return SSDModelConfig(**defaults)


def mean(values):
    return sum(values) / len(values)


class TestFinding1_ShortTermVarianceStableAverages:
    def test_individual_latencies_vary(self):
        ssd = BehavioralSSD(small_config())
        reads = [ssd.access("r", i) for i in range(1000)]
        assert len(set(reads)) > 100  # high per-I/O variance

    def test_group_averages_are_stable(self):
        ssd = BehavioralSSD(small_config())
        # Pre-fill so the fill-level drift doesn't dominate.
        for i in range(10_000):
            ssd.access("w", i)
        reads = [ssd.access("r", i % 10_000) for i in range(40_000)]
        groups = BehavioralSSD.grouped_averages(reads, 10_000)
        spread = (max(groups) - min(groups)) / mean(groups)
        assert spread < 0.10  # group-to-group within 10%


class TestFinding2_StableWriteLatency:
    def test_write_mean_constant_start_to_finish(self):
        ssd = BehavioralSSD(small_config())
        early = [ssd.access("w", i % 10_000) for i in range(10_000)]
        for i in range(30_000):
            ssd.access("w", i % 10_000)
        late = [ssd.access("w", i % 10_000) for i in range(10_000)]
        assert mean(late) == pytest.approx(mean(early), rel=0.05)

    def test_write_mean_near_nominal(self):
        config = small_config()
        ssd = BehavioralSSD(config)
        writes = [ssd.access("w", i % 10_000) for i in range(20_000)]
        assert mean(writes) == pytest.approx(config.base_write_ns, rel=0.05)


class TestFinding3_ReadDegradation:
    def test_reads_slow_down_as_device_fills(self):
        ssd = BehavioralSSD(small_config())
        empty_reads = [ssd.access("r", i) for i in range(5_000)]
        for i in range(10_000):  # fill the device completely
            ssd.access("w", i)
        full_reads = [ssd.access("r", i) for i in range(5_000)]
        assert mean(full_reads) > mean(empty_reads) * 1.3

    def test_random_pattern_reads_slower_than_replay(self):
        replay = BehavioralSSD(small_config())
        random_ssd = BehavioralSSD(small_config(), random_pattern=True)
        replay_reads = [replay.access("r", i) for i in range(5_000)]
        random_reads = [random_ssd.access("r", i) for i in range(5_000)]
        assert mean(random_reads) > mean(replay_reads) * 1.5

    def test_fill_fraction_tracks_unique_writes(self):
        ssd = BehavioralSSD(small_config())
        for i in range(5_000):
            ssd.access("w", i)
        assert ssd.fill_fraction == pytest.approx(0.5)
        for i in range(5_000):
            ssd.access("w", i)  # same blocks again: no new fill
        assert ssd.fill_fraction == pytest.approx(0.5)


class TestMechanics:
    def test_replay_returns_per_op_latencies(self):
        ssd = BehavioralSSD(small_config())
        ops = [("r", 1), ("w", 2), ("r", 3)]
        latencies = ssd.replay(ops)
        assert len(latencies) == 3
        assert all(lat > 0 for lat in latencies)

    def test_bad_op_rejected(self):
        with pytest.raises(ConfigError):
            BehavioralSSD(small_config()).access("x", 0)

    def test_grouped_averages(self):
        groups = BehavioralSSD.grouped_averages([1, 2, 3, 4, 5, 6], 2)
        assert groups == [1.5, 3.5, 5.5]

    def test_grouped_averages_bad_group(self):
        with pytest.raises(ConfigError):
            BehavioralSSD.grouped_averages([1], 0)

    def test_deterministic_for_seed(self):
        first = BehavioralSSD(small_config()).replay([("r", i) for i in range(100)])
        second = BehavioralSSD(small_config()).replay([("r", i) for i in range(100)])
        assert first == second

    def test_zero_noise_is_deterministic_mean(self):
        config = small_config(noise_sigma=0.0)
        ssd = BehavioralSSD(config)
        assert ssd.access("w", 0) == config.base_write_ns

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            SSDModelConfig(capacity_blocks=0)
        with pytest.raises(ConfigError):
            SSDModelConfig(noise_sigma=-1)
