"""Tests for the network model."""

import pytest

from repro._units import BLOCK_SIZE
from repro.engine.simulation import Simulator
from repro.errors import ConfigError
from repro.net.link import NetworkSegment, NetworkTiming
from repro.net.packet import Packet, PacketKind


class TestPacket:
    def test_request_has_no_payload(self):
        assert Packet.request().payload_bytes == 0

    def test_data_block_carries_4k(self):
        assert Packet.data_block().payload_bytes == BLOCK_SIZE

    def test_ack_has_no_payload(self):
        assert Packet.ack().payload_bytes == 0

    def test_payload_bits(self):
        assert Packet.data_block().payload_bits == 8 * BLOCK_SIZE

    def test_non_data_payload_rejected(self):
        with pytest.raises(ConfigError):
            Packet(PacketKind.ACK, payload_bytes=10)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigError):
            Packet(PacketKind.DATA, payload_bytes=-1)


class TestTiming:
    def test_header_only_packet_time(self):
        timing = NetworkTiming.paper_default()
        assert timing.packet_time_ns(Packet.request()) == 8_200

    def test_data_packet_time(self):
        timing = NetworkTiming.paper_default()
        # base 8.2 us + 32768 bits at 1 ns/bit
        assert timing.packet_time_ns(Packet.data_block()) == 8_200 + 32_768

    def test_custom_per_bit(self):
        timing = NetworkTiming(base_latency_ns=1_000, per_bit_ns=0.5)
        assert timing.packet_time_ns(Packet.data_block()) == 1_000 + 16_384

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            NetworkTiming(base_latency_ns=-1)


class TestSegment:
    def test_single_transfer_time(self):
        sim = Simulator()
        segment = NetworkSegment(sim)

        def proc():
            yield from segment.transfer(Packet.data_block())

        sim.run_until_complete(proc())
        assert sim.now == 8_200 + 32_768

    def test_one_packet_at_a_time_per_direction(self):
        sim = Simulator()
        segment = NetworkSegment(sim)

        def sender():
            yield from segment.transfer(Packet.request(), "up")

        sim.spawn(sender())
        sim.spawn(sender())
        sim.run()
        assert sim.now == 2 * 8_200  # serialized, not overlapped

    def test_directions_are_independent(self):
        sim = Simulator()
        segment = NetworkSegment(sim)

        def up():
            yield from segment.transfer(Packet.request(), "up")

        def down():
            yield from segment.transfer(Packet.request(), "down")

        sim.spawn(up())
        sim.spawn(down())
        sim.run()
        assert sim.now == 8_200  # full duplex: both overlap

    def test_unknown_direction_rejected(self):
        sim = Simulator()
        segment = NetworkSegment(sim)
        with pytest.raises(ConfigError):
            list(segment.transfer(Packet.request(), "sideways"))

    def test_counters(self):
        sim = Simulator()
        segment = NetworkSegment(sim)

        def proc():
            yield from segment.transfer(Packet.data_block())
            yield from segment.transfer(Packet.ack())

        sim.run_until_complete(proc())
        assert segment.packets_sent == 2
        assert segment.payload_bytes_sent == BLOCK_SIZE
        segment.reset_counters()
        assert segment.packets_sent == 0

    def test_utilization_when_one_direction_saturated(self):
        sim = Simulator()
        segment = NetworkSegment(sim)

        def sender():
            yield from segment.transfer(Packet.request(), "up")

        for _ in range(3):
            sim.spawn(sender())
        sim.run()
        # up is 100% busy, down idle; the reported mean is 50%.
        assert segment.utilization() == pytest.approx(0.5)
